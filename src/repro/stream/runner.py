"""Drive one sweep trial through the stream bus — live or replayed.

Two ways a feed gets produced, both yielding **identical frames**:

- :func:`run_streamed_trial` executes the trial in-process via
  :func:`repro.sweep.executor.run_trial` with a
  :class:`~repro.stream.observer.StreamObserver` tee'd onto each run,
  so frames are published *while the engine runs*.  Observers are
  read-only, so the returned payload is byte-identical to an
  unstreamed execution of the same task.
- :func:`replay_payload` re-publishes the archived event log out of a
  stored/cached trial payload (``payload["runs"][label]["trace"]`` is
  the verbatim :func:`repro.sim.export.export_trace` text).  Because a
  live ``event`` frame's payload *is* the archived line, a replayed
  feed is frame-for-frame what the live feed was — warm-cache streams
  and cold streams are indistinguishable to a subscriber.

Either way the caller finishes the feed with :func:`finish_stream`
(terminal ``end`` frame) or :func:`fail_stream` (terminal ``error``).

The vector backend advances trials as structure-of-arrays draws and
never materializes an event log, so there is nothing to stream;
:func:`check_streamable` refuses those tasks up front with
:class:`StreamUnsupported` — the error the serve layer maps onto a 422
``stream_unsupported``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..sweep.spec import ACTIVITY
from .bus import RunStream
from .observer import StreamObserver, label_sequence_factory

#: Run labels of one whole-activity trial, in classroom execution
#: order (see :func:`repro.schedule.scenario.run_core_activity`).
ACTIVITY_RUN_LABELS = ("scenario1", "scenario1_repeat", "scenario2",
                      "scenario3", "scenario4")


class StreamUnsupported(Exception):
    """Raised for tasks whose execution produces no event log."""


def expected_run_labels(cell: Dict[str, Any]) -> List[str]:
    """The run labels one trial of ``cell`` will produce, in order."""
    if cell["scenario"] == ACTIVITY:
        return list(ACTIVITY_RUN_LABELS)
    return [f"scenario{cell['scenario']}"]


def check_streamable(task: Dict[str, Any]) -> None:
    """Refuse tasks that cannot carry a stream.

    Raises:
        StreamUnsupported: for vector-backend tasks — the vectorized
            engine carries no traces, so there are no events to feed.
    """
    backend = task.get("backend", "reference")
    if backend != "reference":
        raise StreamUnsupported(
            f"the {backend!r} backend carries no event traces; "
            f"streaming needs the reference engine")


def run_streamed_trial(task: Dict[str, Any],
                       stream: RunStream) -> Dict[str, Any]:
    """Execute one trial live through ``stream``; returns its payload.

    The payload is byte-identical to ``run_trial(task)`` — streaming
    is a tap, not a fork.  The feed is left *open*: the caller decides
    whether ``end`` (normal) or ``error`` closes it, after persisting
    the payload.

    Raises:
        StreamUnsupported: for tasks with nothing to stream (vector).
    """
    from ..sweep.executor import run_trial

    check_streamable(task)
    factory = label_sequence_factory(
        stream, expected_run_labels(task["cell"]))
    return run_trial(task, observer_factory=factory)


def replay_payload(payload: Dict[str, Any], stream: RunStream) -> None:
    """Publish an archived trial payload's event log as a live feed.

    Every ``event`` frame is identical to what a live run of the same
    task published — archived lines are re-emitted verbatim — so the
    reassembled log of a cache-hit feed equals the cold feed's byte
    for byte.  Run boundaries are re-derived from the log (``run_end``
    makespan = last event time).  The feed is left open, same as
    :func:`run_streamed_trial`.
    """
    import json

    for label, run in payload["runs"].items():
        lines = [ln for ln in run["trace"].split("\n") if ln]
        stream.publish("run_start", run=label, time=0.0)
        makespan = 0.0
        for line in lines:
            time = float(json.loads(line)["time"])
            makespan = max(makespan, time)
            stream.publish("event", run=label, time=time,
                           data={"line": line})
        stream.publish("run_end", run=label, time=makespan,
                       data={"makespan": makespan,
                             "events": len(lines)})


def finish_stream(stream: RunStream, *, cached: bool,
                  runs: List[str]) -> None:
    """Publish the terminal ``end`` frame of a successful feed."""
    stream.publish("end", run=None, time=0.0,
                   data={"status": "ok", "cached": cached,
                         "runs": runs})


def fail_stream(stream: RunStream, message: str) -> None:
    """Publish the terminal ``error`` frame of a failed feed."""
    stream.publish("error", run=None, time=0.0,
                   data={"status": "error", "message": message})
