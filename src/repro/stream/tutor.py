"""Interactive guided lessons: the paper's debrief, narrated live.

``repro tutor`` runs one *real* engine trial — the full classroom
activity, scenario 1 through 4 — through the stream bus and narrates
one of the paper's lessons over the feed:

- ``speedup``: makespans fall from scenario 1 to 3, sublinearly;
- ``warmup``: the repeated scenario 1 run is faster than the first;
- ``contention``: scenario 4's shared implements make agents wait;
- ``pipelining``: scenario 4's first strokes form a filling staircase.

Every lesson consumes the same feed a remote SSE subscriber would see
(frame for frame), reconstructs the focal run's trace from the
streamed archive lines, and renders a terminal Gantt plus an
agents-waiting sparkline — the "watch the parallelism happen" view the
activity is built around.  Locally the trial executes in-process
through :func:`~repro.stream.runner.run_streamed_trial`; with
``serve=(host, port)`` the tutor subscribes to a remote ``repro
serve`` endpoint over SSE instead, so one classroom server can drive
many tutors.

The lesson catalog is a plain name → description mapping
(:func:`available_lessons`), the shape a lesson-picking CLI wants.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..classroom.discussion import LESSON_INTROS, Lesson
from ..sim.export import import_trace
from ..sim.trace import Trace
from ..sweep.spec import ACTIVITY, SweepCell
from ..viz.bars import sparkline
from ..viz.gantt import render_gantt
from .bus import RunStream
from .protocol import (
    StreamEvent,
    StreamProtocolError,
    feed_makespans,
    reassemble_feed,
)
from .runner import fail_stream, finish_stream, run_streamed_trial

#: Default experiment shape every lesson runs (the classroom default).
DEFAULT_FLAG = "mauritius"
DEFAULT_TEAM_SIZE = 6


class TutorError(Exception):
    """Raised for unknown lessons or feeds that cannot be narrated."""


@dataclass(frozen=True)
class TutorLesson:
    """One guided lesson: what to watch and how to talk about it."""

    name: str
    lesson: Lesson
    description: str
    focus_run: str  # the run label the Gantt view renders


LESSONS: Dict[str, TutorLesson] = {
    lesson.name: lesson for lesson in (
        TutorLesson(
            name="speedup",
            lesson=Lesson.SPEEDUP,
            description="makespans fall from scenario 1 to 3 — "
                        "but never by the worker count",
            focus_run="scenario3"),
        TutorLesson(
            name="warmup",
            lesson=Lesson.WARMUP,
            description="the repeated first run is faster: teams "
                        "(and caches) warm up",
            focus_run="scenario1_repeat"),
        TutorLesson(
            name="contention",
            lesson=Lesson.CONTENTION,
            description="scenario 4's shared implements stall four "
                        "workers behind two crayons",
            focus_run="scenario4"),
        TutorLesson(
            name="pipelining",
            lesson=Lesson.PIPELINING,
            description="scenario 4's first strokes staircase as the "
                        "pipeline fills",
            focus_run="scenario4"),
    )
}


@dataclass
class LessonReport:
    """What one tutor session saw (returned for tests and callers)."""

    name: str
    makespans: Dict[str, float]
    frames: int
    dropped: int
    remote: bool
    lines: List[str] = field(default_factory=list)

    def text(self) -> str:
        """The full narration as one printable block."""
        return "\n".join(self.lines)


def available_lessons() -> Dict[str, str]:
    """Lesson name → one-line description, in catalog order."""
    return {name: lesson.description for name, lesson in LESSONS.items()}


def lesson_catalog() -> str:
    """The printable lesson catalog (``repro tutor --list``)."""
    width = max(len(name) for name in LESSONS)
    lines = ["Available lessons:"]
    for name, desc in available_lessons().items():
        lines.append(f"  {name:<{width}}  {desc}")
    return "\n".join(lines)


def activity_cell(*, flag: str = DEFAULT_FLAG,
                  team_size: int = DEFAULT_TEAM_SIZE) -> SweepCell:
    """The whole-activity cell every lesson streams."""
    from ..agents.student import FillStyle
    from ..schedule import AcquirePolicy
    return SweepCell(flag=flag, scenario=ACTIVITY, team_size=team_size,
                     policy=AcquirePolicy.HOLD_COLOR_RUN,
                     style=FillStyle.SCRIBBLE)


def _collect_local(cell: SweepCell, seed: int
                   ) -> Tuple[List[StreamEvent], int]:
    """Run the trial in-process; returns (frames, dropped count)."""
    task = {"cell": cell.key_dict(), "cell_key": cell.key(),
            "seed": seed, "n_trials": 1, "trial": 0, "observe": False}
    stream = RunStream(f"tutor-{cell.flag}-{seed}")
    sub = stream.subscribe()

    def work() -> None:
        try:
            payload = run_streamed_trial(task, stream)
            finish_stream(stream, cached=False,
                          runs=list(payload["runs"]))
        except Exception as exc:  # surfaced to the consumer as a frame
            fail_stream(stream, f"{type(exc).__name__}: {exc}")

    worker = threading.Thread(target=work, name="tutor-trial",
                              daemon=True)
    worker.start()
    frames: List[StreamEvent] = []
    done = False
    while not done:
        sub.wait(1.0)
        batch = sub.pop_ready()
        frames.extend(batch)
        done = any(f.terminal for f in batch)
    worker.join(timeout=10.0)
    dropped = sub.dropped
    sub.close()
    return frames, dropped


def _collect_remote(cell: SweepCell, seed: int, serve: Tuple[str, int],
                    token: Optional[str]
                    ) -> Tuple[List[StreamEvent], int]:
    """Subscribe to a remote serve endpoint; returns (frames, drops)."""
    from ..serve.client import ServeClient
    host, port = serve
    client = ServeClient(host, port, token=token)
    reply = client.run(flag=cell.flag, scenario=cell.scenario,
                       seed=seed, team_size=cell.team_size,
                       stream=True)
    frames = list(client.stream(reply["stream"]))
    return frames, 0


def _waiting_series(trace: Trace) -> List[float]:
    """Agents-waiting counts sampled at every queue transition."""
    from ..sim.events import EventKind
    waiting = 0
    series: List[float] = []
    for event in trace.events:
        if event.kind == EventKind.RESOURCE_REQUEST:
            waiting += 1
        elif event.kind == EventKind.RESOURCE_ACQUIRE:
            waiting = max(0, waiting - 1)
        else:
            continue
        series.append(float(waiting))
    return series


def _narrate(lesson: TutorLesson, makespans: Dict[str, float],
             traces: Dict[str, Trace]) -> List[str]:
    """The lesson-specific storyline over the observed numbers."""
    out: List[str] = []
    if lesson.name == "speedup":
        base = makespans.get("scenario1")
        for label in ("scenario1", "scenario2", "scenario3"):
            span = makespans.get(label)
            if span is None or base is None:
                continue
            ratio = base / span if span else 0.0
            out.append(f"  {label}: makespan {span:.0f}s "
                       f"(speedup x{ratio:.2f})")
        out.append("  more workers help — but never linearly: "
                   "coordination and shared implements eat the rest.")
    elif lesson.name == "warmup":
        first = makespans.get("scenario1")
        again = makespans.get("scenario1_repeat")
        if first is not None and again is not None:
            out.append(f"  first run {first:.0f}s, repeat "
                       f"{again:.0f}s — the team warmed up "
                       f"({(1 - again / first) * 100:.0f}% faster).")
        out.append("  the same effect shows up as cold vs warm caches "
                   "in real systems.")
    elif lesson.name == "contention":
        trace = traces.get("scenario4")
        if trace is not None:
            span = trace.makespan()
            waited = sum(iv.duration for iv in trace.wait_intervals())
            frac = waited / (span * max(1, len(trace.agents()))) \
                if span else 0.0
            out.append(f"  scenario4: {waited:.0f}s spent waiting for "
                       f"implements ({frac * 100:.0f}% of worker "
                       f"time).")
        three = makespans.get("scenario3")
        four = makespans.get("scenario4")
        if three is not None and four is not None:
            out.append(f"  same four workers: scenario3 {three:.0f}s, "
                       f"scenario4 {four:.0f}s — sharing is the "
                       f"difference.")
    elif lesson.name == "pipelining":
        trace = traces.get("scenario4")
        if trace is not None:
            from ..schedule.pipeline import pipeline_metrics
            pm = pipeline_metrics(trace)
            starts = sorted(pm.first_stroke.values())
            stair = ", ".join(f"{s:.0f}s" for s in starts)
            out.append(f"  first strokes began at {stair} — the "
                       f"pipeline took {pm.fill_time:.0f}s to fill.")
        out.append("  fill and drain time is why short pipelines "
                   "never hit their steady-state rate.")
    return out


def run_lesson(name: str, *, flag: str = DEFAULT_FLAG, seed: int = 7,
               team_size: int = DEFAULT_TEAM_SIZE,
               serve: Optional[Tuple[str, int]] = None,
               token: Optional[str] = None,
               width: int = 64,
               out: Optional[Callable[[str], Any]] = None
               ) -> LessonReport:
    """Run one guided lesson end to end; returns what it narrated.

    Args:
        serve: ``(host, port)`` of a live ``repro serve`` endpoint to
            stream from; None runs the trial in-process.
        token: Bearer token for a ``--require-token`` server.
        out: line sink (e.g. ``print``); None collects silently.

    Raises:
        TutorError: for unknown lesson names or a feed that ended in
            an ``error`` frame / cannot be reassembled.
    """
    lesson = LESSONS.get(name)
    if lesson is None:
        raise TutorError(
            f"unknown lesson {name!r}; one of {sorted(LESSONS)}")
    cell = activity_cell(flag=flag, team_size=team_size)
    if serve is None:
        frames, dropped = _collect_local(cell, seed)
    else:
        frames, dropped = _collect_remote(cell, seed, serve, token)
    for frame in frames:
        if frame.kind == "error":
            raise TutorError(
                f"streamed run failed: {frame.data.get('message')}")
    try:
        logs = reassemble_feed(frames)
    except StreamProtocolError as exc:
        raise TutorError(f"feed did not reassemble: {exc}") from exc
    traces = {label: import_trace(text) for label, text in logs.items()}
    makespans = feed_makespans(frames)

    report = LessonReport(name=name, makespans=makespans,
                          frames=len(frames), dropped=dropped,
                          remote=serve is not None)

    def emit(line: str) -> None:
        report.lines.append(line)
        if out is not None:
            out(line)

    emit(f"lesson: {name} — {lesson.description}")
    emit(f"  {LESSON_INTROS[lesson.lesson]}")
    emit(f"  watched {len(frames)} frames over "
         f"{len(traces)} runs of {flag!r} (seed {seed}"
         f"{', remote' if serve is not None else ''}).")
    emit("")
    for line in _narrate(lesson, makespans, traces):
        emit(line)
    focus = traces.get(lesson.focus_run)
    if focus is not None:
        emit("")
        emit(f"  {lesson.focus_run} timeline:")
        for line in render_gantt(focus, width=width).split("\n"):
            emit(f"    {line}")
        series = _waiting_series(focus)
        if series:
            emit(f"    agents waiting: {sparkline(series)}")
    if dropped:
        emit(f"  (note: {dropped} frames were dropped from a lagging "
             f"local queue; narration used the replay history)")
    return report
