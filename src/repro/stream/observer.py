"""The engine-side publisher: an Observer that feeds the stream bus.

:class:`StreamObserver` implements the PR 2 Observer protocol
(:class:`repro.obs.observer.Observer`) and turns each engine hook into
one envelope on a :class:`~repro.stream.bus.RunStream`:

- ``on_run_start``  → a ``run_start`` control frame;
- ``on_event``      → an ``event`` frame whose payload ``line`` is the
  *exact* archived serialization of the event — one line of
  :func:`repro.sim.export.export_events` — which is what makes the
  streamed feed byte-identical to the archive;
- ``on_run_end``    → a ``run_end`` control frame carrying the
  makespan.

Like every observer it is a read-only tap: it never touches
simulation state, and because :meth:`RunStream.publish
<repro.stream.bus.RunStream.publish>` never blocks, attaching it
cannot slow the engine behind a lagging consumer.  One instance
observes exactly one run (it is pinned to a run label); multi-run
activities build a fresh instance per run via
:func:`label_sequence_factory`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..obs.observer import Observer
from ..sim.events import Event
from ..sim.export import event_to_dict
from .bus import RunStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


def event_line(event: Event) -> str:
    """One event in its archived form (a ``repro.sim.export`` line)."""
    return json.dumps(event_to_dict(event), sort_keys=True)


class StreamObserver(Observer):
    """Publish one run's engine events into a stream, as they happen."""

    def __init__(self, stream: RunStream, *, run: str) -> None:
        self.stream = stream
        self.run = run
        self.events_published = 0

    def on_run_start(self, sim: "Simulator") -> None:
        """Announce the run boundary before its first event."""
        self.stream.publish("run_start", run=self.run, time=sim.now)

    def on_event(self, event: Event) -> None:
        """Forward one engine event in its archived serialization."""
        self.stream.publish("event", run=self.run, time=event.time,
                            data={"line": event_line(event)})
        self.events_published += 1

    def on_run_end(self, sim: "Simulator", makespan: float) -> None:
        """Close the run with its makespan (not the feed — see ``end``)."""
        self.stream.publish("run_end", run=self.run, time=makespan,
                            data={"makespan": makespan,
                                  "events": self.events_published})


def label_sequence_factory(stream: RunStream,
                           labels: Iterable[str]
                           ) -> Callable[[], StreamObserver]:
    """An observer factory that pins successive labels to new observers.

    :func:`repro.schedule.scenario.run_core_activity` calls its
    ``observer_factory`` once per run, in a deterministic classroom
    order; this zips that call order with the known label sequence so
    every frame carries the right run label.

    Raises:
        RuntimeError: when the factory is called more times than there
            are labels (the run plan and the label plan disagree).
    """
    it: Iterator[str] = iter(labels)

    def make() -> StreamObserver:
        try:
            label = next(it)
        except StopIteration:
            raise RuntimeError(
                "observer factory called past the planned run labels"
            ) from None
        return StreamObserver(stream, run=label)

    return make
