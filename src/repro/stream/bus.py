"""The stream bus: thread-safe fan-out with bounded subscriber queues.

The publisher is an engine thread (a :class:`~repro.stream.observer.
StreamObserver` hook running inside the simulation loop); consumers
are SSE connections on the serve event loop, tutor renderers, or
tests.  The contract, in priority order:

1. **Publishing never blocks and never fails.**  The engine must not
   notice observers; a slow or stuck subscriber costs it nothing.
   Publish does O(subscribers) bounded work under a lock and returns.
2. **Per-subscriber queues are bounded, drop-oldest.**  A subscriber
   that cannot keep up loses its *oldest* undelivered frames; every
   loss increments the subscription's ``dropped`` count and the bus's
   ``stream_dropped_frames_total`` counter (surfaced on ``/metrics``).
   The feed's envelope ``seq`` stays contiguous in the history, so a
   dropped-on client re-resumes from its last seen cursor and reads
   the missed frames back out of the replay history.
3. **Replay-from-seq has no gaps.**  The stream retains its full
   envelope history (runs are finite; a trial is a few thousand
   frames), so ``subscribe(after=n)`` first replays ``n+1..`` from
   history — pulled by the consumer, *not* pushed through the bounded
   queue — then splices onto the live feed.

:class:`StreamHub` maps opaque stream tokens to their
:class:`RunStream`, keeping a bounded LRU of finished streams around
so late subscribers (and resumed ones) can still replay a completed
feed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .protocol import StreamEvent

#: Default bound on one subscriber's undelivered live frames.
DEFAULT_QUEUE_FRAMES = 1024


class StreamClosed(Exception):
    """Raised when publishing into a stream that already terminated."""


class Subscription:
    """One consumer's bounded cursor into a :class:`RunStream`.

    Use :meth:`pop_ready` to drain everything currently deliverable
    (replay backlog first, then live frames) and :meth:`wait` /
    :meth:`add_waker` to sleep until more arrives.  ``wait`` works for
    plain threads; an asyncio consumer registers a waker that is safe
    to call from any thread (e.g. wrapping
    ``loop.call_soon_threadsafe``).
    """

    def __init__(self, stream: "RunStream", *, after: int,
                 max_queue: int) -> None:
        self._stream = stream
        self._max_queue = max_queue
        self._live: Deque[StreamEvent] = deque()
        self._replay_next = after + 1
        self._live_from = stream.last_seq + 1
        self.dropped = 0
        self.delivered = 0
        self._event = threading.Event()
        self._wakers: List[Callable[[], None]] = []
        self._detached = False
        if self._replay_next < self._live_from or stream.finished:
            self._event.set()  # backlog (or the terminal) is waiting

    # -- publisher side (called by RunStream under its lock) ---------------
    def _offer_locked(self, event: StreamEvent) -> int:
        """Queue one live frame; returns how many frames were dropped."""
        dropped = 0
        if len(self._live) >= self._max_queue:
            self._live.popleft()
            self.dropped += 1
            dropped = 1
        self._live.append(event)
        return dropped

    def _wake(self) -> None:
        self._event.set()
        for waker in self._wakers:
            waker()

    # -- consumer side -----------------------------------------------------
    def add_waker(self, waker: Callable[[], None]) -> None:
        """Register a thread-safe callback fired on every publish."""
        with self._stream._lock:
            self._wakers.append(waker)

    def pop_ready(self, max_frames: int = 1024) -> List[StreamEvent]:
        """Everything deliverable right now, oldest first.

        Replayed history comes before live frames; at most
        ``max_frames`` are returned per call so one huge backlog cannot
        monopolize a writer loop.
        """
        out: List[StreamEvent] = []
        with self._stream._lock:
            history = self._stream._history
            while (self._replay_next < self._live_from
                   and len(out) < max_frames):
                out.append(history[self._replay_next - 1])
                self._replay_next += 1
            if self._replay_next >= self._live_from:
                while self._live and len(out) < max_frames:
                    ev = self._live.popleft()
                    # A drop may have advanced the queue past frames the
                    # replay cursor already delivered; skip duplicates.
                    if ev.seq >= self._replay_next:
                        out.append(ev)
                        self._replay_next = ev.seq + 1
            if not self._live and self._replay_next >= self._live_from:
                self._event.clear()
        self.delivered += len(out)
        return out

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block (thread-style) until frames may be ready."""
        return self._event.wait(timeout)

    def close(self) -> None:
        """Detach from the stream; idempotent."""
        self._stream._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RunStream:
    """The ordered envelope history + live fan-out for one streamed run."""

    def __init__(self, token: str, *,
                 max_queue: int = DEFAULT_QUEUE_FRAMES,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.token = token
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._history: List[StreamEvent] = []
        self._subs: List[Subscription] = []
        self._finished = False
        self._gone_dropped = 0  # drops from since-closed subscriptions
        self._registry = registry
        if registry is not None:
            self._published = registry.counter(
                "stream_frames_published_total",
                "Envelope frames published across all streams")
            self._dropped = registry.counter(
                "stream_dropped_frames_total",
                "Frames dropped from slow subscribers' bounded queues")
        else:
            self._published = None
            self._dropped = None

    @property
    def last_seq(self) -> int:
        """The newest published cursor (0 before the first frame)."""
        return len(self._history)

    @property
    def finished(self) -> bool:
        """Whether a terminal frame has been published."""
        return self._finished

    @property
    def dropped(self) -> int:
        """Total frames dropped across this stream's subscribers."""
        with self._lock:
            return sum(s.dropped for s in self._subs) + self._gone_dropped

    def publish(self, kind: str, *, run: Optional[str], time: float,
                data: Optional[Dict[str, Any]] = None) -> StreamEvent:
        """Append one frame and wake every subscriber.  Never blocks.

        Raises:
            StreamClosed: when the stream already carried a terminal
                frame — feeds are append-only and end exactly once.
        """
        wake: List[Subscription]
        with self._lock:
            if self._finished:
                raise StreamClosed(
                    f"stream {self.token!r} already ended")
            event = StreamEvent(seq=len(self._history) + 1, time=time,
                                kind=kind, run=run, data=data or {})
            self._history.append(event)
            if event.terminal:
                self._finished = True
            dropped = 0
            for sub in self._subs:
                dropped += sub._offer_locked(event)
            wake = list(self._subs)
        if self._published is not None:
            self._published.inc()
        if dropped and self._dropped is not None:
            self._dropped.inc(float(dropped))
        for sub in wake:
            sub._wake()
        return event

    def subscribe(self, *, after: int = 0,
                  max_queue: Optional[int] = None) -> Subscription:
        """Attach a consumer, replaying history after cursor ``after``."""
        with self._lock:
            sub = Subscription(self, after=max(0, after),
                               max_queue=max_queue or self.max_queue)
            self._subs.append(sub)
            return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if not sub._detached:
                sub._detached = True
                self._gone_dropped += sub.dropped
                try:
                    self._subs.remove(sub)
                except ValueError:  # pragma: no cover - double close race
                    pass

    @property
    def subscriber_count(self) -> int:
        """How many subscriptions are currently attached."""
        with self._lock:
            return len(self._subs)

    def history(self) -> List[StreamEvent]:
        """A snapshot of every frame published so far."""
        with self._lock:
            return list(self._history)


class StreamHub:
    """Token → :class:`RunStream` registry with finished-stream LRU.

    Active (unfinished) streams are never evicted; finished ones are
    kept — newest last — up to ``keep_finished`` so resumed clients can
    still replay a completed feed, then dropped oldest-first.
    """

    def __init__(self, *, keep_finished: int = 64,
                 max_queue: int = DEFAULT_QUEUE_FRAMES,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.keep_finished = keep_finished
        self.max_queue = max_queue
        self._registry = registry
        self._lock = threading.Lock()
        self._streams: "OrderedDict[str, RunStream]" = OrderedDict()

    def create(self, token: str) -> RunStream:
        """Register a new stream under ``token``.

        Raises:
            ValueError: when the token is already registered.
        """
        with self._lock:
            if token in self._streams:
                raise ValueError(f"stream token {token!r} already exists")
            stream = RunStream(token, max_queue=self.max_queue,
                               registry=self._registry)
            self._streams[token] = stream
            self._evict_locked()
            return stream

    def get(self, token: str) -> Optional[RunStream]:
        """The stream for ``token``, or None (expired or never issued)."""
        with self._lock:
            stream = self._streams.get(token)
            if stream is not None:
                self._streams.move_to_end(token)
            return stream

    def _evict_locked(self) -> None:
        finished = [t for t, s in self._streams.items() if s.finished]
        excess = len(finished) - self.keep_finished
        for token in finished[:max(0, excess)]:
            del self._streams[token]

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)
