"""Live event streaming: watch a simulation run while it runs.

Where :mod:`repro.serve` made experiments *servable* and
:mod:`repro.store` made their results *durable*, this package makes a
running experiment *watchable*: engine events flow out of the
simulation as they happen, over an async-safe bus, onto SSE
connections and terminal tutor views — the infrastructure form of the
paper's "watch the parallelism happen" classroom moment.

- :mod:`~repro.stream.protocol` — the versioned wire schema: envelope
  frames (``seq`` / sim-time / kind / payload), SSE framing, and the
  reassembly helper that proves a feed byte-identical to the archived
  event log;
- :mod:`~repro.stream.bus` — a thread-safe fan-out bus with bounded
  per-subscriber queues (drop-oldest, counted, never blocking the
  engine) and gap-free replay-from-seq resume;
- :mod:`~repro.stream.observer` — the :class:`StreamObserver` engine
  tap (PR 2 Observer protocol) publishing archived-form event lines;
- :mod:`~repro.stream.runner` — execute (or cache-replay) one sweep
  trial through a stream, payloads byte-identical to unstreamed runs;
- :mod:`~repro.stream.tutor` — guided lessons (speedup, warmup,
  contention, pipelining) narrating a live feed with terminal Gantt
  and agents-waiting views, locally or against a remote server.

The headline invariant, pinned by tier-1 tests: for any seeded run,
the concatenated streamed feed — including one resumed mid-run from an
arbitrary cursor — reassembles to *exactly* the archived event log of
the same run.  Streaming is a tap, never a fork.
"""

from .bus import (
    DEFAULT_QUEUE_FRAMES,
    RunStream,
    StreamClosed,
    StreamHub,
    Subscription,
)
from .observer import StreamObserver, event_line, label_sequence_factory
from .protocol import (
    FRAME_KINDS,
    STREAM_PROTOCOL_VERSION,
    TERMINAL_KINDS,
    StreamEvent,
    StreamProtocolError,
    decode_sse_lines,
    dumps_frame,
    encode_sse,
    feed_makespans,
    heartbeat_comment,
    loads_frame,
    reassemble_feed,
    split_runs,
)
from .runner import (
    ACTIVITY_RUN_LABELS,
    StreamUnsupported,
    check_streamable,
    expected_run_labels,
    fail_stream,
    finish_stream,
    replay_payload,
    run_streamed_trial,
)
from .tutor import (
    LESSONS,
    LessonReport,
    TutorError,
    TutorLesson,
    available_lessons,
    lesson_catalog,
    run_lesson,
)

__all__ = [
    "ACTIVITY_RUN_LABELS",
    "DEFAULT_QUEUE_FRAMES",
    "FRAME_KINDS",
    "LESSONS",
    "LessonReport",
    "RunStream",
    "STREAM_PROTOCOL_VERSION",
    "StreamClosed",
    "StreamEvent",
    "StreamHub",
    "StreamObserver",
    "StreamProtocolError",
    "StreamUnsupported",
    "Subscription",
    "TERMINAL_KINDS",
    "TutorError",
    "TutorLesson",
    "available_lessons",
    "check_streamable",
    "decode_sse_lines",
    "dumps_frame",
    "encode_sse",
    "event_line",
    "expected_run_labels",
    "fail_stream",
    "feed_makespans",
    "finish_stream",
    "heartbeat_comment",
    "label_sequence_factory",
    "lesson_catalog",
    "loads_frame",
    "reassemble_feed",
    "replay_payload",
    "run_lesson",
    "run_streamed_trial",
    "split_runs",
]
