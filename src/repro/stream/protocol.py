"""The stream wire schema: versioned event envelopes and SSE framing.

One streamed run is a totally-ordered feed of :class:`StreamEvent`
envelopes.  The envelope is deliberately thin:

- ``seq`` — the *stream cursor*: 1-based, contiguous, assigned by the
  bus in publish order.  It is the resume key (``Last-Event-ID`` /
  ``?after=``) and is distinct from the engine's own per-run event
  sequence numbers, which live inside the payload.
- ``time`` — the simulated timestamp of the underlying engine event
  (monotonic *within* one run; control frames carry the time of the
  run boundary they mark).
- ``kind`` — the span kind: ``"event"`` for engine events, or a
  control kind (``run_start`` / ``run_end`` / ``end`` / ``bye`` /
  ``error``).  ``end`` and ``bye`` are *terminal*: nothing follows
  them, ever.
- ``run`` — the run label the frame belongs to (``scenario3``,
  ``scenario1_repeat``, ...); lifecycle-only frames (``end``, ``bye``)
  carry ``None``.
- ``data`` — the payload.  For ``kind="event"`` this is
  ``{"line": <canonical JSON line>}`` where the line is *exactly* one
  line of :func:`repro.sim.export.export_events` — the archived
  event-log serialization.  That identity is the whole point:
  concatenating the ``line`` fields of a run's ``event`` frames (plus
  the trailing newline) reproduces the archived event log **byte for
  byte** (:func:`reassemble_feed`), so streaming can never disagree
  with the archive.

The SSE mapping is one envelope per frame: ``id:`` carries ``seq``,
``data:`` carries the canonical JSON of the envelope, and comment
lines (``: ...``) are heartbeats a client ignores.  Feeds are
idempotent under resume: frames replayed after a reconnect carry their
original ``seq``, and :func:`reassemble_feed` deduplicates on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Version stamp on every envelope; bump on breaking schema changes.
STREAM_PROTOCOL_VERSION = 1

#: Frame kinds that end a feed — nothing may follow them.
TERMINAL_KINDS = frozenset({"end", "bye", "error"})

#: Every kind a conforming feed may carry.
FRAME_KINDS = frozenset(
    {"event", "run_start", "run_end"}) | TERMINAL_KINDS


class StreamProtocolError(Exception):
    """Raised for malformed frames or feeds that violate the schema."""


@dataclass(frozen=True)
class StreamEvent:
    """One envelope of the stream feed (see the module docstring)."""

    seq: int
    time: float
    kind: str
    run: Optional[str]
    data: Dict[str, Any]

    @property
    def terminal(self) -> bool:
        """Whether this frame ends the feed."""
        return self.kind in TERMINAL_KINDS

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-safe wire dict (stable key set, versioned)."""
        return {"v": STREAM_PROTOCOL_VERSION, "seq": self.seq,
                "time": self.time, "kind": self.kind, "run": self.run,
                "data": self.data}

    @classmethod
    def from_wire(cls, d: Dict[str, Any]) -> "StreamEvent":
        """Rebuild an envelope from its wire dict.

        Raises:
            StreamProtocolError: on missing fields, unknown kinds, or a
                version this library does not speak.
        """
        try:
            version = int(d["v"])
            if version != STREAM_PROTOCOL_VERSION:
                raise StreamProtocolError(
                    f"stream protocol v{version} not supported "
                    f"(this library speaks v{STREAM_PROTOCOL_VERSION})")
            kind = str(d["kind"])
            if kind not in FRAME_KINDS:
                raise StreamProtocolError(f"unknown frame kind {kind!r}")
            run = d.get("run")
            return cls(seq=int(d["seq"]), time=float(d["time"]),
                       kind=kind,
                       run=None if run is None else str(run),
                       data=dict(d.get("data", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamProtocolError(
                f"bad stream frame {d!r}: {exc}") from exc


def dumps_frame(event: StreamEvent) -> str:
    """Canonical JSON for one envelope (sorted keys, compact)."""
    return json.dumps(event.to_wire(), sort_keys=True,
                      separators=(",", ":"))


def loads_frame(text: str) -> StreamEvent:
    """Parse one envelope from its JSON text.

    Raises:
        StreamProtocolError: on unparseable JSON or a bad envelope.
    """
    try:
        d = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StreamProtocolError(
            f"invalid frame JSON: {exc}") from exc
    if not isinstance(d, dict):
        raise StreamProtocolError(f"frame must be an object, got {d!r}")
    return StreamEvent.from_wire(d)


def encode_sse(event: StreamEvent) -> bytes:
    """One envelope as a Server-Sent-Events frame (``id`` + ``data``)."""
    return (f"id: {event.seq}\ndata: {dumps_frame(event)}\n\n"
            .encode("utf-8"))


def heartbeat_comment(n: int) -> bytes:
    """The ``n``-th keepalive comment frame (clients must ignore it)."""
    return f": keepalive {n}\n\n".encode("utf-8")


def decode_sse_lines(lines: Iterable[str]
                     ) -> Iterable[StreamEvent]:
    """Parse decoded SSE text lines back into envelopes.

    Comment lines and ``id:`` fields are consumed but the envelope is
    authoritative (its ``seq`` *is* the id).  Yields events as their
    blank-line terminators arrive, so it works on a live feed.
    """
    data: List[str] = []
    for line in lines:
        line = line.rstrip("\n").rstrip("\r")
        if not line:
            if data:
                yield loads_frame("\n".join(data))
                data = []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "data":
            data.append(value)
    if data:  # tolerate a feed truncated before its final blank line
        yield loads_frame("\n".join(data))


def reassemble_feed(events: Iterable[StreamEvent]
                    ) -> Dict[str, str]:
    """Rebuild per-run archived event logs from a feed.

    Deduplicates on ``seq`` (resumed feeds legitimately repeat frames),
    then checks the surviving cursor sequence is contiguous — a hole
    means events were dropped for this subscriber and the caller should
    resume from the gap instead of trusting the text.

    Returns:
        Mapping of run label to event-log text, byte-identical to
        :func:`repro.sim.export.export_events` of that run's events.

    Raises:
        StreamProtocolError: on a gap in the deduplicated cursor
            sequence or an ``event`` frame without its ``line``.
    """
    by_seq: Dict[int, StreamEvent] = {}
    for ev in events:
        by_seq.setdefault(ev.seq, ev)
    lines: Dict[str, List[str]] = {}
    expected = None
    for seq in sorted(by_seq):
        if expected is not None and seq != expected:
            raise StreamProtocolError(
                f"gap in stream feed: expected seq {expected}, "
                f"got {seq} (dropped frames; resume from "
                f"{expected - 1})")
        expected = seq + 1
        ev = by_seq[seq]
        if ev.kind != "event":
            continue
        if "line" not in ev.data or ev.run is None:
            raise StreamProtocolError(
                f"event frame {seq} carries no line/run")
        lines.setdefault(ev.run, []).append(str(ev.data["line"]))
    return {run: "\n".join(ls) + "\n" for run, ls in lines.items()}


def feed_makespans(events: Iterable[StreamEvent]
                   ) -> Dict[str, float]:
    """Per-run makespans from the ``run_end`` control frames."""
    out: Dict[str, float] = {}
    for ev in events:
        if ev.kind == "run_end" and ev.run is not None:
            out[ev.run] = float(ev.data.get("makespan", ev.time))
    return out


def split_runs(events: Iterable[StreamEvent]
               ) -> List[Tuple[str, List[StreamEvent]]]:
    """Group a feed's ``event`` frames by run label, in feed order."""
    out: List[Tuple[str, List[StreamEvent]]] = []
    for ev in events:
        if ev.kind != "event" or ev.run is None:
            continue
        if not out or out[-1][0] != ev.run:
            out.append((ev.run, []))
        out[-1][1].append(ev)
    return out
