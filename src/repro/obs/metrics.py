"""A lightweight metrics registry: counters, gauges, histograms.

Prometheus-flavored but dependency-free: metrics are named, typed,
optionally labeled, and render to the standard text exposition format
via :meth:`MetricsRegistry.render_prometheus`.  Everything a
:class:`~repro.obs.observer.RunObserver` records is derived from
simulated-time events, so two identical-seed runs dump byte-identical
metrics text (a regression test pins this).

Only the small subset of Prometheus semantics the simulator needs is
implemented: monotonic counters, set-only gauges, fixed-bucket
cumulative histograms, and flat (non-nested) label sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(Exception):
    """Raised on registry misuse (type clashes, negative counter incs)."""


def _label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None
                   ) -> str:
    """Render a label key as the ``{k="v",...}`` exposition suffix."""
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(v: float) -> str:
    """Integers without a decimal point, floats with repr precision."""
    return str(int(v)) if float(v).is_integer() else repr(float(v))


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the labeled series.

        Raises:
            MetricsError: on a negative increment.
        """
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count for one labeled series (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[str]:
        """Exposition lines for every labeled series, sorted."""
        return [
            f"{self.name}{_format_labels(key)} {_format_value(v)}"
            for key, v in sorted(self._values.items())
        ]


class Gauge:
    """A value that can go up or down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        """Current value (0.0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[str]:
        """Exposition lines for every labeled series, sorted."""
        return [
            f"{self.name}{_format_labels(key)} {_format_value(v)}"
            for key, v in sorted(self._values.items())
        ]


#: Default histogram buckets, tuned for simulated-seconds durations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)

#: Buckets for host-time request latencies (seconds) — used by the
#: serving layer (:mod:`repro.serve`), where durations are wall-clock
#: milliseconds-to-seconds rather than simulated classroom seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for micro-batch sizes (request counts per dispatch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


class Histogram:
    """Cumulative fixed-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not self.buckets:
            raise MetricsError(f"histogram {self.name!r} needs >= 1 bucket")
        # per label key: (bucket counts, sum, count)
        self._series: Dict[LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(labels)
        counts, total, n = self._series.get(
            key, ([0] * len(self.buckets), 0.0, 0))
        for i, le in enumerate(self.buckets):
            if value <= le:
                counts[i] += 1
        self._series[key] = (counts, total + float(value), n + 1)

    def count(self, **labels: str) -> int:
        """Number of observations in one labeled series."""
        return self._series.get(_label_key(labels),
                                ([], 0.0, 0))[2]

    def sum(self, **labels: str) -> float:
        """Sum of observations in one labeled series."""
        return self._series.get(_label_key(labels),
                                ([], 0.0, 0))[1]

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Linear interpolation within the bucket that crosses rank
        ``q * count``, the same estimate Prometheus's
        ``histogram_quantile`` computes server-side.  Observations above
        the last finite bucket clamp to that bucket bound; an empty
        series returns 0.0.

        Raises:
            MetricsError: when ``q`` is outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        counts, _, n = self._series.get(
            _label_key(labels), ([], 0.0, 0))
        if n == 0:
            return 0.0
        rank = q * n
        lo = 0.0
        prev = 0
        for le, c in zip(self.buckets, counts):
            if c >= rank:
                width = c - prev
                # An empty bucket crossing the rank (q=0, or sparse
                # low buckets) holds no mass: the estimate stays at its
                # lower bound instead of jumping to the bucket ceiling.
                frac = 0.0 if width == 0 else (rank - prev) / width
                return lo + (le - lo) * frac
            lo, prev = le, c
        return self.buckets[-1]

    def samples(self) -> List[str]:
        """Exposition lines: ``_bucket``/``_sum``/``_count`` per series."""
        out: List[str] = []
        for key, (counts, total, n) in sorted(self._series.items()):
            for le, c in zip(self.buckets, counts):
                suffix = _format_labels(key, ("le", _format_value(le)))
                out.append(f"{self.name}_bucket{suffix} {c}")
            inf = _format_labels(key, ("le", "+Inf"))
            out.append(f"{self.name}_bucket{inf} {n}")
            out.append(f"{self.name}_sum{_format_labels(key)} "
                       f"{_format_value(round(total, 9))}")
            out.append(f"{self.name}_count{_format_labels(key)} {n}")
        return out


class MetricsRegistry:
    """Owns every metric of one run and renders the combined dump.

    Getter methods are idempotent: asking for an existing name returns
    the existing metric (so instrumentation sites don't need to
    coordinate creation), but asking with a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, help_text: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")  # type: ignore[attr-defined]
            return existing
        metric = cls(name, help_text, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Fetch or create a counter."""
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Fetch or create a gauge."""
        return self._get(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Fetch or create a histogram."""
        return self._get(Histogram, name, help_text, buckets=buckets)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat ``{metric: {label-suffix: value}}`` view for summaries.

        Histograms contribute their ``_sum`` and ``_count`` series.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, (Counter, Gauge)):
                out[name] = {
                    _format_labels(key): v
                    for key, v in sorted(m._values.items())
                }
            elif isinstance(m, Histogram):
                out[name + "_sum"] = {
                    _format_labels(key): round(total, 9)
                    for key, (c, total, n) in sorted(m._series.items())
                }
                out[name + "_count"] = {
                    _format_labels(key): float(n)
                    for key, (c, total, n) in sorted(m._series.items())
                }
        return out

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            m = self._metrics[name]
            if m.help_text:  # type: ignore[attr-defined]
                lines.append(f"# HELP {name} {m.help_text}")  # type: ignore[attr-defined]
            lines.append(f"# TYPE {name} {m.kind}")  # type: ignore[attr-defined]
            lines.extend(m.samples())  # type: ignore[attr-defined]
        return "\n".join(lines) + ("\n" if lines else "")
