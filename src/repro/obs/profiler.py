"""Host wall-clock profiling of engine hot paths.

The simulator's *simulated* time is deterministic; how much *host* time
the engine burns to produce it is not, and that gap is exactly what the
performance roadmap needs to watch.  :class:`HotPathProfiler`
accumulates host-seconds per named section (engine dispatch, kernel
callbacks, whatever instrumentation opens) and reports a per-run
summary of where host time went, alongside the simulated-to-host speed
ratio.

Host timings never enter the event trace, the spans, or the metrics
dump — they live only in the profile report — so enabling the profiler
cannot perturb determinism guarantees.  A fake ``time_fn`` can be
injected for deterministic tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional


class SectionStats:
    """Accumulated host time for one named section."""

    def __init__(self) -> None:
        self.calls: int = 0
        self.host_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one timed call into the totals."""
        self.calls += 1
        self.host_seconds += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SectionStats(calls={self.calls}, "
                f"host_seconds={self.host_seconds:.6f})")


class HotPathProfiler:
    """Accumulates host wall-clock time per instrumented section.

    Typical sections when driven by a
    :class:`~repro.obs.observer.RunObserver`:

    - ``dispatch`` — time inside :meth:`~repro.sim.engine.Simulator`
      process steps (one sample per scheduler dispatch).
    - ``kernel_call`` — time inside scheduled kernel callbacks (fault
      injections, repairs).

    Args:
        time_fn: clock returning seconds as a float; defaults to
            :func:`time.perf_counter`.  Inject a fake for tests.
    """

    def __init__(self,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.time_fn: Callable[[], float] = time_fn or time.perf_counter
        self.sections: Dict[str, SectionStats] = {}
        self._run_started_at: Optional[float] = None
        self._run_host_seconds: float = 0.0

    # -- run envelope ------------------------------------------------------
    def start_run(self) -> None:
        """Mark the start of the run's host-time envelope."""
        self._run_started_at = self.time_fn()

    def end_run(self) -> None:
        """Close the run envelope (idempotent)."""
        if self._run_started_at is not None:
            self._run_host_seconds += self.time_fn() - self._run_started_at
            self._run_started_at = None

    @property
    def run_host_seconds(self) -> float:
        """Total host seconds between start_run and end_run (so far)."""
        if self._run_started_at is not None:
            return (self._run_host_seconds
                    + self.time_fn() - self._run_started_at)
        return self._run_host_seconds

    # -- sections ----------------------------------------------------------
    def add(self, section: str, seconds: float) -> None:
        """Record one timed call against a section."""
        self.sections.setdefault(section, SectionStats()).add(seconds)

    @contextmanager
    def profile(self, section: str) -> Iterator[None]:
        """Context manager timing its body into ``section``."""
        t0 = self.time_fn()
        try:
            yield
        finally:
            self.add(section, self.time_fn() - t0)

    # -- reporting ---------------------------------------------------------
    def report(self, simulated_seconds: Optional[float] = None) -> Dict:
        """Summarize where host time went.

        Args:
            simulated_seconds: the run's simulated makespan; when given,
                the report includes ``sim_to_host_ratio`` (simulated
                seconds produced per host second — the engine's "speed
                over real time" figure).
        """
        sections = {
            name: {"calls": s.calls,
                   "host_seconds": s.host_seconds}
            for name, s in sorted(self.sections.items())
        }
        accounted = sum(s.host_seconds for s in self.sections.values())
        out: Dict = {
            "host_wall_seconds": self.run_host_seconds,
            "accounted_seconds": accounted,
            "sections": sections,
        }
        if simulated_seconds is not None:
            out["simulated_seconds"] = simulated_seconds
            host = self.run_host_seconds
            out["sim_to_host_ratio"] = (
                simulated_seconds / host if host > 0 else float("inf"))
        return out
