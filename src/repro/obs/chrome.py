"""Chrome ``trace_event`` JSON export of span forests.

Produces the JSON object format consumed by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: a ``traceEvents`` array of
complete ("X"), instant ("i"), counter ("C") and metadata ("M")
events.  Simulated seconds map to trace microseconds, every span track
becomes a named thread, and span tags ride along as ``args`` so
clicking a slice in the UI shows the cell/color/resource involved.

The export is a pure function of the spans (plus optional counter
series), so identical-seed runs serialize to identical JSON.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import Span

#: Simulated seconds -> Chrome trace microseconds.
MICROS_PER_SIM_SECOND = 1_000_000.0

#: A sampled counter series: name -> [(time, value), ...].
CounterSeries = Dict[str, Sequence[Tuple[float, float]]]


def _ts(sim_seconds: float) -> float:
    """Simulated seconds as trace microseconds (rounded for stable JSON)."""
    return round(sim_seconds * MICROS_PER_SIM_SECOND, 3)


def _json_safe(value: Any) -> Any:
    """Coerce tag values into JSON-representable form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def span_to_trace_event(span: Span, tid: int, pid: int = 1) -> Dict[str, Any]:
    """One span as a Chrome trace event dict ("X" slice or "i" instant)."""
    base: Dict[str, Any] = {
        "name": span.name,
        "cat": span.category,
        "pid": pid,
        "tid": tid,
        "ts": _ts(span.start),
        "args": _json_safe(span.tags),
    }
    if span.is_instant:
        base["ph"] = "i"
        base["s"] = "t"  # thread-scoped instant
    else:
        base["ph"] = "X"
        base["dur"] = _ts(span.duration)
    return base


def to_chrome_trace(spans: Iterable[Span], *,
                    counters: Optional[CounterSeries] = None,
                    process_name: str = "flagsim",
                    pid: int = 1) -> Dict[str, Any]:
    """Package spans (and optional counter series) as a trace document.

    Tracks are assigned thread ids in sorted order and named via "M"
    metadata events, so Perfetto shows one labeled row per agent /
    resource / engine track.

    Returns:
        The JSON-object-format trace: ``{"traceEvents": [...],
        "displayTimeUnit": "ms", ...}``.  Serialize with
        :func:`dump_chrome_trace` or ``json.dump``.
    """
    spans = list(spans)
    tracks = sorted({s.track for s in spans})
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    for track in tracks:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": tids[track], "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": tids[track], "args": {"sort_index": tids[track]},
        })
    for span in spans:
        events.append(span_to_trace_event(span, tids[span.track], pid))
    for cname in sorted(counters or {}):
        for t, value in (counters or {})[cname]:
            events.append({
                "name": cname, "ph": "C", "pid": pid, "tid": 0,
                "ts": _ts(t), "args": {"value": value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit":
                      "1 trace us == 1 simulated us"},
    }


def dump_chrome_trace(trace: Dict[str, Any],
                      fp: Optional[IO[str]] = None, *,
                      indent: Optional[int] = None) -> str:
    """Serialize a trace document to JSON text (and write to ``fp``)."""
    text = json.dumps(trace, sort_keys=True, indent=indent)
    if fp is not None:
        fp.write(text)
    return text
