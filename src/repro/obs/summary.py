"""The per-run observability digest attached to ``RunResult.obs``.

An :class:`ObsSummary` is what a caller gets "for free" after running a
scenario with a :class:`~repro.obs.observer.RunObserver` attached: span
and event counts, the headline counters, wait/stroke time totals, and
the host-time profile — without holding onto the observer itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class ObsSummary:
    """Aggregate observability record for one simulated run.

    Attributes:
        makespan: simulated seconds the run covered.
        n_events: engine events logged.
        n_spans: spans reconstructed (slices + instants).
        counters: flat ``{name{labels}: value}`` counter/gauge snapshot.
        histograms: flat ``{name_sum/_count{labels}: value}`` snapshot.
        profile: host-time report from
            :meth:`~repro.obs.profiler.HotPathProfiler.report`.
    """

    makespan: float
    n_events: int
    n_spans: int
    counters: Dict[str, Dict[str, float]] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)

    def counter(self, name: str, labels: str = "") -> float:
        """Look up one counter/gauge series (0.0 when absent)."""
        return self.counters.get(name, {}).get(labels, 0.0)

    def format(self) -> str:
        """Human-readable multi-line digest for CLI output."""
        lines = [
            f"makespan          : {self.makespan:10.2f} simulated s",
            f"events logged     : {self.n_events:10d}",
            f"spans built       : {self.n_spans:10d}",
        ]
        for name in sorted(self.counters):
            series = self.counters[name]
            total = sum(series.values())
            lines.append(f"{name:18s}: {total:10g}")
        for name in sorted(self.histograms):
            if name.endswith("_sum"):
                base = name[:-4]
                total = sum(self.histograms[name].values())
                count = sum(
                    self.histograms.get(base + "_count", {}).values())
                lines.append(
                    f"{base:18s}: {total:10.2f} s over {int(count)} obs")
        prof = self.profile
        if prof:
            host = prof.get("host_wall_seconds", 0.0)
            lines.append(f"host wall time    : {host:10.4f} s")
            ratio = prof.get("sim_to_host_ratio")
            if ratio is not None and ratio != float("inf"):
                lines.append(f"sim/host speed    : {ratio:10.0f}x")
            for sec, stats in prof.get("sections", {}).items():
                lines.append(
                    f"  {sec:16s}: {stats['host_seconds']:.4f} s "
                    f"/ {stats['calls']} calls")
        return "\n".join(lines)
