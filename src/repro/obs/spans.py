"""Hierarchical spans reconstructed from the engine's event stream.

A :class:`Span` is a named, tagged interval on one *track* (an agent, a
resource, the engine itself).  Spans nest: a worker's ``wait``/``hold``/
``stroke`` spans all live inside its ``process`` span, and a ``stroke``
span lives inside the ``hold`` span of the implement it used.  The
nesting is what makes a Chrome trace of scenario 4 legible — you can
*see* the red marker travel down the line of waiting workers.

Spans are built exclusively from simulated-time :class:`~repro.sim.
events.Event` records, so two identical-seed runs produce identical
spans; host wall-clock never leaks in (that lives in
:mod:`repro.obs.profiler`).  The builder can run incrementally (fed one
event at a time by a live :class:`~repro.obs.observer.RunObserver`) or
over an archived event list via :func:`build_spans`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim.events import Event, EventKind


class SpanError(Exception):
    """Raised on span bookkeeping misuse (ending an unknown span, ...)."""


@dataclass
class Span:
    """One named interval on a track, with tags and a parent pointer.

    Attributes:
        sid: unique id within one builder (dense, starts at 0).
        name: human-readable label ("wait:red_marker", "stroke", ...).
        category: coarse grouping used for styling and metrics
            ("process", "wait", "hold", "stroke", "fault", "recovery",
            "run").
        track: timeline this span belongs to (agent name, resource name,
            or "engine").
        start: simulated seconds when the span opened.
        end: simulated seconds when it closed; None while still open.
        parent: sid of the enclosing span on the same track, if any.
        tags: span-specific payload (resource, cell, color, ...).
    """

    sid: int
    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """Whether the span has not been closed yet."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def is_instant(self) -> bool:
        """Whether this is a zero-duration point event."""
        return self.end is not None and self.end == self.start


class SpanBuilder:
    """Turns a stream of engine events into nested spans.

    Use :meth:`feed` for each event (in emission order) and
    :meth:`finish` once the run is over; or call the module-level
    :func:`build_spans` on a complete event list.  ``feed`` returns the
    spans it *closed*, which is how the metrics layer observes wait and
    stroke durations without re-deriving them.

    The builder also exposes :meth:`begin`/:meth:`end`/:meth:`instant`
    so instrumentation outside the event stream (recovery windows, the
    run envelope) can add spans on the same timeline.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._ids = itertools.count()
        self._stacks: Dict[str, List[int]] = {}
        # open span sid per (category-specific) key
        self._open_wait: Dict[Tuple[str, str], int] = {}
        self._open_hold: Dict[Tuple[str, str], int] = {}
        self._open_stroke: Dict[str, int] = {}
        self._open_process: Dict[str, int] = {}

    # -- manual span API ---------------------------------------------------
    def begin(self, name: str, category: str, track: str, time: float,
              **tags: Any) -> int:
        """Open a span; its parent is the track's innermost open span."""
        stack = self._stacks.setdefault(track, [])
        span = Span(
            sid=next(self._ids), name=name, category=category, track=track,
            start=time, parent=stack[-1] if stack else None, tags=tags,
        )
        self.spans.append(span)
        stack.append(span.sid)
        return span.sid

    def end(self, sid: int, time: float, **tags: Any) -> Span:
        """Close a span (and anything opened inside it that is still open).

        Raises:
            SpanError: for an unknown sid or an already-closed span.
        """
        try:
            span = self.spans[sid]
        except IndexError:
            raise SpanError(f"unknown span id {sid}") from None
        if span.end is not None:
            raise SpanError(f"span {sid} ({span.name!r}) already closed")
        stack = self._stacks.get(span.track, [])
        # LIFO unwind: close abandoned inner spans at the same time.
        while stack and stack[-1] != sid:
            inner = self.spans[stack.pop()]
            if inner.end is None:
                inner.end = time
                inner.tags.setdefault("unwound", True)
                self._drop_index(inner.sid)
        if stack and stack[-1] == sid:
            stack.pop()
        span.end = time
        span.tags.update(tags)
        self._drop_index(sid)
        return span

    def instant(self, name: str, category: str, track: str, time: float,
                **tags: Any) -> int:
        """Record a zero-duration point event on a track."""
        stack = self._stacks.get(track, [])
        span = Span(
            sid=next(self._ids), name=name, category=category, track=track,
            start=time, end=time, parent=stack[-1] if stack else None,
            tags=tags,
        )
        self.spans.append(span)
        return span.sid

    def _drop_index(self, sid: int) -> None:
        """Remove a closed span from the category indexes."""
        for index in (self._open_wait, self._open_hold):
            for key, open_sid in list(index.items()):
                if open_sid == sid:
                    del index[key]
        for index in (self._open_stroke, self._open_process):
            for key, open_sid in list(index.items()):
                if open_sid == sid:
                    del index[key]

    # -- event-driven construction -----------------------------------------
    def feed(self, event: Event) -> List[Span]:
        """Update span state from one engine event; returns closed spans."""
        kind, agent, data, t = event.kind, event.agent, event.data, event.time
        closed: List[Span] = []

        if kind == EventKind.PROCESS_START and agent is not None:
            self._open_process[agent] = self.begin(
                f"process:{agent}", "process", agent, t)

        elif kind in (EventKind.PROCESS_DONE, EventKind.PROCESS_KILLED) \
                and agent is not None:
            sid = self._open_process.pop(agent, None)
            if sid is not None:
                tags = {}
                if kind == EventKind.PROCESS_KILLED:
                    tags = {"killed": True, "reason": data.get("reason")}
                closed.append(self.end(sid, t, **tags))

        elif kind == EventKind.RESOURCE_REQUEST and agent is not None:
            res = str(data.get("resource"))
            key = (agent, res)
            prior = self._open_wait.pop(key, None)
            if prior is not None:
                # A stall dropped the queue slot; the re-request starts a
                # fresh wait span.
                closed.append(self.end(prior, t, requeued=True))
            self._open_wait[key] = self.begin(
                f"wait:{res}", "wait", agent, t, resource=res)

        elif kind == EventKind.RESOURCE_ACQUIRE and agent is not None:
            res = str(data.get("resource"))
            key = (agent, res)
            sid = self._open_wait.pop(key, None)
            if sid is not None:
                closed.append(self.end(sid, t))
            self._open_hold[key] = self.begin(
                f"hold:{res}", "hold", agent, t, resource=res)

        elif kind == EventKind.RESOURCE_RELEASE and agent is not None:
            res = str(data.get("resource"))
            sid = self._open_hold.pop((agent, res), None)
            if sid is not None:
                closed.append(self.end(sid, t))

        elif kind == EventKind.STROKE_START and agent is not None:
            self._open_stroke[agent] = self.begin(
                "stroke", "stroke", agent, t,
                cell=data.get("cell"), color=data.get("color"),
                layer=data.get("layer"))

        elif kind == EventKind.STROKE_END and agent is not None:
            sid = self._open_stroke.pop(agent, None)
            if sid is not None:
                closed.append(self.end(sid, t))

        elif kind == EventKind.HANDOFF:
            self.instant("handoff", "handoff", agent or "engine", t, **data)

        elif kind == EventKind.FAULT_INJECTED:
            self.instant(f"fault:{data.get('fault', 'unknown')}", "fault",
                         agent or "faults", t, **data)

        elif kind == EventKind.STALL:
            self.instant("stall", "fault", agent or "faults", t, **data)

        elif kind == EventKind.FAULT:
            self.instant("implement_fault", "fault", agent or "faults", t,
                         **data)

        elif kind in (EventKind.RESOURCE_FAILED, EventKind.RESOURCE_REPAIRED):
            self.instant(kind.value, "fault",
                         str(data.get("resource", "resources")), t, **data)

        elif kind in (EventKind.OP_REASSIGNED, EventKind.OP_ABANDONED):
            self.instant(kind.value, "recovery", agent or "recovery", t,
                         **data)

        return closed

    def finish(self, at: float) -> List[Span]:
        """Close every span still open (end of run, pause, or crash)."""
        closed = []
        for span in self.spans:
            if span.end is None:
                span.end = at
                span.tags.setdefault("unclosed", True)
                closed.append(span)
        self._stacks.clear()
        self._open_wait.clear()
        self._open_hold.clear()
        self._open_stroke.clear()
        self._open_process.clear()
        return closed

    # -- queries -----------------------------------------------------------
    def by_category(self, category: str) -> List[Span]:
        """All spans of one category, in creation order."""
        return [s for s in self.spans if s.category == category]

    def tracks(self) -> List[str]:
        """Every track that appears, sorted."""
        return sorted({s.track for s in self.spans})

    def children(self, sid: int) -> List[Span]:
        """Direct child spans of a span."""
        return [s for s in self.spans if s.parent == sid]


def build_spans(events: Iterable[Event],
                finish_at: Optional[float] = None) -> List[Span]:
    """Reconstruct the full span forest from an archived event list.

    Args:
        events: engine events in emission order (e.g. from
            :func:`repro.sim.export.import_events`).
        finish_at: close still-open spans at this time; defaults to the
            last event's timestamp.

    Returns:
        All spans in creation order, every one closed.
    """
    builder = SpanBuilder()
    last = 0.0
    for e in events:
        builder.feed(e)
        last = e.time
    builder.finish(last if finish_at is None else finish_at)
    return builder.spans
