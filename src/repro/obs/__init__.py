"""Observability for the simulation engine: spans, metrics, profiling.

The subsystem the performance roadmap hangs off: a span-based tracer
that reconstructs nested timelines from engine events, a Prometheus-
style metrics registry, host wall-clock profiling of engine hot paths,
and exporters for Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto) and plaintext metrics dumps.

Everything hangs off the :class:`Observer` protocol, which the engine
calls only behind ``if observer is not None`` guards — disabled, a run
is byte-identical to an unobserved one; enabled, the observer reads the
event stream but never writes to it, so traces stay deterministic.

Quickstart::

    from repro.obs import RunObserver
    obs = RunObserver()
    result = run_scenario(scenario, spec, team, rng, observer=obs)
    open("trace.json", "w").write(obs.chrome_trace_json())
    print(obs.prometheus())
    print(result.obs.format())
"""

from .spans import Span, SpanBuilder, SpanError, build_spans
from .metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from .profiler import HotPathProfiler, SectionStats
from .chrome import (
    MICROS_PER_SIM_SECOND,
    dump_chrome_trace,
    span_to_trace_event,
    to_chrome_trace,
)
from .summary import ObsSummary
from .observer import NullObserver, Observer, RunObserver, \
    TeeObserver

__all__ = [
    "Span",
    "SpanBuilder",
    "SpanError",
    "build_spans",
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "HotPathProfiler",
    "SectionStats",
    "MICROS_PER_SIM_SECOND",
    "dump_chrome_trace",
    "span_to_trace_event",
    "to_chrome_trace",
    "ObsSummary",
    "NullObserver",
    "Observer",
    "RunObserver",
    "TeeObserver",
]
