"""The engine-facing observer protocol and its standard implementation.

The contract with :class:`~repro.sim.engine.Simulator` is deliberately
one-sided: the engine calls observer hooks *only* behind
``if self.observer is not None`` guards, never allocates on their
behalf, and never lets an observer touch the event log or the
deterministic sequence counter.  With no observer attached, the run is
byte-identical to a pre-observability build (a regression test pins
this); with one attached, the event stream itself is still untouched —
observers read, they do not write.

:class:`Observer` is the abstract hook set (all no-ops — subclass and
override what you need).  :class:`RunObserver` is the batteries-included
implementation: it builds nested spans, accumulates metrics, profiles
host time, and exports Chrome traces, Prometheus text, and an
:class:`~repro.obs.summary.ObsSummary`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..sim.events import Event, EventKind
from .chrome import dump_chrome_trace, to_chrome_trace
from .metrics import MetricsRegistry
from .profiler import HotPathProfiler
from .spans import SpanBuilder
from .summary import ObsSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class Observer:
    """Hook set the simulator calls when observability is enabled.

    Every hook is a no-op here; subclasses override the ones they care
    about.  Hooks run synchronously inside the engine loop, so they
    must not mutate simulation state (resources, the heap, the event
    list) — they are read-only taps.
    """

    def on_run_start(self, sim: "Simulator") -> None:
        """The engine entered :meth:`~repro.sim.engine.Simulator.run`."""

    def on_run_end(self, sim: "Simulator", makespan: float) -> None:
        """The run completed (or paused at its ``until`` horizon)."""

    def on_event(self, event: Event) -> None:
        """One :class:`~repro.sim.events.Event` was logged."""

    def on_dispatch_start(self, process: str, time: float) -> None:
        """A scheduler dispatch (process step or kernel call) begins."""

    def on_dispatch_end(self, process: str, time: float) -> None:
        """The dispatch that just started has finished."""

    def on_recovery(self, action: str, start: float, end: float,
                    **tags: Any) -> None:
        """A recovery action with a real time window was scheduled.

        Args:
            action: what recovery did ("redistribute_pickup",
                "spare_fetch", ...).
            start: simulated time the window opens.
            end: simulated time the window closes.
            tags: action-specific payload (resource, agent, n_ops, ...).
        """


class NullObserver(Observer):
    """An explicitly-disabled observer (identical to passing ``None``,
    but lets call sites keep a non-optional reference)."""


class TeeObserver(Observer):
    """Fan one engine's hook stream out to several observers.

    The engine supports exactly one attached observer; a tee lets a
    run feed independent taps at once — e.g. a
    :class:`RunObserver` building the obs digest *and* a
    ``repro.stream`` publisher pushing live frames.  Hooks are relayed
    in construction order; ``None`` entries are skipped so call sites
    can compose optional taps without branching.
    """

    def __init__(self, *observers: Optional[Observer]) -> None:
        self.observers: Tuple[Observer, ...] = tuple(
            o for o in observers if o is not None)

    def find(self, cls: type) -> Optional[Observer]:
        """The first tee'd observer of ``cls``, or None."""
        for obs in self.observers:
            if isinstance(obs, cls):
                return obs
        return None

    def on_run_start(self, sim: "Simulator") -> None:
        """Relay the run-start hook to every tee'd observer."""
        for obs in self.observers:
            obs.on_run_start(sim)

    def on_run_end(self, sim: "Simulator", makespan: float) -> None:
        """Relay the run-end hook to every tee'd observer."""
        for obs in self.observers:
            obs.on_run_end(sim, makespan)

    def on_event(self, event: Event) -> None:
        """Relay one engine event to every tee'd observer."""
        for obs in self.observers:
            obs.on_event(event)

    def on_dispatch_start(self, process: str, time: float) -> None:
        """Relay the dispatch-start hook to every tee'd observer."""
        for obs in self.observers:
            obs.on_dispatch_start(process, time)

    def on_dispatch_end(self, process: str, time: float) -> None:
        """Relay the dispatch-end hook to every tee'd observer."""
        for obs in self.observers:
            obs.on_dispatch_end(process, time)

    def on_recovery(self, action: str, start: float, end: float,
                    **tags: Any) -> None:
        """Relay a recovery-window hook to every tee'd observer."""
        for obs in self.observers:
            obs.on_recovery(action, start, end, **tags)


class RunObserver(Observer):
    """Spans + metrics + profiling for one simulated run.

    Attach it to a simulator (``Simulator(observer=RunObserver())`` or
    via :meth:`~repro.sim.engine.Simulator.attach_observer`), run, then
    pull any of the three products::

        obs = RunObserver()
        result = run_scenario(..., observer=obs)
        doc = obs.chrome_trace()          # load in ui.perfetto.dev
        text = obs.prometheus()           # metrics dump
        print(obs.summary().format())     # or result.obs.format()

    Args:
        dispatch_spans: also record one instant span per scheduler
            dispatch on the ``engine`` track (cheap runs only — this is
            O(dispatches) spans).
        time_fn: host clock injected into the profiler (tests pass a
            fake; default :func:`time.perf_counter`).
    """

    def __init__(self, *, dispatch_spans: bool = False,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.spans = SpanBuilder()
        self.metrics = MetricsRegistry()
        self.profiler = HotPathProfiler(time_fn=time_fn)
        self.dispatch_spans = dispatch_spans
        self.events_seen = 0
        self.makespan = 0.0
        self._run_sid: Optional[int] = None
        self._finished = False
        self._dispatch_t0: Optional[float] = None
        self._dispatch_process = ""
        # sampled series for the Chrome "C" counter track
        self._waiting_now = 0
        self._wait_series: List[Tuple[float, float]] = []
        self._declare_metrics()

    def _declare_metrics(self) -> None:
        """Create the standard metric set up front (stable dump layout)."""
        m = self.metrics
        m.counter("events_logged_total", "engine events appended to the log")
        m.counter("events_dispatched_total",
                  "scheduler dispatches (process steps + kernel calls)")
        m.counter("strokes_total", "cells colored")
        m.counter("handoffs_total", "implement handoffs between agents")
        m.counter("faults_injected_total", "fault-plan entries that fired")
        m.counter("ops_reassigned_total",
                  "strokes moved to a survivor after a dropout")
        m.counter("ops_abandoned_total", "strokes never executed")
        m.counter("stalls_total", "transient stalls ridden out")
        m.histogram("resource_wait_seconds",
                    "time queued for an implement, per resource")
        m.histogram("stroke_seconds", "per-cell coloring time")
        m.gauge("run_makespan_seconds", "simulated makespan of the run")
        m.gauge("run_processes", "processes registered with the engine")

    # -- engine hooks ------------------------------------------------------
    def on_run_start(self, sim: "Simulator") -> None:
        """Open the run envelope (idempotent across resumed runs)."""
        self.profiler.start_run()
        if self._run_sid is None:
            self._run_sid = self.spans.begin(
                "run", "run", "engine", sim.now)
        self._finished = False

    def on_run_end(self, sim: "Simulator", makespan: float) -> None:
        """Close the run envelope and finalize gauges."""
        self.profiler.end_run()
        self.makespan = max(self.makespan, makespan)
        self.metrics.gauge("run_makespan_seconds").set(self.makespan)
        self.metrics.gauge("run_processes").set(len(sim._procs))
        self._finalize()

    def _finalize(self) -> None:
        """Close every open span at the observed makespan."""
        if self._run_sid is not None:
            run_span = self.spans.spans[self._run_sid]
            if run_span.end is None or run_span.end < self.makespan:
                run_span.end = self.makespan
        self.spans.finish(self.makespan)
        self._finished = True

    def on_event(self, event: Event) -> None:
        """Feed the span builder and fold the event into the metrics."""
        self.events_seen += 1
        self.makespan = max(self.makespan, event.time)
        m = self.metrics
        m.counter("events_logged_total").inc()
        kind, data = event.kind, event.data
        if kind == EventKind.HANDOFF:
            m.counter("handoffs_total").inc()
        elif kind == EventKind.FAULT_INJECTED:
            m.counter("faults_injected_total").inc(
                fault=str(data.get("fault", "unknown")))
        elif kind == EventKind.OP_REASSIGNED:
            m.counter("ops_reassigned_total").inc(
                float(data.get("n_ops", 1)))
        elif kind == EventKind.OP_ABANDONED:
            m.counter("ops_abandoned_total").inc(
                float(data.get("n_ops", 1)),
                reason=str(data.get("reason", "unknown")))
        elif kind == EventKind.STALL:
            m.counter("stalls_total").inc()
        elif kind == EventKind.RESOURCE_REQUEST:
            self._waiting_now += 1
            self._wait_series.append((event.time, float(self._waiting_now)))
        elif kind == EventKind.RESOURCE_ACQUIRE:
            self._waiting_now = max(0, self._waiting_now - 1)
            self._wait_series.append((event.time, float(self._waiting_now)))
        for span in self.spans.feed(event):
            if span.category == "wait":
                m.histogram("resource_wait_seconds").observe(
                    span.duration,
                    resource=str(span.tags.get("resource")))
            elif span.category == "stroke":
                m.histogram("stroke_seconds").observe(span.duration)
                m.counter("strokes_total").inc(
                    agent=span.track)

    def on_dispatch_start(self, process: str, time: float) -> None:
        """Start the host-time stopwatch for one dispatch."""
        self._dispatch_process = process
        self._dispatch_t0 = self.profiler.time_fn()

    def on_dispatch_end(self, process: str, time: float) -> None:
        """Stop the stopwatch, credit the section, bump the counter."""
        section = "kernel_call" if process == "<kernel>" else "dispatch"
        if self._dispatch_t0 is not None:
            self.profiler.add(section,
                              self.profiler.time_fn() - self._dispatch_t0)
            self._dispatch_t0 = None
        self.metrics.counter("events_dispatched_total").inc(kind=section)
        if self.dispatch_spans:
            self.spans.instant(f"dispatch:{process}", "dispatch", "engine",
                               time, process=process)

    def on_recovery(self, action: str, start: float, end: float,
                    **tags: Any) -> None:
        """Record a recovery window as a span on the ``recovery`` track."""
        sid = self.spans.begin(action, "recovery", "recovery", start, **tags)
        self.spans.end(sid, end)

    # -- products ----------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The run as a Chrome ``trace_event`` JSON document."""
        if not self._finished:
            self._finalize()
        return to_chrome_trace(
            self.spans.spans,
            counters={"agents_waiting": self._wait_series})

    def chrome_trace_json(self, indent: Optional[int] = None) -> str:
        """The Chrome trace serialized to JSON text."""
        return dump_chrome_trace(self.chrome_trace(), indent=indent)

    def prometheus(self) -> str:
        """The metrics registry as Prometheus text exposition."""
        return self.metrics.render_prometheus()

    def summary(self) -> ObsSummary:
        """Condense everything into an :class:`ObsSummary`."""
        if not self._finished:
            self._finalize()
        snapshot = self.metrics.snapshot()
        counters = {k: v for k, v in snapshot.items()
                    if not (k.endswith("_sum") or k.endswith("_count"))}
        histograms = {k: v for k, v in snapshot.items()
                      if k.endswith("_sum") or k.endswith("_count")}
        return ObsSummary(
            makespan=self.makespan,
            n_events=self.events_seen,
            n_spans=len(self.spans.spans),
            counters=counters,
            histograms=histograms,
            profile=self.profiler.report(simulated_seconds=self.makespan),
        )
