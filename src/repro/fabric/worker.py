"""The fabric worker loop: lease in, heartbeats out, result back.

One worker process runs :func:`worker_main` over its end of a duplex
``multiprocessing.Pipe``.  The wire vocabulary is deliberately tiny —
five tuple shapes, listed below — and each worker owns its pipe
exclusively (single producer, no shared queue locks), so a SIGKILLed
worker can never wedge its siblings: the coordinator just sees EOF on
that one connection.

Coordinator -> worker::

    ("lease", lease_id, cell_index, [task, ...])   # one whole cell
    ("shutdown",)

Worker -> coordinator::

    ("hello", worker)                              # ready for leases
    ("beat", worker, lease_id, trial)              # one trial finished
    ("result", worker, lease_id, cell_index, [payload, ...])
    ("error", worker, lease_id, cell_index, message)

Every trial is executed by :func:`repro.sweep.executor.run_trial` — a
pure function of its task dict — so *which* worker computes a cell can
never change its bytes; the coordinator is free to retry, hedge, and
steal leases at will.

Chaos hooks (:mod:`repro.fabric.chaos`) key off the worker's local
lease ordinal: crash on receipt, stall before compute, start slow,
or compute-then-drop the response.  They live here, in the worker
loop itself, so the coordinator is tested against the real failure
surface rather than a mock.
"""

from __future__ import annotations

import os
import time
from typing import List, Sequence

from .chaos import (
    ChaosEvent,
    DroppedResponse,
    SlowStart,
    WorkerCrash,
    WorkerStall,
)

#: Message-type tags, shared by local workers, remote client threads,
#: and the coordinator.
MSG_LEASE = "lease"
MSG_SHUTDOWN = "shutdown"
MSG_HELLO = "hello"
MSG_BEAT = "beat"
MSG_RESULT = "result"
MSG_ERROR = "error"


def startup_delay(chaos: Sequence[ChaosEvent]) -> float:
    """Seconds a worker's chaos script delays its hello."""
    return sum(e.delay_s for e in chaos if isinstance(e, SlowStart))


def crashes_on(chaos: Sequence[ChaosEvent], ordinal: int) -> bool:
    """Whether the script kills the worker on this lease ordinal."""
    return any(isinstance(e, WorkerCrash) and e.on_lease == ordinal
               for e in chaos)


def stall_before(chaos: Sequence[ChaosEvent], ordinal: int) -> float:
    """Seconds the script stalls the worker before this lease's work."""
    return sum(e.stall_s for e in chaos
               if isinstance(e, WorkerStall) and e.on_lease == ordinal)


def drops_response(chaos: Sequence[ChaosEvent], ordinal: int) -> bool:
    """Whether the script swallows this lease's final result."""
    return any(isinstance(e, DroppedResponse) and e.on_lease == ordinal
               for e in chaos)


def worker_main(conn, worker: str,
                chaos: Sequence[ChaosEvent] = ()) -> None:
    """Run one local worker until shutdown (or scripted death).

    Args:
        conn: the worker's end of a duplex ``multiprocessing.Pipe``.
        worker: this worker's name (chaos events address it by name).
        chaos: this worker's slice of the chaos plan, already filtered
            via :meth:`~repro.fabric.chaos.ChaosPlan.for_worker`.
    """
    from ..sweep.executor import run_cell_tasks, run_trial

    delay = startup_delay(chaos)
    if delay:
        time.sleep(delay)
    conn.send((MSG_HELLO, worker))

    ordinal = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # coordinator went away; nothing left to do
        if message[0] == MSG_SHUTDOWN:
            break
        _, lease_id, cell_index, tasks = message
        ordinal += 1

        if crashes_on(chaos, ordinal):
            # Die the hard way: no cleanup, no flush, no goodbye —
            # exactly what SIGKILL or a kernel OOM-kill looks like.
            os._exit(1)
        stall = stall_before(chaos, ordinal)
        if stall:
            time.sleep(stall)  # heartbeats stop for the duration

        payloads: List[dict] = []
        failed = False
        if tasks and all(t.get("backend", "reference") == "vector"
                         for t in tasks):
            # A vector lease is one whole-cell batch: all trials
            # advance together, so heartbeats arrive in a burst when
            # the batch lands rather than trial by trial.
            try:
                payloads = run_cell_tasks(tasks)
            except Exception as exc:
                conn.send((MSG_ERROR, worker, lease_id, cell_index,
                           f"{type(exc).__name__}: {exc}"))
                failed = True
            else:
                for task in tasks:
                    conn.send((MSG_BEAT, worker, lease_id, task["trial"]))
        else:
            for task in tasks:
                try:
                    payloads.append(run_trial(task))
                except Exception as exc:
                    conn.send((MSG_ERROR, worker, lease_id, cell_index,
                               f"{type(exc).__name__}: {exc}"))
                    failed = True
                    break
                conn.send((MSG_BEAT, worker, lease_id, task["trial"]))
        if failed:
            continue
        if drops_response(chaos, ordinal):
            continue  # the work happened; the reply evaporates
        conn.send((MSG_RESULT, worker, lease_id, cell_index, payloads))
    conn.close()
