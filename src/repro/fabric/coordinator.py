"""The fabric coordinator: leases, health, retries, hedges, stealing.

:func:`run_fabric_sweep` is the fault-tolerant sibling of
:func:`repro.sweep.executor.run_sweep`: the same declarative
:class:`~repro.sweep.spec.SweepSpec` in, the same
:class:`~repro.sweep.results.SweepResult` out — **byte-identical** to a
clean serial run, no matter which workers computed which cells, in what
order, how many times, or how many of them died along the way.  That
identity is not a property the coordinator has to work for; it falls
out of the execution model (:func:`~repro.sweep.executor.run_trial` is
a pure function of its task dict) as long as every cell eventually gets
computed and results are assembled in grid order.  Everything in this
module exists to make "eventually" robust:

- **Leases.**  The unit of work is one cell (all its trials).  A lease
  names a worker, a cell, and an attempt; workers report per-trial
  heartbeats so the coordinator can tell *slow* from *dead*.
- **Health.**  Each local worker owns a private duplex pipe — a
  SIGKILLed process is just EOF on one connection, never a poisoned
  shared queue.  Death requeues the worker's unstarted cells and
  re-leases its in-flight cell exactly once per failure.
- **Retries.**  Failed leases (death, error, heartbeat silence) go to
  a backoff heap: full-jittered exponential delay, bounded attempts.
- **Hedges.**  When a lease looks like a straggler and a worker sits
  idle, the cell is speculatively re-leased; the first result wins and
  late copies are counted and dropped — safe precisely because trials
  are deterministic, so duplicates carry identical bytes.
- **Stealing.**  Idle workers raid the largest backlog via the same
  :func:`~repro.schedule.worksteal.steal_back_half` primitive the
  in-simulation runner uses.
- **Self-chaos.**  A :class:`~repro.fabric.chaos.ChaosPlan` scripts
  crashes, stalls, slow starts, and dropped responses into the workers
  themselves, so the recovery machinery is exercised against real
  process death rather than mocks.

Every recovery decision is observable through
:class:`~repro.obs.metrics.MetricsRegistry` series (``fabric_*``) and
the returned :class:`FabricStats`.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

import numpy as np
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, Union

from ..obs.metrics import MetricsRegistry
from ..schedule.worksteal import steal_back_half
from ..sim.backend import resolve_backend
from ..sweep.cache import ResultCache
from ..sweep.executor import _make_tasks, cell_address, validate_cells
from ..sweep.results import CellResult, SweepResult, TrialRecord
from ..sweep.spec import SweepSpec
from .chaos import ChaosPlan
from .remote import remote_worker_main
from .worker import (
    MSG_BEAT,
    MSG_ERROR,
    MSG_HELLO,
    MSG_LEASE,
    MSG_RESULT,
    MSG_SHUTDOWN,
    worker_main,
)


class FabricError(Exception):
    """Raised when the fabric cannot finish a sweep (config errors,
    every worker dead, or a cell exhausting its lease attempts)."""


@dataclass(frozen=True)
class FabricConfig:
    """How the coordinator runs, retries, hedges, and gives up.

    Attributes:
        workers: local worker processes to spawn (``w0``, ``w1``, ...).
        remotes: ``(host, port)`` pairs of ``repro serve`` endpoints to
            drive as remote workers (``r0``, ``r1``, ...).
        max_attempts: lease attempts per cell (primary + retries +
            hedges) before the sweep fails.
        retry_base_s / retry_cap_s: full-jitter exponential backoff for
            re-leasing failed cells (ceiling ``base * 2**k``, capped).
        hedge_after_s: lease age after which an idle worker may be
            given a speculative duplicate lease; ``None`` disables
            hedging.
        heartbeat_timeout_s: heartbeat silence after which an in-flight
            lease on a *live* worker is declared lost and retried
            elsewhere (dead workers are detected immediately via EOF).
        jitter_seed: seed for the backoff jitter stream (house rule
            DET003: no unseeded RNGs).
        tick_s: coordinator poll interval for timer work.
        shutdown_grace_s: how long to wait for workers to exit cleanly
            before terminating them.
    """

    workers: int = 2
    remotes: Tuple[Tuple[str, int], ...] = ()
    max_attempts: int = 5
    retry_base_s: float = 0.05
    retry_cap_s: float = 1.0
    hedge_after_s: Optional[float] = 5.0
    heartbeat_timeout_s: float = 30.0
    jitter_seed: int = 0
    tick_s: float = 0.02
    shutdown_grace_s: float = 2.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise FabricError(f"workers must be >= 0, got {self.workers}")
        if self.workers + len(self.remotes) < 1:
            raise FabricError("need at least one worker (local or remote)")
        if self.max_attempts < 1:
            raise FabricError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_base_s <= 0 or self.retry_cap_s <= 0:
            raise FabricError(
                f"retry_base_s/retry_cap_s must be > 0, got "
                f"{self.retry_base_s}/{self.retry_cap_s}")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise FabricError(
                f"hedge_after_s must be > 0 or None, "
                f"got {self.hedge_after_s}")
        if self.heartbeat_timeout_s <= 0:
            raise FabricError(
                f"heartbeat_timeout_s must be > 0, "
                f"got {self.heartbeat_timeout_s}")
        if self.tick_s <= 0:
            raise FabricError(f"tick_s must be > 0, got {self.tick_s}")

    @property
    def worker_names(self) -> List[str]:
        """All worker names, locals first, in deterministic order."""
        return ([f"w{i}" for i in range(self.workers)]
                + [f"r{i}" for i in range(len(self.remotes))])


@dataclass
class FabricStats:
    """What the recovery machinery actually did during one sweep.

    ``attempts`` maps each computed cell's canonical key to the number
    of leases it took (1 = first try succeeded); the SIGKILL acceptance
    test pins "re-leased exactly once" on it.
    """

    leases: int = 0
    retries: int = 0
    hedges: int = 0
    steals: int = 0
    stolen_cells: int = 0
    duplicates: int = 0
    worker_deaths: int = 0
    cached_cells: int = 0
    computed_cells: int = 0
    attempts: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Lease:
    lease_id: int
    worker: str
    cell_index: int
    kind: str  # "primary" | "retry" | "hedge"
    issued: float
    last_beat: float


@dataclass
class _Worker:
    name: str
    conn: Any  # coordinator end of the duplex pipe
    process: Optional[multiprocessing.process.BaseProcess] = None
    thread: Optional[threading.Thread] = None
    ready: bool = False  # has said hello
    alive: bool = True
    lease_id: Optional[int] = None  # outstanding lease, if any
    suspect: bool = False  # went heartbeat-silent; deprioritized


class FabricCoordinator:
    """One sweep's worth of distributed coordination.

    Construct, then call :meth:`run` once.  ``stats``, worker PIDs, and
    the metrics registry stay readable from other threads while the run
    is in progress (the chaos acceptance tests SIGKILL workers mid-run
    based on exactly that visibility).
    """

    def __init__(self, spec: SweepSpec,
                 config: Optional[FabricConfig] = None, *,
                 cache: Optional[ResultCache] = None,
                 cache_dir: Optional[Union[str, "os.PathLike"]] = None,
                 store: Optional[Any] = None,
                 store_tenant: str = "public",
                 observe: bool = False,
                 chaos: Optional[ChaosPlan] = None,
                 registry: Optional[MetricsRegistry] = None,
                 backend: str = "reference") -> None:
        self.spec = spec
        self.config = config or FabricConfig()
        self.chaos = chaos or ChaosPlan()
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        if store is not None:
            # Leased-cell results persist through the durable store as
            # well as the on-disk cache (read-through both ways), so a
            # fabric sweep survives process restarts like a local one.
            from ..store import StoreTier
            cache = StoreTier(store, cache=cache, tenant=store_tenant)
        self.cache = cache
        self.observe = observe
        self.registry = registry or MetricsRegistry()
        self.stats = FabricStats()

        self._rng = np.random.default_rng(self.config.jitter_seed)
        self._cells = spec.cells()
        # Per-cell engine, resolved once up front (auto falls back to
        # reference for fault plans / observers); a vector lease ships
        # the whole cell as one batch (see repro.fabric.worker).
        self._cell_backends = [
            resolve_backend(backend, cell.key_dict(), observe=observe)
            for cell in self._cells
        ]
        self._workers: Dict[str, _Worker] = {}
        self._queues: Dict[str, Deque[int]] = {}
        self._leases: Dict[int, _Lease] = {}
        self._retry_heap: List[Tuple[float, int, int]] = []
        self._retry_seq = 0
        self._next_lease_id = 0
        self._done: Set[int] = set()
        self._payloads: Dict[int, List[Dict[str, Any]]] = {}
        self._remaining: Set[int] = set()
        self._ran = False

        m = self.registry
        self._m_leases = m.counter(
            "fabric_leases_total",
            "Cell leases issued, by kind (primary/retry/hedge)")
        self._m_retries = m.counter(
            "fabric_retries_total",
            "Leases re-issued after a worker death, error, or silence")
        self._m_hedges = m.counter(
            "fabric_hedges_total",
            "Speculative duplicate leases issued against stragglers")
        self._m_steals = m.counter(
            "fabric_steals_total",
            "Work-stealing rebalances (idle worker raided a backlog)")
        self._m_duplicates = m.counter(
            "fabric_duplicate_results_total",
            "Results for already-completed cells (hedges/stale leases)")
        self._m_deaths = m.counter(
            "fabric_worker_deaths_total",
            "Workers that disappeared mid-sweep")
        self._m_cells = m.counter(
            "fabric_cells_total",
            "Cells resolved, by source (cache/computed)")
        self._m_state = m.gauge(
            "fabric_worker_state",
            "Per-worker state: 0 dead, 1 idle, 2 busy")

    # -- time ------------------------------------------------------------

    def _now(self) -> float:
        """The coordinator's clock (the fabric's only wall-clock read).

        Real time is genuinely needed here — worker processes fail in
        host time, not simulated time — but it only ever steers
        *scheduling* (backoff, hedging, liveness).  Result bytes are
        pinned to seeds by construction, and the parity tests would
        catch any leak of wall time into payloads.
        """
        return time.monotonic()

    # -- public observation hooks (safe to read from other threads) ------

    def pid(self, worker: str) -> Optional[int]:
        """The OS pid of a local worker, once spawned (else ``None``)."""
        record = self._workers.get(worker)
        if record is None or record.process is None:
            return None
        return record.process.pid

    def busy_workers(self) -> List[str]:
        """Names of workers holding an outstanding lease right now."""
        return sorted(name for name, w in self._workers.items()
                      if w.alive and w.lease_id is not None)

    def current_cell(self, worker: str) -> Optional[str]:
        """The canonical key of the cell a worker is computing, if any."""
        record = self._workers.get(worker)
        if record is None or record.lease_id is None:
            return None
        lease = self._leases.get(record.lease_id)
        if lease is None:
            return None
        return self._cells[lease.cell_index].key()

    # -- the run ----------------------------------------------------------

    def run(self) -> SweepResult:
        """Execute the sweep; one call per coordinator.

        Returns:
            A :class:`~repro.sweep.results.SweepResult` byte-identical
            to ``run_sweep(spec)`` over the same spec.

        Raises:
            FabricError: when every worker died with work remaining, or
                a cell exhausted ``max_attempts`` leases.
            SweepError: for statically-invalid specs (same gate as
                ``run_sweep``).
        """
        if self._ran:
            raise FabricError("a FabricCoordinator runs exactly once; "
                              "build a new one per sweep")
        self._ran = True
        validate_cells(self._cells)
        started = self._now()

        cell_results: List[Optional[CellResult]] = [None] * len(self._cells)
        cached_trials = 0
        pending: List[int] = []
        for i, cell in enumerate(self._cells):
            payload = None
            if self.cache is not None:
                payload = self.cache.get(
                    cell_address(cell, self.spec, observe=self.observe,
                                 backend=self._cell_backends[i]))
            if payload is not None:
                trials = [TrialRecord.from_payload(t)
                          for t in payload["trials"]]
                cell_results[i] = CellResult(cell=cell, trials=trials,
                                             cached=True)
                cached_trials += self.spec.n_trials
                self.stats.cached_cells += 1
                self._m_cells.inc(source="cache")
            else:
                pending.append(i)

        if pending:
            self._remaining = set(pending)
            try:
                self._spawn_workers()
                self._distribute(pending)
                self._loop()
            finally:
                self._shutdown()

        for i, cell in enumerate(self._cells):
            if cell_results[i] is not None:
                continue
            payloads = self._payloads[i]
            if self.cache is not None:
                self.cache.put(
                    cell_address(cell, self.spec, observe=self.observe,
                                 backend=self._cell_backends[i]),
                    {"cell": cell.key_dict(), "trials": payloads})
            cell_results[i] = CellResult(
                cell=cell,
                trials=[TrialRecord.from_payload(p) for p in payloads],
                cached=False)

        return SweepResult(
            spec=self.spec,
            cells=[c for c in cell_results if c is not None],
            computed_trials=len(pending) * self.spec.n_trials,
            cached_trials=cached_trials,
            wall_seconds=self._now() - started,
            workers=len(self.config.worker_names),
        )

    # -- setup -----------------------------------------------------------

    def _spawn_workers(self) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        for i in range(self.config.workers):
            name = f"w{i}"
            ours, theirs = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_main,
                args=(theirs, name, self.chaos.for_worker(name)),
                daemon=True)
            process.start()
            theirs.close()  # child holds it; EOF detection needs this
            self._workers[name] = _Worker(name=name, conn=ours,
                                          process=process)
            self._queues[name] = deque()
            self._m_state.set(1, worker=name)
        for i, (host, port) in enumerate(self.config.remotes):
            name = f"r{i}"
            ours, theirs = multiprocessing.Pipe(duplex=True)
            thread = threading.Thread(
                target=remote_worker_main,
                args=(theirs, name, host, port,
                      self.chaos.for_worker(name)),
                daemon=True)
            thread.start()
            self._workers[name] = _Worker(name=name, conn=ours,
                                          thread=thread)
            self._queues[name] = deque()
            self._m_state.set(1, worker=name)

    def _distribute(self, pending: List[int]) -> None:
        """Round-robin the uncached cells across all worker queues."""
        names = self.config.worker_names
        for slot, cell_index in enumerate(pending):
            self._queues[names[slot % len(names)]].append(cell_index)

    # -- the event loop ---------------------------------------------------

    def _loop(self) -> None:
        while self._remaining:
            conns = {w.conn: w for w in self._workers.values() if w.alive}
            if not conns:
                raise FabricError(
                    f"all workers died with {len(self._remaining)} "
                    f"cell(s) unfinished")
            for conn in mp_connection.wait(list(conns),
                                           timeout=self.config.tick_s):
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_death(worker)
                    continue
                self._on_message(worker, message)
                if not self._remaining:
                    return
            self._reap_silent_processes()
            self._promote_due_retries()
            self._dispatch_idle_workers()
            self._hedge_stragglers()
            self._expire_silent_leases()

    def _on_message(self, worker: _Worker, message: Tuple) -> None:
        worker.suspect = False  # it spoke; it is not wedged
        tag = message[0]
        if tag == MSG_HELLO:
            worker.ready = True
        elif tag == MSG_BEAT:
            lease = self._leases.get(message[2])
            if lease is not None:
                lease.last_beat = self._now()
        elif tag == MSG_RESULT:
            _, name, lease_id, cell_index, payloads = message
            self._release_worker(worker, lease_id)
            self._leases.pop(lease_id, None)
            if cell_index in self._done:
                self.stats.duplicates += 1
                self._m_duplicates.inc()
                return
            self._done.add(cell_index)
            self._payloads[cell_index] = payloads
            self._remaining.discard(cell_index)
            self.stats.computed_cells += 1
            self._m_cells.inc(source="computed")
        elif tag == MSG_ERROR:
            _, name, lease_id, cell_index, detail = message
            self._release_worker(worker, lease_id)
            stale = self._leases.pop(lease_id, None) is None
            if cell_index in self._done or stale:
                return
            self._schedule_retry(cell_index, reason=detail)

    def _release_worker(self, worker: _Worker, lease_id: int) -> None:
        if worker.lease_id == lease_id:
            worker.lease_id = None
            self._m_state.set(1, worker=worker.name)

    # -- failure handling -------------------------------------------------

    def _on_death(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        worker.conn.close()
        self.stats.worker_deaths += 1
        self._m_deaths.inc()
        self._m_state.set(0, worker=worker.name)

        # Unstarted cells go back to the healthiest queues untouched
        # (they were never leased, so attempts are unchanged) ...
        orphaned = self._queues.pop(worker.name, deque())
        while orphaned:
            cell_index = orphaned.popleft()
            target = self._shortest_queue()
            if target is None:
                raise FabricError(
                    f"all workers died with {len(self._remaining)} "
                    f"cell(s) unfinished")
            self._queues[target].append(cell_index)

        # ... while the in-flight cell, if any, is re-leased exactly
        # once per death, through the backoff heap.
        if worker.lease_id is not None:
            lease = self._leases.pop(worker.lease_id, None)
            worker.lease_id = None
            if lease is not None and lease.cell_index not in self._done:
                self._schedule_retry(lease.cell_index,
                                     reason=f"worker {worker.name} died")

    def _reap_silent_processes(self) -> None:
        """Catch local deaths the pipe has not surfaced as EOF yet."""
        for worker in list(self._workers.values()):
            if (worker.alive and worker.process is not None
                    and not worker.process.is_alive()):
                # Drain any results it managed to send before dying.
                try:
                    while worker.conn.poll():
                        self._on_message(worker, worker.conn.recv())
                except (EOFError, OSError):
                    pass
                self._on_death(worker)

    def _expire_silent_leases(self) -> None:
        """Declare heartbeat-silent leases on *live* workers lost.

        A wedged-but-alive worker (scripted stall, real livelock, a
        dropped response) stops heartbeating without dying.  After
        ``heartbeat_timeout_s`` of silence the lease is abandoned and
        the cell re-queued.  The worker itself is marked *suspect* and
        freed for new leases rather than written off: a merely-slow
        worker drains its pipe and recovers (clearing the mark with its
        next message), while a truly wedged one keeps expiring until
        its cells hit ``max_attempts``.  A late result for an abandoned
        lease is recognized by its stale lease id and either accepted
        (first result still wins) or counted as a duplicate.
        """
        now = self._now()
        for lease in list(self._leases.values()):
            if now - lease.last_beat <= self.config.heartbeat_timeout_s:
                continue
            worker = self._workers.get(lease.worker)
            if worker is None or not worker.alive:
                continue
            self._leases.pop(lease.lease_id, None)
            if worker.lease_id == lease.lease_id:
                worker.lease_id = None
                worker.suspect = True
                self._m_state.set(1, worker=worker.name)
            if lease.cell_index not in self._done:
                self._schedule_retry(
                    lease.cell_index,
                    reason=f"no heartbeat from {lease.worker} in "
                           f"{self.config.heartbeat_timeout_s:g}s")

    def _schedule_retry(self, cell_index: int, *, reason: str) -> None:
        cell = self._cells[cell_index]
        attempts = self.stats.attempts.get(cell.key(), 0)
        if attempts >= self.config.max_attempts:
            raise FabricError(
                f"cell {cell.describe()!r} failed after {attempts} "
                f"lease(s); last failure: {reason}")
        ceiling = min(self.config.retry_cap_s,
                      self.config.retry_base_s * (2 ** max(0, attempts - 1)))
        delay = self._rng.uniform(0.0, ceiling)
        self._retry_seq += 1
        heapq.heappush(self._retry_heap,
                       (self._now() + delay, self._retry_seq, cell_index))
        self.stats.retries += 1
        self._m_retries.inc()

    # -- dispatch ---------------------------------------------------------

    def _shortest_queue(self) -> Optional[str]:
        """The live worker whose queue is shortest (ties by name)."""
        candidates = [(len(q), name) for name, q in self._queues.items()
                      if self._workers[name].alive]
        if not candidates:
            return None
        return min(candidates)[1]

    def _promote_due_retries(self) -> None:
        now = self._now()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, cell_index = heapq.heappop(self._retry_heap)
            if cell_index in self._done:
                continue
            target = self._shortest_queue()
            if target is None:
                raise FabricError(
                    f"all workers died with {len(self._remaining)} "
                    f"cell(s) unfinished")
            self._queues[target].appendleft(cell_index)  # retries first

    def _idle_workers(self) -> List[_Worker]:
        """Leasable workers, healthy ones first (suspects last)."""
        return [w for w in sorted(self._workers.values(),
                                  key=lambda w: (w.suspect, w.name))
                if w.alive and w.ready and w.lease_id is None]

    def _dispatch_idle_workers(self) -> None:
        for worker in self._idle_workers():
            queue = self._queues[worker.name]
            if not queue:
                live = {name: q for name, q in self._queues.items()
                        if self._workers[name].alive}
                moved = steal_back_half(live, worker.name)
                if moved is not None:
                    _, stolen = moved
                    self.stats.steals += 1
                    self.stats.stolen_cells += len(stolen)
                    self._m_steals.inc()
            while queue and queue[0] in self._done:
                queue.popleft()  # hedged cell resolved while queued
            if queue:
                kind = ("retry" if self.stats.attempts.get(
                    self._cells[queue[0]].key(), 0) else "primary")
                self._issue(worker, queue.popleft(), kind=kind)

    def _hedge_stragglers(self) -> None:
        if self.config.hedge_after_s is None:
            return
        now = self._now()
        idle = [w for w in self._idle_workers()
                if not self._queues[w.name]]
        if not idle:
            return
        in_flight: Dict[int, int] = {}
        for lease in self._leases.values():
            in_flight[lease.cell_index] = \
                in_flight.get(lease.cell_index, 0) + 1
        for lease in sorted(self._leases.values(),
                            key=lambda l: l.issued):
            if not idle:
                return
            if (now - lease.issued <= self.config.hedge_after_s
                    or lease.cell_index in self._done
                    or in_flight[lease.cell_index] > 1):
                continue
            cell = self._cells[lease.cell_index]
            if (self.stats.attempts.get(cell.key(), 0)
                    >= self.config.max_attempts):
                continue
            worker = idle.pop(0)
            self.stats.hedges += 1
            self._m_hedges.inc()
            self._issue(worker, lease.cell_index, kind="hedge")
            in_flight[lease.cell_index] += 1

    def _issue(self, worker: _Worker, cell_index: int, *,
               kind: str) -> None:
        cell = self._cells[cell_index]
        self._next_lease_id += 1
        lease_id = self._next_lease_id
        now = self._now()
        tasks = _make_tasks(cell, self.spec, self.observe,
                            backend=self._cell_backends[cell_index])
        try:
            worker.conn.send((MSG_LEASE, lease_id, cell_index, tasks))
        except (BrokenPipeError, OSError):
            self._on_death(worker)
            self._schedule_retry(cell_index,
                                 reason=f"worker {worker.name} died "
                                        f"taking the lease")
            return
        self._leases[lease_id] = _Lease(
            lease_id=lease_id, worker=worker.name, cell_index=cell_index,
            kind=kind, issued=now, last_beat=now)
        worker.lease_id = lease_id
        self._m_state.set(2, worker=worker.name)
        self.stats.leases += 1
        self._m_leases.inc(kind=kind)
        key = cell.key()
        self.stats.attempts[key] = self.stats.attempts.get(key, 0) + 1

    # -- teardown ---------------------------------------------------------

    def _shutdown(self) -> None:
        for worker in self._workers.values():
            if worker.alive:
                try:
                    worker.conn.send((MSG_SHUTDOWN,))
                except (BrokenPipeError, OSError):
                    pass
        grace = self.config.shutdown_grace_s
        for worker in self._workers.values():
            if worker.process is not None:
                # Idle workers exit on the shutdown message.  One still
                # mid-lease is computing something nobody needs, and
                # one that never said hello may sleep a long scripted
                # slow-start — don't wait those out, just terminate.
                if worker.lease_id is None and worker.ready:
                    worker.process.join(timeout=grace)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=grace)
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.thread is not None:
                worker.thread.join(timeout=grace)
            if worker.alive:
                worker.alive = False
                self._m_state.set(0, worker=worker.name)


def run_fabric_sweep(
    spec: SweepSpec,
    config: Optional[FabricConfig] = None,
    *,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[Union[str, "os.PathLike"]] = None,
    store: Optional[Any] = None,
    store_tenant: str = "public",
    observe: bool = False,
    chaos: Optional[ChaosPlan] = None,
    registry: Optional[MetricsRegistry] = None,
    backend: str = "reference",
) -> SweepResult:
    """Run a sweep on the fault-tolerant fabric (convenience wrapper).

    Builds a :class:`FabricCoordinator` and runs it; use the class
    directly when you need mid-run visibility (stats, worker PIDs) or
    the registry afterwards.

    Args:
        spec: the declarative grid, exactly as for ``run_sweep``.
        config: worker fleet and retry/hedge tuning.
        cache / cache_dir: the same content-addressed result cache the
            serial executor uses; warm cells are never re-leased.
        store / store_tenant: a :class:`~repro.store.ResultStore` (and
            tenant path) to persist leased-cell results through, read-
            through with the cache exactly as in ``run_sweep``.
        observe: attach observers per trial (as in ``run_sweep``).
        chaos: a scripted failure plan for the workers themselves.
        registry: a metrics registry to record ``fabric_*`` series in.
        backend: trial engine (``reference`` / ``vector`` / ``auto``),
            resolved per cell exactly as in ``run_sweep``; vector cells
            are computed as whole-cell batches on the worker.

    Returns:
        A :class:`~repro.sweep.results.SweepResult` byte-identical to
        a clean serial ``run_sweep(spec)``.
    """
    return FabricCoordinator(spec, config, cache=cache,
                             cache_dir=cache_dir, store=store,
                             store_tenant=store_tenant, observe=observe,
                             chaos=chaos, registry=registry,
                             backend=backend).run()
