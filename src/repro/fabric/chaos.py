"""Deterministic self-chaos: scripted failures for fabric workers.

The fault-injection idea of :mod:`repro.faults` lifted one level up:
where a :class:`~repro.faults.plan.FaultPlan` breaks simulated students
*inside* a run, a :class:`ChaosPlan` breaks the *infrastructure* that
executes runs — a worker process dies, stalls, starts late, or computes
a result and never reports it.  The coordinator must absorb every one
of these and still produce byte-identical sweep results.

Determinism without a clock: chaos events trigger on a worker's local
**lease ordinal** (its 1st, 2nd, ... lease), never on wall time, so the
same plan against the same spec exercises the same failure no matter
how fast the host is.  ``SlowStart`` is the one duration-shaped event
(a delay before the worker reports for duty); it changes scheduling,
never results.

Events address workers by *name* (``w0``, ``w1``, ... for local
processes; ``r0``, ... for remote clients), mirroring how fault plans
address students by index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union


class ChaosError(Exception):
    """Raised for invalid chaos plans (bad ordinals, negative delays)."""


def _check_worker(worker: str) -> None:
    if not isinstance(worker, str) or not worker:
        raise ChaosError(f"worker name must be a non-empty string, "
                         f"got {worker!r}")


def _check_ordinal(on_lease: int) -> None:
    if isinstance(on_lease, bool) or not isinstance(on_lease, int) \
            or on_lease < 1:
        raise ChaosError(f"on_lease is a 1-based ordinal, got {on_lease!r}")


@dataclass(frozen=True)
class WorkerCrash:
    """The worker dies the instant it receives its ``on_lease``-th lease.

    Local processes ``os._exit`` (indistinguishable from SIGKILL: no
    cleanup, no goodbye); remote clients drop their coordinator link.
    The lease is lost mid-flight and must be re-issued elsewhere.
    """

    worker: str
    on_lease: int

    def __post_init__(self) -> None:
        _check_worker(self.worker)
        _check_ordinal(self.on_lease)


@dataclass(frozen=True)
class WorkerStall:
    """The worker sleeps ``stall_s`` before computing its Nth lease.

    Heartbeats stop for the whole stall — exactly what a wedged process
    looks like from the coordinator — then the worker wakes and finishes
    normally.  If the coordinator hedged or re-leased meanwhile, the
    late result arrives as a duplicate and is discarded.
    """

    worker: str
    on_lease: int
    stall_s: float

    def __post_init__(self) -> None:
        _check_worker(self.worker)
        _check_ordinal(self.on_lease)
        if self.stall_s < 0:
            raise ChaosError(f"stall_s must be >= 0, got {self.stall_s}")


@dataclass(frozen=True)
class SlowStart:
    """The worker waits ``delay_s`` before saying hello.

    Models a cold container or a late classroom arrival: the fabric
    must start leasing to whoever *is* present and fold the straggler
    in (via work stealing) when it finally appears.
    """

    worker: str
    delay_s: float

    def __post_init__(self) -> None:
        _check_worker(self.worker)
        if self.delay_s < 0:
            raise ChaosError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class DroppedResponse:
    """The worker computes its Nth lease fully, then says nothing.

    The nastiest failure: all heartbeats arrive (the work really
    happened), the final result silently vanishes — a lost network
    reply.  Only a hedge or a heartbeat-silence retry recovers the
    cell; the worker itself keeps waiting for its next lease as if
    nothing were wrong.
    """

    worker: str
    on_lease: int

    def __post_init__(self) -> None:
        _check_worker(self.worker)
        _check_ordinal(self.on_lease)


ChaosEvent = Union[WorkerCrash, WorkerStall, SlowStart, DroppedResponse]

_EVENT_TYPES = (WorkerCrash, WorkerStall, SlowStart, DroppedResponse)


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable, validated schedule of infrastructure failures."""

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise ChaosError(
                    f"not a chaos event: {event!r}")
        seen = set()
        for event in self.events:
            ordinal = getattr(event, "on_lease", None)
            key = (type(event), event.worker, ordinal)
            if key in seen:
                raise ChaosError(f"duplicate chaos event {event!r}")
            seen.add(key)

    @classmethod
    def of(cls, events: Iterable[ChaosEvent]) -> "ChaosPlan":
        """Build a plan from any iterable of events."""
        return cls(events=tuple(events))

    def for_worker(self, worker: str) -> List[ChaosEvent]:
        """The events that target one worker, in plan order."""
        return [e for e in self.events if e.worker == worker]

    def __len__(self) -> int:
        return len(self.events)
