"""Remote fabric workers: the same lease loop, executed over HTTP.

A remote worker is a daemon thread that speaks exactly the pipe
protocol of :mod:`repro.fabric.worker` — hello, leases in, heartbeats
and results out — but computes each trial by calling ``POST /task`` on
a ``repro serve`` endpoint through a
:class:`~repro.serve.client.ServeClient`.  The coordinator cannot tell
a remote worker from a local one (same messages, same connection
object in its ``wait()`` set), so retries, hedging, and work stealing
apply uniformly across a mixed local+remote fleet.

Transient server trouble (429 backpressure, 503/504, connection drops)
is absorbed by the client's :class:`~repro.serve.retry.RetryPolicy`
*inside* the worker; only exhausted retries or non-retryable errors
surface to the coordinator as lease errors for cross-worker retry.

Chaos applies here too: a scripted ``WorkerCrash`` closes the
connection (the thread's equivalent of dying), stalls and dropped
responses behave exactly as on local workers.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..serve.client import ServeClient, ServeError
from ..serve.retry import RetryPolicy
from .chaos import ChaosEvent
from .worker import (
    MSG_BEAT,
    MSG_ERROR,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHUTDOWN,
    crashes_on,
    drops_response,
    stall_before,
    startup_delay,
)

#: Default retry stance for remote execution: patient with transient
#: server states, bounded so a dead endpoint surfaces as a lease error
#: the coordinator can route around.
DEFAULT_REMOTE_RETRY = RetryPolicy(max_attempts=4, base_s=0.05,
                                   cap_s=1.0, deadline_s=60.0)


def remote_worker_main(conn, worker: str, host: str, port: int,
                       chaos: Sequence[ChaosEvent] = (),
                       retry: RetryPolicy = DEFAULT_REMOTE_RETRY,
                       timeout_s: float = 60.0) -> None:
    """Drive one serve endpoint as a fabric worker (thread target).

    Args:
        conn: this worker's end of a duplex ``multiprocessing.Pipe``.
        worker: the worker's name in the fabric.
        host / port: the ``repro serve`` endpoint to execute against.
        chaos: this worker's slice of the chaos plan.
        retry: client-side retry policy for transient server errors.
        timeout_s: per-request client timeout.
    """
    client = ServeClient(host, port, timeout_s=timeout_s, retry=retry)

    delay = startup_delay(chaos)
    if delay:
        time.sleep(delay)
    conn.send((MSG_HELLO, worker))

    ordinal = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == MSG_SHUTDOWN:
            break
        _, lease_id, cell_index, tasks = message
        ordinal += 1

        if crashes_on(chaos, ordinal):
            conn.close()  # a thread's way of dying: drop the link
            return
        stall = stall_before(chaos, ordinal)
        if stall:
            time.sleep(stall)

        payloads: List[dict] = []
        failed = False
        for task in tasks:
            try:
                reply = client.task(task["cell"], seed=task["seed"],
                                    n_trials=task["n_trials"],
                                    trial=task["trial"],
                                    observe=task["observe"],
                                    backend=task.get("backend"))
                payloads.append(reply["trial"])
            except (ServeError, OSError) as exc:
                conn.send((MSG_ERROR, worker, lease_id, cell_index,
                           f"{type(exc).__name__}: {exc}"))
                failed = True
                break
            conn.send((MSG_BEAT, worker, lease_id, task["trial"]))
        if failed:
            continue
        if drops_response(chaos, ordinal):
            continue
        conn.send((MSG_RESULT, worker, lease_id, cell_index, payloads))
    conn.close()
