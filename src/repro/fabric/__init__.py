"""A fault-tolerant distributed sweep fabric.

Where :mod:`repro.sweep` fans trials across a local process pool and
:mod:`repro.serve` exposes single trials over HTTP, this package makes
sweeps survive the machines that run them: a coordinator partitions a
:class:`~repro.sweep.spec.SweepSpec`'s cells across a fleet of workers
— local subprocesses, remote ``repro serve`` endpoints, or both — and
keeps the sweep correct through worker crashes, stalls, slow starts,
and silently dropped responses.

The headline invariant: **a fabric sweep under any chaos plan is
byte-identical to a clean serial** ``run_sweep``.  Trials are pure
functions of their task dicts, so the coordinator can retry, hedge,
and steal leases freely — recovery changes *scheduling*, never bytes.

- :mod:`~repro.fabric.coordinator` — leases with per-trial heartbeats,
  EOF-based death detection, full-jitter backoff retries, hedged
  requests for stragglers, work stealing via
  :func:`~repro.schedule.worksteal.steal_back_half`.
- :mod:`~repro.fabric.worker` — the local worker process loop; one
  private duplex pipe per worker, so a SIGKILL is one EOF, never a
  wedged shared queue.
- :mod:`~repro.fabric.remote` — the same lease loop speaking
  ``POST /task`` to a ``repro serve`` endpoint.
- :mod:`~repro.fabric.chaos` — deterministic self-chaos scripted on
  lease ordinals (crash, stall, slow start, dropped response).

Quickstart::

    from repro.fabric import FabricConfig, run_fabric_sweep
    from repro.sweep import SweepSpec

    spec = SweepSpec(flags=("mauritius",), scenarios=(3, 4),
                     n_trials=4, seed=0)
    result = run_fabric_sweep(spec, FabricConfig(workers=2),
                              cache_dir=".sweep-cache")
    assert result.all_correct
"""

from .chaos import (
    ChaosError,
    ChaosPlan,
    DroppedResponse,
    SlowStart,
    WorkerCrash,
    WorkerStall,
)
from .coordinator import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricStats,
    run_fabric_sweep,
)

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "DroppedResponse",
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricStats",
    "SlowStart",
    "WorkerCrash",
    "WorkerStall",
    "run_fabric_sweep",
]
