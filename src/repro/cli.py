"""Command-line interface: ``python -m repro <command>``.

Gives instructors the library's main flows without writing Python:

- ``flags`` — list the catalog.
- ``render FLAG`` — draw a flag (ascii/ansi/svg/ppm).
- ``scenario FLAG N`` — simulate one core scenario.
- ``activity`` — the full four-scenario activity with the whiteboard.
- ``session SITE`` — a whole classroom at one pilot institution.
- ``depgraph FLAG`` — the dependency graph (text or DOT).
- ``analyze FLAG`` — static scenario verification: deadlock cycles,
  work-span speedup ceilings, load and contention bounds, without
  running the engine (``repro.analyze``).
- ``racecheck PATH...`` — static lockset race detection over Python
  sources (``repro.races``): infer which ``self._x`` attributes each
  class guards with ``with self._lock:``, flag accesses that skip the
  lock, honor the justified allowlist in ``tools/races_allow.txt``.
- ``dryrun FLAG`` — Section IV's pre-class checklist.
- ``animate FLAG N`` — frame-by-frame scenario animation (Webster [34]).
- ``slides FLAG N`` — the numbered-cell SVG instruction slide (Fig 1).
- ``debrief SITE`` — the post-activity discussion guide.
- ``report SITE`` — a full markdown session report.
- ``grade`` — grade a simulated Jordan submission cohort (Sec V-C).
- ``tables`` — regenerate Tables I-III from synthetic populations.
- ``chaos FLAG`` — a scenario under a seeded fault plan with recovery.
- ``sweep`` — a declarative experiment grid fanned out over a process
  pool, with an optional content-addressed on-disk result cache.
- ``fabric`` — the same grid on the fault-tolerant sweep fabric
  (``repro.fabric``): leased cells across local subprocess workers
  and/or remote ``repro serve`` endpoints, heartbeat health tracking,
  retries, hedged stragglers, work stealing, and an optional scripted
  chaos plan — results stay byte-identical to a clean serial sweep.
- ``trace TARGET`` — run a scenario under the observer (or convert an
  exported event log) and write Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto, plus optional metrics dumps.
- ``serve`` — stand the library up as an async HTTP/JSON service
  (``repro.serve``): micro-batched ``/run`` trials, ``/sweep`` grids,
  backpressure, a read-through result cache, Prometheus ``/metrics``,
  graceful drain on SIGTERM/SIGINT — plus, with ``--store``, durable
  persistence, tenant-scoped Bearer-token auth, and the ``/tenants``
  and ``/results`` query endpoints.
- ``store`` — manage the durable multi-tenant result store
  (``repro.store``): ``init``, ``migrate``, ``tenants``, ``token``,
  ``results``, ``gc``.
- ``tutor`` — guided interactive lessons (``repro.stream.tutor``):
  stream a real seeded activity run live — locally or over a
  ``repro serve`` SSE endpoint — and narrate speedup, warmup,
  contention, or pipelining against the terminal Gantt as it unfolds.

Long-running commands (``sweep``, ``serve``) exit cleanly on Ctrl-C:
in-flight work is drained or cancelled, the exit status is 130, and no
traceback is spewed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_flags(args: argparse.Namespace) -> int:
    from .flags import available_flags, get_flag
    for name, desc in sorted(available_flags().items()):
        spec = get_flag(name)
        kind = "layered" if spec.is_layered() else "flat"
        print(f"{name:18s} {spec.default_rows:>2}x{spec.default_cols:<3} "
              f"{kind:7s} {desc}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .flags import get_flag
    from .grid.render import to_ansi, to_ascii, to_ppm, to_svg
    spec = get_flag(args.flag)
    img = spec.final_image(args.rows, args.cols)
    if args.format == "ascii":
        print(to_ascii(img))
    elif args.format == "ansi":
        print(to_ansi(img))
    elif args.format == "svg":
        sys.stdout.write(to_svg(img) + "\n")
    elif args.format == "ppm":
        sys.stdout.buffer.write(to_ppm(img))
    return 0


def _make_team(spec, seed: int, n: int, copies: int = 1):
    from .agents import make_team
    rng = np.random.default_rng(seed)
    return make_team("team", n, rng, colors=list(spec.colors_used()),
                     copies=copies)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .flags import get_flag
    from .schedule import get_scenario, run_scenario
    from .viz import render_agent_loads
    spec = get_flag(args.flag)
    scenario = get_scenario(args.number)
    team = _make_team(spec, args.seed, max(scenario.n_colorers, 4))
    rng = np.random.default_rng(args.seed)
    r = run_scenario(scenario, spec, team, rng)
    print(f"{scenario.name}: {scenario.description}")
    print(f"  measured time : {r.measured_time:.0f}s "
          f"(true {r.true_makespan:.1f}s)")
    print(f"  workers       : {r.n_workers}")
    print(f"  correct flag  : {'yes' if r.correct else 'NO'}")
    print(f"  waiting share : {r.trace.total_wait_fraction():.0%}")
    print()
    print(render_agent_loads(r.trace, width=30))
    return 0 if r.correct else 1


def _cmd_activity(args: argparse.Namespace) -> int:
    from .flags import get_flag
    from .metrics import speedup
    from .schedule import run_core_activity
    spec = get_flag(args.flag)
    team = _make_team(spec, args.seed, 4)
    rng = np.random.default_rng(args.seed)
    results = run_core_activity(spec, team, rng,
                                repeat_first=not args.no_repeat)
    base_key = ("scenario1_repeat" if "scenario1_repeat" in results
                else "scenario1")
    t_base = results[base_key].measured_time
    print(f"{'run':18s} {'time':>8s} {'speedup':>8s}  correct")
    for label, r in results.items():
        s = speedup(t_base, r.measured_time)
        print(f"{label:18s} {r.measured_time:7.0f}s {s:7.2f}x  "
              f"{'yes' if r.correct else 'NO'}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    from .classroom import debrief_session, get_institution, run_session
    profile = get_institution(args.site)
    report = run_session(profile, args.seed, n_teams=args.teams)
    print(f"{profile.full_name}: {len(report.teams)} teams")
    for label, times in report.board.items():
        joined = " ".join(f"{t:6.0f}" for t in times)
        print(f"  {label:18s} {joined}")
    print("\ndebrief:")
    for obs in debrief_session(report):
        mark = "x" if obs.detected else " "
        print(f"  [{mark}] {obs.lesson.value:22s} {obs.evidence}")
    return 0


def _cmd_depgraph(args: argparse.Namespace) -> int:
    from .depgraph import flag_dag
    from .depgraph.dot import to_dot
    from .depgraph.schedule_dag import graham_bound, list_schedule
    from .flags import get_flag
    spec = get_flag(args.flag)
    g = flag_dag(spec)
    if args.dot:
        print(to_dot(g, name=spec.name, show_weights=True,
                     highlight_critical_path=True))
        return 0
    print(f"dependency graph for {spec.name}:")
    for level_no, level in enumerate(g.levels()):
        print(f"  level {level_no}: {', '.join(level)}")
    cp, path = g.critical_path()
    print(f"  critical path: {' -> '.join(path)} ({cp:.0f} cells)")
    print(f"  speedup ceiling: {g.ideal_speedup_bound():.2f}x")
    if args.processors:
        sched = list_schedule(g, args.processors)
        print(f"  list schedule on P={args.processors}: "
              f"makespan {sched.makespan:.0f} "
              f"(Graham bound {graham_bound(g, args.processors):.0f})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analyze import analyze_scenario
    from .flags import get_flag
    from .schedule import AcquirePolicy
    spec = get_flag(args.flag)
    policy = AcquirePolicy[args.policy.upper()]
    scenarios = [args.scenario] if args.scenario else [1, 2, 3, 4]
    reports = [
        analyze_scenario(
            spec, n,
            team_size=args.team_size, copies=args.copies, policy=policy,
            rows=args.rows, cols=args.cols,
            hoard=args.hoard, rotate=args.rotate,
        )
        for n in scenarios
    ]
    if args.json:
        for report in reports:
            print(report.to_json().decode("utf-8"))
    else:
        print(f"static analysis: {spec.name} "
              f"(policy {policy.value}"
              f"{', hoarding' if args.hoard else ''}"
              f"{', rotated' if args.rotate else ''})")
        for report in reports:
            print(report.format())
    return 0 if all(r.ok for r in reports) else 1


def _cmd_racecheck(args: argparse.Namespace) -> int:
    import pathlib

    from .races import RaceError, load_allowlist, lockset_report
    allow = {}
    allow_path = (pathlib.Path(args.allowlist)
                  if args.allowlist is not None
                  else pathlib.Path("tools/races_allow.txt"))
    if allow_path.exists():
        try:
            allow = load_allowlist(allow_path)
        except RaceError as exc:
            print(f"repro racecheck: {exc}", file=sys.stderr)
            return 2
    elif args.allowlist is not None:
        print(f"repro racecheck: allowlist not found: {allow_path}",
              file=sys.stderr)
        return 2
    report, unused = lockset_report(args.paths, allow)
    if args.json:
        print(report.to_json().decode("utf-8"))
    else:
        print(report.format())
    severity = "error" if args.strict_unused else "warning"
    for key in unused:
        print(f"repro racecheck: {severity}: unused allowlist entry: {key}",
              file=sys.stderr)
    if not report.ok:
        return 1
    return 1 if (args.strict_unused and unused) else 0


def _cmd_dryrun(args: argparse.Namespace) -> int:
    from .agents import ImplementKit
    from .agents.implements import get_implement
    from .classroom.materials import dry_run
    from .flags import get_flag
    spec = get_flag(args.flag)
    kit = ImplementKit.uniform(spec.colors_used(),
                               get_implement(args.implement))
    report = dry_run(spec, kit, class_minutes=args.minutes)
    print(f"dry run for {spec.name} with {args.implement}s:")
    for key, minutes in report.estimated_minutes.items():
        print(f"  {key:18s} ~{minutes:4.1f} min")
    print(f"  total coloring   ~{report.total_minutes:4.1f} min "
          f"of a {args.minutes:.0f} min period")
    for w in report.warnings:
        print(f"  warning: {w}")
    for p in report.problems:
        print(f"  PROBLEM: {p}")
    print("ready to run" if report.ok else "fix problems before class")
    return 0 if report.ok else 1


def _cmd_animate(args: argparse.Namespace) -> int:
    from .flags import get_flag
    from .schedule import get_scenario, run_scenario
    from .viz import ascii_frames, progress_curve, sparkline
    spec = get_flag(args.flag)
    scenario = get_scenario(args.number)
    team = _make_team(spec, args.seed, max(scenario.n_colorers, 4))
    rng = np.random.default_rng(args.seed)
    r = run_scenario(scenario, spec, team, rng)
    rows, cols = r.canvas.rows, r.canvas.cols
    for frame in ascii_frames(r.trace, rows, cols, n_frames=args.frames):
        print(frame)
        print()
    curve = progress_curve(r.trace, rows, cols)
    print("progress: " + sparkline([f for _, f in curve], vmax=1.0))
    return 0


def _cmd_slides(args: argparse.Namespace) -> int:
    from .classroom.materials import scenario_slide
    from .flags import get_flag
    sys.stdout.write(scenario_slide(get_flag(args.flag), args.number) + "\n")
    return 0


def _cmd_debrief(args: argparse.Namespace) -> int:
    from .classroom import (
        debrief_session,
        discussion_script,
        get_institution,
        run_session,
    )
    report = run_session(get_institution(args.site), args.seed,
                         n_teams=args.teams)
    print(discussion_script(debrief_session(report)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .classroom import get_institution, run_session, session_markdown
    report = run_session(get_institution(args.site), args.seed,
                         n_teams=args.teams)
    sys.stdout.write(session_markdown(report))
    return 0


def _cmd_grade(args: argparse.Namespace) -> int:
    from .depgraph import Category, generate_exact_paper_cohort, grade_all
    rng = np.random.default_rng(args.seed)
    report = grade_all(generate_exact_paper_cohort(rng))
    for cat in Category:
        n = report.counts.get(cat, 0)
        if n:
            print(f"{cat.value:16s} {n:3d}  ({report.fraction(cat):.0%})")
    print(f"at least mostly correct: {report.at_least_mostly_correct:.0%}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .data import INSTITUTIONS
    from .survey.respond import (
        recompute_table,
        synthesize_all,
        table_discrepancies,
    )
    from .viz import format_table
    sets_ = synthesize_all(seed=args.seed)
    ok = True
    for tid in ("I", "II", "III"):
        table = recompute_table(tid, sets_)
        rows = [[q[:55]] + [table[q][i] for i in INSTITUTIONS]
                for q in table]
        print(f"Table {tid}:")
        print(format_table(["question"] + list(INSTITUTIONS), rows))
        diffs = table_discrepancies(tid, sets_)
        ok = ok and not diffs
        print(f"  vs paper: {'exact' if not diffs else diffs}\n")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import FaultPlan, RecoveryConfig, RecoveryPolicy, sample_plan
    from .flags import get_flag
    from .flags.compiler import compile_flag
    from .metrics import resilience_report
    from .schedule import get_scenario, run_scenario

    policy = {
        "abandon": RecoveryPolicy.ABANDON,
        "redistribute": RecoveryPolicy.REDISTRIBUTE,
        "spare": RecoveryPolicy.SPARE_WITH_DELAY,
    }[args.policy]
    recovery = RecoveryConfig(policy=policy)
    spec = get_flag(args.flag)
    scenario = get_scenario(args.scenario)
    program = compile_flag(spec, None, None)
    colors = sorted({op.color for op in program.ops}, key=int)

    def one_run(plan):
        team = _make_team(spec, args.seed, max(scenario.n_colorers, 4))
        rng = np.random.default_rng(args.seed)
        return run_scenario(scenario, spec, team, rng,
                            fault_plan=plan, recovery=recovery)

    baseline = one_run(FaultPlan())
    plan = sample_plan(
        np.random.default_rng(args.seed),
        n_workers=scenario.n_colorers,
        colors=colors,
        horizon=baseline.true_makespan,
        n_dropouts=args.dropouts,
        n_implement_failures=args.implement_failures,
        n_stalls=args.stalls,
        n_late=args.late,
    )
    faulted = one_run(plan)
    report = resilience_report(baseline, faulted)

    print(f"chaos run: {spec.name} scenario {scenario.number}, "
          f"policy {policy.value}")
    print("fault plan:")
    for line in plan.describe().splitlines():
        print(f"  {line}")
    print(f"  baseline makespan : {report.baseline_makespan:8.1f}s")
    print(f"  faulted makespan  : {report.faulted_makespan:8.1f}s "
          f"({report.makespan_inflation:.2f}x)")
    print(f"  coverage          : {report.faulted_coverage:.0%} "
          f"(loss {report.coverage_loss:.0%})")
    print(f"  faults fired      : {report.faults_fired}")
    print(f"  ops reassigned    : {report.ops_reassigned}")
    print(f"  ops abandoned     : {report.ops_abandoned}")
    print(f"  recovery latency  : mean {report.mean_recovery_latency:.1f}s, "
          f"max {report.max_recovery_latency:.1f}s")
    print(f"  flag correct      : {'yes' if faulted.correct else 'NO'}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .agents.student import FillStyle
    from .schedule import AcquirePolicy
    from .sweep import ACTIVITY, SweepSpec, run_sweep
    from .viz import format_table

    scenarios = tuple(
        ACTIVITY if s == "activity" else int(s) for s in args.scenario
    ) or (3,)
    spec = SweepSpec(
        flags=tuple(args.flag) or ("mauritius",),
        scenarios=scenarios,
        team_sizes=tuple(args.team_size) or (4,),
        policies=tuple(AcquirePolicy[p.upper()] for p in args.policy)
                 or (AcquirePolicy.HOLD_COLOR_RUN,),
        styles=tuple(FillStyle[s.upper()] for s in args.style)
               or (FillStyle.SCRIBBLE,),
        copies=tuple(args.copies) or (1,),
        n_trials=args.trials,
        seed=args.seed,
    )
    store = None
    if args.store is not None:
        from .store import ResultStore
        store = ResultStore(args.store)
    try:
        result = run_sweep(spec, workers=args.workers,
                           cache_dir=args.cache_dir,
                           store=store, store_tenant=args.store_tenant,
                           observe=args.observe,
                           backend=args.backend)
    except KeyboardInterrupt:
        print("sweep interrupted — worker pool cancelled, partial "
              "results discarded", file=sys.stderr)
        return 130
    finally:
        if store is not None:
            store.close()
    print(format_table(
        ["cell", "run", "trials", "median", "correct", "cache"],
        result.table_rows(),
    ))
    print(f"{spec.n_cells} cells x {spec.n_trials} trials: "
          f"computed {result.computed_trials}, "
          f"cached {result.cached_trials} "
          f"({result.workers} workers, {result.wall_seconds:.2f}s wall)")
    if args.observe:
        for cell in result.cells:
            rolled = cell.obs_rollup(cell.labels()[-1])
            waits = rolled.get("acquire_blocked_total", 0.0)
            print(f"  {cell.cell.describe():44s} "
                  f"events={rolled.get('events_logged_total', 0):g} "
                  f"blocked_acquires={waits:g}")
    return 0 if result.all_correct else 1


def _parse_chaos_event(text: str):
    """One ``--chaos`` operand -> a chaos event.

    Formats: ``crash:WORKER:LEASE``, ``stall:WORKER:LEASE:SECONDS``,
    ``slowstart:WORKER:SECONDS``, ``drop:WORKER:LEASE``.
    """
    from .fabric import (ChaosError, DroppedResponse, SlowStart,
                         WorkerCrash, WorkerStall)
    parts = text.split(":")
    kind, rest = parts[0], parts[1:]
    try:
        if kind == "crash" and len(rest) == 2:
            return WorkerCrash(worker=rest[0], on_lease=int(rest[1]))
        if kind == "stall" and len(rest) == 3:
            return WorkerStall(worker=rest[0], on_lease=int(rest[1]),
                               stall_s=float(rest[2]))
        if kind == "slowstart" and len(rest) == 2:
            return SlowStart(worker=rest[0], delay_s=float(rest[1]))
        if kind == "drop" and len(rest) == 2:
            return DroppedResponse(worker=rest[0], on_lease=int(rest[1]))
    except (ValueError, ChaosError) as exc:
        raise SystemExit(f"repro fabric: bad --chaos spec {text!r}: {exc}")
    raise SystemExit(
        f"repro fabric: bad --chaos spec {text!r} (expected "
        "crash:W:N, stall:W:N:S, slowstart:W:S, or drop:W:N)")


def _parse_remote(text: str):
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(
            f"repro fabric: bad --remote {text!r} (expected HOST:PORT)")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(
            f"repro fabric: bad --remote port in {text!r}") from None


def _cmd_fabric(args: argparse.Namespace) -> int:
    from .agents.student import FillStyle
    from .fabric import ChaosPlan, FabricConfig, FabricCoordinator
    from .schedule import AcquirePolicy
    from .sweep import ACTIVITY, SweepSpec
    from .viz import format_table

    scenarios = tuple(
        ACTIVITY if s == "activity" else int(s) for s in args.scenario
    ) or (3,)
    spec = SweepSpec(
        flags=tuple(args.flag) or ("mauritius",),
        scenarios=scenarios,
        team_sizes=tuple(args.team_size) or (4,),
        policies=tuple(AcquirePolicy[p.upper()] for p in args.policy)
                 or (AcquirePolicy.HOLD_COLOR_RUN,),
        styles=tuple(FillStyle[s.upper()] for s in args.style)
               or (FillStyle.SCRIBBLE,),
        copies=tuple(args.copies) or (1,),
        n_trials=args.trials,
        seed=args.seed,
    )
    config = FabricConfig(
        workers=args.workers,
        remotes=tuple(_parse_remote(r) for r in args.remote),
        max_attempts=args.max_attempts,
        hedge_after_s=args.hedge_after if args.hedge_after > 0 else None,
        heartbeat_timeout_s=args.heartbeat_timeout,
    )
    chaos = ChaosPlan.of([_parse_chaos_event(c) for c in args.chaos])
    store = None
    if args.store is not None:
        from .store import ResultStore
        store = ResultStore(args.store)
    coordinator = FabricCoordinator(spec, config, cache_dir=args.cache_dir,
                                    store=store,
                                    store_tenant=args.store_tenant,
                                    observe=args.observe, chaos=chaos,
                                    backend=args.backend)
    try:
        result = coordinator.run()
    except KeyboardInterrupt:
        print("fabric interrupted — workers terminated, partial results "
              "discarded", file=sys.stderr)
        return 130
    finally:
        if store is not None:
            store.close()
    print(format_table(
        ["cell", "run", "trials", "median", "correct", "cache"],
        result.table_rows(),
    ))
    stats = coordinator.stats
    print(f"{spec.n_cells} cells x {spec.n_trials} trials: "
          f"computed {result.computed_trials}, "
          f"cached {result.cached_trials} "
          f"({len(config.worker_names)} workers, "
          f"{result.wall_seconds:.2f}s wall)")
    print(f"  leases {stats.leases} (retries {stats.retries}, "
          f"hedges {stats.hedges}), steals {stats.steals} "
          f"({stats.stolen_cells} cells), "
          f"duplicates {stats.duplicates}, "
          f"worker deaths {stats.worker_deaths}")
    return 0 if result.all_correct else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ServeConfig, ServeServer

    if args.require_token and args.store is None:
        print("repro serve: --require-token needs --store PATH",
              file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host, port=args.port, max_pending=args.max_pending,
        batch_window_s=args.batch_window, batch_max=args.batch_max,
        workers=args.workers, default_timeout_s=args.timeout,
        cache_dir=args.cache_dir, cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes, backend=args.backend,
        store_path=args.store, store_tenant=args.store_tenant,
        require_token=args.require_token,
    )

    async def _main() -> bool:
        server = ServeServer(config)
        await server.start()
        loop = asyncio.get_running_loop()

        def _drain(sig_name: str) -> None:
            print(f"{sig_name} received — draining", file=sys.stderr,
                  flush=True)
            asyncio.ensure_future(
                server.shutdown(interrupted=sig_name == "SIGINT"))

        try:
            loop.add_signal_handler(signal.SIGTERM,
                                    lambda: _drain("SIGTERM"))
            loop.add_signal_handler(signal.SIGINT,
                                    lambda: _drain("SIGINT"))
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            pass
        # Announce readiness only once the drain handlers are live, so a
        # supervisor that signals on first output always gets a drain.
        print(f"serving on http://{config.host}:{server.port} "
              f"(max_pending={config.max_pending}, "
              f"batch_window={config.batch_window_s:g}s, "
              f"workers={config.workers}, "
              f"cache={config.cache_dir or 'off'}, "
              f"store={config.store_path or 'off'})", flush=True)
        await server.serve_forever()
        return server.interrupted

    try:
        interrupted = asyncio.run(_main())
    except KeyboardInterrupt:
        # Signal handlers could not be installed (or the interrupt beat
        # them): asyncio.run has already cancelled and drained the loop.
        print("interrupted — server shut down", file=sys.stderr)
        return 130
    print("drained, bye")
    return 130 if interrupted else 0


def _cmd_store(args: argparse.Namespace) -> int:
    """The ``repro store`` subcommands: init/migrate/tenants/token/results/gc.

    All of them act on one SQLite database path (``--db``), the same
    file ``repro sweep --store`` / ``repro serve --store`` persist
    through.  ``init`` migrates to the head schema; ``migrate`` shows
    or applies pending migrations explicitly; ``tenants`` lists (or
    creates / quota-sets) tenants; ``token`` issues and revokes Bearer
    tokens; ``results`` lists stored results; ``gc`` collects stale or
    over-quota rows.
    """
    from .store import HEAD_VERSION, MigrationError, ResultStore, \
        StoreError, pending

    try:
        if args.store_command == "init":
            with ResultStore(args.db) as store:
                print(f"{args.db}: schema version "
                      f"{store.schema_version} (head {HEAD_VERSION})")
            return 0

        if args.store_command == "migrate":
            with ResultStore(args.db, migrate=False) as store:
                if args.plan:
                    todo = pending(store._conn, args.target)
                    if not todo:
                        print(f"{args.db}: up to date at version "
                              f"{store.schema_version}")
                    for m in todo:
                        print(f"pending {m.version}: {m.name} "
                              f"({len(m.statements)} statements)")
                    return 0
                applied = store.migrate(target=args.target)
                for name in applied:
                    print(f"applied {name}")
                print(f"{args.db}: schema version "
                      f"{store.schema_version} (head {HEAD_VERSION})")
            return 0

        with ResultStore(args.db) as store:
            if args.store_command == "tenants":
                if args.add:
                    tenant = store.ensure_tenant(args.add)
                    print(f"tenant {tenant.path} ({tenant.kind})")
                    if (args.max_results is not None
                            or args.max_bytes is not None):
                        store.set_quota(args.add,
                                        max_results=args.max_results,
                                        max_bytes=args.max_bytes,
                                        retry_after_s=args.retry_after)
                        print(f"  quota: max_results={args.max_results} "
                              f"max_bytes={args.max_bytes} "
                              f"retry_after={args.retry_after:g}s")
                    return 0
                rows = store.tenants()
                if not rows:
                    print("no tenants (add one with --add PATH)")
                for t in rows:
                    quota = t["quota"]
                    limits = ("unlimited" if quota is None else
                              f"max_results={quota['max_results']} "
                              f"max_bytes={quota['max_bytes']}")
                    print(f"{t['path']:32s} {t['kind']:11s} "
                          f"{t['n_results']:5d} results "
                          f"{t['bytes']:10d} B  "
                          f"{t['n_sessions']:3d} sessions  {limits}")
                return 0

            if args.store_command == "token":
                if args.revoke:
                    gone = store.revoke_token(args.revoke)
                    print("revoked" if gone else "no such token")
                    return 0 if gone else 1
                store.ensure_tenant(args.issue)
                token = store.issue_token(args.issue, label=args.label,
                                          expires_days=args.expires_days)
                # The plaintext is shown exactly once; only its hash
                # is stored.
                print(token)
                return 0

            if args.store_command == "results":
                rows = store.results(tenant=args.tenant, limit=args.limit)
                for r in rows:
                    print(f"{r['digest'][:16]:16s} {r['tenant']:24s} "
                          f"{r['kind']:12s} {r['nbytes']:9d} B "
                          f"hits={r['hits']}")
                print(f"{len(rows)} results")
                return 0

            if args.store_command == "gc":
                deleted = store.gc(older_than_s=args.older_than,
                                   tenant=args.tenant)
                print(f"collected {deleted} results")
                return 0
    except (StoreError, MigrationError) as exc:
        print(f"repro store: {exc}", file=sys.stderr)
        return 1
    raise SystemExit(f"unknown store command {args.store_command!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .obs import RunObserver, build_spans, dump_chrome_trace, to_chrome_trace

    target = pathlib.Path(args.target)
    if target.exists():
        # Convert an archived JSON-lines event log (repro.sim.export).
        from .sim.export import import_events
        events = import_events(target.read_text())
        spans = build_spans(events)
        doc = to_chrome_trace(spans)
        summary_text = (f"converted {len(events)} events from {target} "
                        f"into {len(spans)} spans")
        metrics_text = None
    else:
        from .flags import get_flag
        from .schedule import get_scenario, run_scenario
        spec = get_flag(args.target)
        scenario = get_scenario(args.scenario)
        team = _make_team(spec, args.seed, max(scenario.n_colorers, 4))
        rng = np.random.default_rng(args.seed)
        observer = RunObserver()
        fault_plan = None
        recovery = None
        if args.chaos:
            from .faults import FaultPlan, RecoveryConfig, sample_plan
            from .flags.compiler import compile_flag
            program = compile_flag(spec, None, None)
            colors = sorted({op.color for op in program.ops}, key=int)
            baseline = run_scenario(scenario, spec,
                                    _make_team(spec, args.seed,
                                               max(scenario.n_colorers, 4)),
                                    np.random.default_rng(args.seed))
            fault_plan = sample_plan(
                np.random.default_rng(args.seed),
                n_workers=scenario.n_colorers, colors=colors,
                horizon=baseline.true_makespan,
                n_dropouts=1, n_implement_failures=1, n_stalls=1,
            )
            recovery = RecoveryConfig()
        result = run_scenario(scenario, spec, team, rng,
                              fault_plan=fault_plan, recovery=recovery,
                              observer=observer)
        doc = observer.chrome_trace()
        metrics_text = observer.prometheus()
        summary_text = result.obs.format() if result.obs else ""

    out = pathlib.Path(args.out)
    out.write_text(dump_chrome_trace(doc) + "\n")
    n_slices = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {out}: {len(doc['traceEvents'])} trace events "
          f"({n_slices} slices) — load it at ui.perfetto.dev or "
          f"chrome://tracing")
    if args.metrics:
        if metrics_text is None:
            print("note: --metrics ignored when converting an event log")
        else:
            pathlib.Path(args.metrics).write_text(metrics_text)
            print(f"wrote {args.metrics}: "
                  f"{len(metrics_text.splitlines())} metric lines")
    if summary_text:
        print(summary_text)
    json.loads(out.read_text())  # self-check: the file is valid JSON
    return 0


def _cmd_tutor(args: argparse.Namespace) -> int:
    """The ``repro tutor`` command: guided live-streamed lessons.

    Each lesson drives one real seeded engine run through the
    ``repro.stream`` bus and narrates a PDC concept — speedup, warmup,
    contention, pipelining — against the numbers as they arrive.  With
    ``--serve HOST:PORT`` the frames come over a live SSE connection
    instead of an in-process bus, so the terminal session doubles as
    an end-to-end check of a running ``repro serve`` endpoint.
    """
    from .stream.tutor import TutorError, lesson_catalog, run_lesson

    if args.list:
        print(lesson_catalog())
        return 0
    if args.lesson is None:
        print("repro tutor: pick a lesson with --lesson "
              "(or see --list)", file=sys.stderr)
        return 2
    serve = None
    if args.serve is not None:
        host, sep, port = args.serve.rpartition(":")
        if not sep or not host or not port.isdigit():
            print(f"repro tutor: --serve wants HOST:PORT, "
                  f"got {args.serve!r}", file=sys.stderr)
            return 2
        serve = (host, int(port))
    try:
        run_lesson(args.lesson, flag=args.flag, seed=args.seed,
                   team_size=args.team_size, serve=serve,
                   token=args.token, width=args.width, out=print)
    except TutorError as exc:
        print(f"repro tutor: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="flagsim: the unplugged PDC flag-coloring activity, "
                    "simulated.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("flags", help="list the flag catalog")

    p = sub.add_parser("render", help="draw a flag")
    p.add_argument("flag")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--cols", type=int, default=None)
    p.add_argument("--format", choices=("ascii", "ansi", "svg", "ppm"),
                   default="ansi")

    p = sub.add_parser("scenario", help="simulate one core scenario")
    p.add_argument("flag")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("activity", help="run the full core activity")
    p.add_argument("--flag", default="mauritius")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--no-repeat", action="store_true",
                   help="do not repeat scenario 1")

    p = sub.add_parser("session", help="simulate a whole classroom")
    p.add_argument("site", choices=("HPU", "USI", "Knox", "TNTech",
                                    "Webster", "Montclair"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--teams", type=int, default=3)

    p = sub.add_parser("depgraph", help="show a flag's dependency graph")
    p.add_argument("flag")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.add_argument("--processors", type=int, default=0,
                   help="also list-schedule onto P processors")

    p = sub.add_parser(
        "analyze",
        help="statically verify a scenario: deadlock, bounds, contention")
    p.add_argument("flag")
    p.add_argument("--scenario", type=int, choices=(1, 2, 3, 4),
                   default=None,
                   help="one scenario (default: analyze all four)")
    p.add_argument("--team-size", type=int, default=4, dest="team_size")
    p.add_argument("--copies", type=int, default=1,
                   help="duplicate implements per color")
    p.add_argument("--policy",
                   choices=("hold_color_run", "release_per_stroke"),
                   default="hold_color_run")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--cols", type=int, default=None)
    p.add_argument("--hoard", action="store_true",
                   help="model students who grab the next implement "
                        "before releasing the current one")
    p.add_argument("--rotate", action="store_true",
                   help="model the rotated per-worker color order")
    p.add_argument("--json", action="store_true",
                   help="emit canonical-JSON reports, one per line")

    p = sub.add_parser(
        "racecheck",
        help="static lockset race detection over Python sources")
    p.add_argument("paths", nargs="+",
                   help="files or directories to analyze")
    p.add_argument("--allowlist", default=None,
                   help="justified suppressions (default "
                        "tools/races_allow.txt when present)")
    p.add_argument("--strict-unused", action="store_true",
                   dest="strict_unused",
                   help="stale allowlist entries are a hard failure")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical RaceReport JSON")

    p = sub.add_parser("dryrun", help="pre-class checklist (Section IV)")
    p.add_argument("flag")
    p.add_argument("--implement", default="thick_marker")
    p.add_argument("--minutes", type=float, default=50.0)

    p = sub.add_parser("animate", help="frame-by-frame scenario animation")
    p.add_argument("flag")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--frames", type=int, default=6)

    p = sub.add_parser("slides", help="SVG instruction slide for a scenario")
    p.add_argument("flag")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4))

    p = sub.add_parser("debrief", help="post-activity discussion guide")
    p.add_argument("site", choices=("HPU", "USI", "Knox", "TNTech",
                                    "Webster", "Montclair"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--teams", type=int, default=3)

    p = sub.add_parser("report", help="markdown session report")
    p.add_argument("site", choices=("HPU", "USI", "Knox", "TNTech",
                                    "Webster", "Montclair"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--teams", type=int, default=3)

    p = sub.add_parser("grade", help="grade a simulated Jordan cohort")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("tables", help="regenerate Tables I-III")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("chaos",
                       help="run a scenario under a seeded fault plan")
    p.add_argument("flag")
    p.add_argument("--scenario", type=int, choices=(1, 2, 3, 4), default=4)
    p.add_argument("--policy",
                   choices=("abandon", "redistribute", "spare"),
                   default="redistribute")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--dropouts", type=int, default=1)
    p.add_argument("--implement-failures", type=int, default=1,
                   dest="implement_failures")
    p.add_argument("--stalls", type=int, default=1)
    p.add_argument("--late", type=int, default=0)

    p = sub.add_parser(
        "sweep",
        help="run a declarative experiment grid across a process pool")
    p.add_argument("--flag", action="append", default=[],
                   help="flag axis (repeatable; default mauritius)")
    p.add_argument("--scenario", action="append", default=[],
                   choices=("1", "2", "3", "4", "activity"),
                   help="scenario axis (repeatable; 'activity' = all four "
                        "scenarios with the scenario-1 repeat; default 3)")
    p.add_argument("--team-size", action="append", type=int, default=[],
                   dest="team_size", help="team size axis (default 4)")
    p.add_argument("--policy", action="append", default=[],
                   choices=("hold_color_run", "release_per_stroke"),
                   help="acquisition policy axis (default hold_color_run)")
    p.add_argument("--style", action="append", default=[],
                   choices=("full", "scribble", "minimal"),
                   help="fill style axis (default scribble)")
    p.add_argument("--copies", action="append", type=int, default=[],
                   help="duplicate-implements axis (default 1)")
    p.add_argument("--trials", type=int, default=8,
                   help="independent trials per cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (parallel runs are "
                        "byte-identical to serial)")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed result cache directory; warm "
                        "re-runs recompute nothing")
    p.add_argument("--store", default=None,
                   help="durable result store database (repro.store); "
                        "computed cells persist across restarts and "
                        "cache deletion")
    p.add_argument("--store-tenant", default="public", dest="store_tenant",
                   help="tenant path to persist results under")
    p.add_argument("--observe", action="store_true",
                   help="attach the observability layer to every run and "
                        "print per-cell counter roll-ups")
    p.add_argument("--backend", default="reference",
                   choices=("reference", "vector", "auto"),
                   help="trial engine: the reference event loop, the "
                        "batched vector engine (identical metrics, no "
                        "traces), or auto per-cell selection")

    p = sub.add_parser(
        "fabric",
        help="run an experiment grid on the fault-tolerant sweep fabric")
    p.add_argument("--flag", action="append", default=[],
                   help="flag axis (repeatable; default mauritius)")
    p.add_argument("--scenario", action="append", default=[],
                   choices=("1", "2", "3", "4", "activity"),
                   help="scenario axis (repeatable; default 3)")
    p.add_argument("--team-size", action="append", type=int, default=[],
                   dest="team_size", help="team size axis (default 4)")
    p.add_argument("--policy", action="append", default=[],
                   choices=("hold_color_run", "release_per_stroke"),
                   help="acquisition policy axis (default hold_color_run)")
    p.add_argument("--style", action="append", default=[],
                   choices=("full", "scribble", "minimal"),
                   help="fill style axis (default scribble)")
    p.add_argument("--copies", action="append", type=int, default=[],
                   help="duplicate-implements axis (default 1)")
    p.add_argument("--trials", type=int, default=8,
                   help="independent trials per cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=2,
                   help="local subprocess workers (w0..wN-1)")
    p.add_argument("--remote", action="append", default=[],
                   help="remote 'repro serve' endpoint as HOST:PORT "
                        "(repeatable; named r0..rN-1)")
    p.add_argument("--max-attempts", type=int, default=5,
                   dest="max_attempts",
                   help="lease attempts per cell before the sweep fails")
    p.add_argument("--hedge-after", type=float, default=5.0,
                   dest="hedge_after",
                   help="hedge a straggling lease after this many "
                        "seconds (0 disables hedging)")
    p.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   dest="heartbeat_timeout",
                   help="abandon a lease after this much worker silence")
    p.add_argument("--chaos", action="append", default=[],
                   help="scripted failure (repeatable): crash:W:N, "
                        "stall:W:N:S, slowstart:W:S, drop:W:N — e.g. "
                        "crash:w0:1 kills w0 on its first lease")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed result cache directory "
                        "(shared format with 'repro sweep --cache-dir')")
    p.add_argument("--store", default=None,
                   help="durable result store database (repro.store); "
                        "leased-cell results persist through it")
    p.add_argument("--store-tenant", default="public", dest="store_tenant",
                   help="tenant path to persist results under")
    p.add_argument("--observe", action="store_true",
                   help="attach the observability layer to every run")
    p.add_argument("--backend", default="reference",
                   choices=("reference", "vector", "auto"),
                   help="trial engine, resolved per cell as in "
                        "'repro sweep --backend'")

    p = sub.add_parser(
        "serve",
        help="stand the simulator up as an async HTTP/JSON service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (0 picks an ephemeral port)")
    p.add_argument("--max-pending", type=int, default=64,
                   dest="max_pending",
                   help="admission limit before requests get 429")
    p.add_argument("--batch-window", type=float, default=0.005,
                   dest="batch_window",
                   help="micro-batch coalescing window, seconds")
    p.add_argument("--batch-max", type=int, default=16, dest="batch_max",
                   help="dispatch a batch at this size even mid-window")
    p.add_argument("--workers", type=int, default=0,
                   help="trial-compute processes (0 = in-process threads)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="default per-request deadline, seconds")
    p.add_argument("--cache-dir", default=None,
                   help="read-through result cache directory "
                        "(shared format with 'repro sweep --cache-dir')")
    p.add_argument("--cache-max-entries", type=int, default=None,
                   dest="cache_max_entries",
                   help="LRU-prune the cache beyond this many entries")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   dest="cache_max_bytes",
                   help="LRU-prune the cache beyond this many bytes")
    p.add_argument("--backend", default="reference",
                   choices=("reference", "vector", "auto"),
                   help="trial engine for requests that name none "
                        "(request bodies may override per call)")
    p.add_argument("--store", default=None,
                   help="durable result store database (repro.store): "
                        "read-through under the cache, /tenants and "
                        "/results endpoints, token auth")
    p.add_argument("--store-tenant", default="public", dest="store_tenant",
                   help="tenant path unauthenticated requests act as")
    p.add_argument("--require-token", action="store_true",
                   dest="require_token",
                   help="refuse tokenless /run /sweep /task /results "
                        "/tenants requests with 401 (needs --store)")

    p = sub.add_parser(
        "store",
        help="manage the durable result store (init/migrate/tenants/"
             "token/results/gc)")
    store_sub = p.add_subparsers(dest="store_command", required=True)

    sp = store_sub.add_parser("init",
                              help="create the database and migrate it "
                                   "to the head schema")
    sp.add_argument("db", help="SQLite database path")

    sp = store_sub.add_parser("migrate",
                              help="apply (or --plan) pending schema "
                                   "migrations")
    sp.add_argument("db", help="SQLite database path")
    sp.add_argument("--target", type=int, default=None,
                    help="stop at this schema version (default: head)")
    sp.add_argument("--plan", action="store_true",
                    help="list pending migrations without applying")

    sp = store_sub.add_parser("tenants",
                              help="list tenants, or create one with "
                                   "--add (optionally with a quota)")
    sp.add_argument("db", help="SQLite database path")
    sp.add_argument("--add", default=None, metavar="PATH",
                    help="create a tenant path like usi/cs1/spring26 "
                         "(institution/class/cohort)")
    sp.add_argument("--max-results", type=int, default=None,
                    dest="max_results",
                    help="with --add: quota on stored result count")
    sp.add_argument("--max-bytes", type=int, default=None,
                    dest="max_bytes",
                    help="with --add: quota on stored payload bytes")
    sp.add_argument("--retry-after", type=float, default=60.0,
                    dest="retry_after",
                    help="Retry-After hint (seconds) on 429 refusals")

    sp = store_sub.add_parser("token",
                              help="issue (--issue PATH) or revoke "
                                   "(--revoke TOKEN) a Bearer token")
    sp.add_argument("db", help="SQLite database path")
    group = sp.add_mutually_exclusive_group(required=True)
    group.add_argument("--issue", default=None, metavar="PATH",
                       help="mint a token for this tenant path; the "
                            "plaintext is printed exactly once")
    group.add_argument("--revoke", default=None, metavar="TOKEN",
                       help="revoke a previously-issued token")
    sp.add_argument("--label", default=None,
                    help="with --issue: a human-readable token label")
    sp.add_argument("--expires-days", type=float, default=None,
                    dest="expires_days", metavar="N",
                    help="with --issue: the token expires N days from "
                         "now (default: never); an expired token gets "
                         "401 token_expired from repro serve")

    sp = store_sub.add_parser("results", help="list stored results")
    sp.add_argument("db", help="SQLite database path")
    sp.add_argument("--tenant", default=None,
                    help="restrict to one tenant path")
    sp.add_argument("--limit", type=int, default=None,
                    help="cap the listing length")

    sp = store_sub.add_parser("gc",
                              help="collect stale and over-quota results")
    sp.add_argument("db", help="SQLite database path")
    sp.add_argument("--older-than", type=float, default=None,
                    dest="older_than",
                    help="drop results created more than this many "
                         "seconds ago")
    sp.add_argument("--tenant", default=None,
                    help="restrict collection to one tenant path")

    p = sub.add_parser(
        "trace",
        help="run a scenario under the observer and export a Chrome trace")
    p.add_argument("target",
                   help="flag name to simulate, or path to a JSON-lines "
                        "event log exported via repro.sim.export")
    p.add_argument("--scenario", type=int, choices=(1, 2, 3, 4), default=4)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--chaos", action="store_true",
                   help="inject a seeded fault plan into the traced run")
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event JSON output path")
    p.add_argument("--metrics", default=None,
                   help="also write a Prometheus-style metrics dump here")

    p = sub.add_parser(
        "tutor",
        help="guided live-streamed PDC lessons (repro.stream.tutor)")
    # Literal choices keep parser construction import-free; a test
    # pins them to repro.stream.tutor.LESSONS.
    p.add_argument("--lesson", default=None,
                   choices=("contention", "pipelining", "speedup",
                            "warmup"),
                   help="which lesson to run (see --list)")
    p.add_argument("--list", action="store_true",
                   help="print the lesson catalog and exit")
    p.add_argument("--flag", default="mauritius",
                   help="flag to color during the lesson")
    p.add_argument("--seed", type=int, default=7,
                   help="seed for the lesson's engine runs")
    p.add_argument("--team-size", type=int, default=6,
                   dest="team_size",
                   help="students on the concurrent-scenario team")
    p.add_argument("--serve", default=None, metavar="HOST:PORT",
                   help="stream the lesson from a live repro serve "
                        "endpoint over SSE instead of in-process")
    p.add_argument("--token", default=None,
                   help="Bearer token for a --require-token server")
    p.add_argument("--width", type=int, default=64,
                   help="terminal Gantt width in characters")

    return parser


_COMMANDS = {
    "flags": _cmd_flags,
    "render": _cmd_render,
    "scenario": _cmd_scenario,
    "activity": _cmd_activity,
    "session": _cmd_session,
    "depgraph": _cmd_depgraph,
    "analyze": _cmd_analyze,
    "racecheck": _cmd_racecheck,
    "dryrun": _cmd_dryrun,
    "animate": _cmd_animate,
    "slides": _cmd_slides,
    "debrief": _cmd_debrief,
    "report": _cmd_report,
    "grade": _cmd_grade,
    "tables": _cmd_tables,
    "chaos": _cmd_chaos,
    "fabric": _cmd_fabric,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "tutor": _cmd_tutor,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # The reader went away (e.g. `repro analyze ... | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time, and exit like a SIGPIPE'd tool.
        # stdout may have no real fd (captured in tests): nothing to
        # redirect then.
        import contextlib
        import os
        with contextlib.suppress(OSError, ValueError):
            os.dup2(os.open(os.devnull, os.O_WRONLY),
                    sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
