"""flagsim — a simulation reproduction of the unplugged flag-coloring
activity from "A Visual Unplugged Activity to Introduce PDC" (IPDPSW 2025).

The library models the entire activity end-to-end:

- :mod:`repro.grid` — the gridded paper (numpy raster, region algebra).
- :mod:`repro.flags` — flags as layered paint programs + decompositions.
- :mod:`repro.sim` — a deterministic discrete-event simulation kernel.
- :mod:`repro.agents` — students as processors, implements as hardware.
- :mod:`repro.schedule` — the four scenarios, dynamic/pipelined/layered
  scheduling strategies.
- :mod:`repro.depgraph` — dependency graphs, the Jordan exercise, and the
  Section V-C grading rubric.
- :mod:`repro.metrics` — speedup laws, load balance, contention, warmup.
- :mod:`repro.obs` — observability: spans, metrics registry, profiling,
  Chrome-trace and Prometheus exporters.
- :mod:`repro.faults` — deterministic fault injection and recovery.
- :mod:`repro.sweep` — declarative experiment sweeps: process-pool
  trial fan-out with SeedSequence-derived streams and a
  content-addressed on-disk result cache.
- :mod:`repro.serve` — the async simulation service: an HTTP/JSON
  server with micro-batching, admission control (429 backpressure),
  cache-backed responses, and graceful drain.
- :mod:`repro.fabric` — fault-tolerant distributed sweeps: cell leases
  over local subprocess workers and remote serve endpoints, heartbeat
  health, retries, hedging, work stealing, deterministic self-chaos.
- :mod:`repro.classroom` — whole-class sessions at the six pilot sites and
  automatic debrief lesson extraction.
- :mod:`repro.survey` — the ASPECT engagement survey, the pre/post quiz,
  calibrated synthetic populations, open-ended theme coding.
- :mod:`repro.viz` — terminal bar charts, Gantt charts, tables, flag art.
- :mod:`repro.data` — the paper's published numbers as constants.

Quickstart::

    import numpy as np
    from repro.flags import mauritius
    from repro.agents import make_team
    from repro.schedule import run_core_activity

    rng = np.random.default_rng(42)
    spec = mauritius()
    team = make_team("team1", 4, rng, colors=list(spec.colors_used()))
    results = run_core_activity(spec, team, rng)
    for label, r in results.items():
        print(label, f"{r.measured_time:.0f}s")
"""

__version__ = "1.0.0"

from . import agents, classroom, data, depgraph, flags, grid, metrics
from . import obs, schedule, serve, sim, survey, viz

__all__ = [
    "__version__",
    "agents",
    "classroom",
    "data",
    "depgraph",
    "flags",
    "grid",
    "metrics",
    "obs",
    "schedule",
    "serve",
    "sim",
    "survey",
    "viz",
]
