"""Static wait-graph analysis over a small acquire/release/wait IR.

The analyzer does not run the engine.  Instead a scenario is *compiled*
into a wait program: per process, the ordered list of resource acquires,
releases, work amounts and completion waits it will perform.  From that
IR alone we can decide:

* **hold-and-wait deadlock** — a cycle in the resource-order graph
  (resource A held while B is requested) witnessed by distinct
  processes, which is the classic Coffman circular-wait condition.  The
  reported cycle uses the exact format of the runtime
  :class:`~repro.sim.engine.DeadlockError` diagnostic because both call
  the same :func:`~repro.sim.engine.find_wait_cycle`.
* **barrier deadlock** — processes waiting on each other's completion.
* **unsatisfiable waits/acquires** — a wait on a process that does not
  exist, an acquire of a resource no one issued, a release of a
  resource not held, or a re-acquire of an implement the process
  already holds (self-deadlock on a single-copy resource).

For parity testing, :func:`execute_wait_program` interprets the same IR
on the real :class:`~repro.sim.engine.Simulator`, so a statically
flagged cycle can be shown to deadlock at runtime with the identical
cycle list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..sim.engine import (
    Acquire,
    DeadlockError,
    ProcessGen,
    Release,
    Simulator,
    Timeout,
    WaitAll,
    find_wait_cycle,
    format_wait_cycle,
)
from .report import Issue, error, warning


@dataclass(frozen=True)
class AcquireStep:
    """Block until one unit of ``resource`` is granted."""

    resource: str


@dataclass(frozen=True)
class ReleaseStep:
    """Give ``resource`` back; the process must currently hold it."""

    resource: str


@dataclass(frozen=True)
class WorkStep:
    """Hold everything currently held for ``duration`` weight units."""

    duration: float


@dataclass(frozen=True)
class BarrierStep:
    """Block until every process in ``waits_on`` has finished."""

    waits_on: Tuple[str, ...]


Step = Union[AcquireStep, ReleaseStep, WorkStep, BarrierStep]


@dataclass(frozen=True)
class ProcSpec:
    """One process: a name and its ordered step list."""

    name: str
    steps: Tuple[Step, ...]


@dataclass(frozen=True)
class WaitProgram:
    """A full static model: processes plus resource capacities."""

    procs: Tuple[ProcSpec, ...]
    capacities: Dict[str, int]

    def proc_names(self) -> List[str]:
        """Process names in declaration order."""
        return [p.name for p in self.procs]


#: A hold-and-wait fact: ``process`` holds ``held`` while requesting
#: ``requested``; ``ordinal`` is the 0-based index of the acquire among
#: the process's acquires (how early in its life the wait can happen).
HoldPair = Tuple[str, str, str, int]


def hold_pairs(proc: ProcSpec) -> Tuple[List[HoldPair], List[Issue]]:
    """Walk one process's steps, extracting hold-and-wait pairs.

    Simulates the held-set symbolically: each :class:`AcquireStep` that
    happens while other resources are held contributes one pair per held
    resource, stamped with the acquire's ordinal.  Structural problems
    (release without hold, re-acquire of a held resource) come back as
    issues; the re-acquire case is also reported by
    :func:`analyze_wait_program` as a self-deadlock when the resource is
    single-copy.

    Returns:
        ``(pairs, issues)`` — pairs in step order, issues for malformed
        sequences.
    """
    held: List[str] = []
    pairs: List[HoldPair] = []
    issues: List[Issue] = []
    ordinal = 0
    for step in proc.steps:
        if isinstance(step, AcquireStep):
            for h in held:
                pairs.append((proc.name, h, step.resource, ordinal))
            ordinal += 1
            if step.resource in held:
                issues.append(error(
                    "reacquire_held",
                    f"{proc.name} acquires {step.resource} while already "
                    f"holding it",
                    subject=proc.name))
            else:
                held.append(step.resource)
        elif isinstance(step, ReleaseStep):
            if step.resource not in held:
                issues.append(error(
                    "release_without_hold",
                    f"{proc.name} releases {step.resource} without "
                    f"holding it",
                    subject=proc.name))
            else:
                held.remove(step.resource)
    return pairs, issues


def _witness_matching(
        resources: List[str],
        candidates: List[List[Tuple[int, str]]]) -> Optional[List[str]]:
    """Assign a *distinct* witness process to each cycle edge.

    ``candidates[i]`` lists ``(ordinal, process)`` pairs — processes
    that hold ``resources[i]`` while requesting ``resources[i+1]``,
    tagged with how early in their life that wait occurs.  A
    resource-order cycle only proves a reachable deadlock if the edges
    can be witnessed by pairwise-distinct processes (one process cannot
    block on itself around the loop).

    Candidates are tried earliest-ordinal first: a deadlock wedges at
    the first mutual blocking point, so preferring each process's
    earliest hold-and-wait boundary makes the static witness cycle
    coincide with the cycle the runtime engine actually reports.
    Deterministic: ties break on the process name.

    Returns:
        One witness per edge, or None when no distinct assignment exists.
    """
    chosen: List[str] = []

    def assign(i: int) -> bool:
        if i == len(resources):
            return True
        for _, cand in sorted(candidates[i]):
            if cand not in chosen:
                chosen.append(cand)
                if assign(i + 1):
                    return True
                chosen.pop()
        return False

    return chosen if assign(0) else None


def analyze_wait_program(
        program: WaitProgram) -> Tuple[List[Issue], List[str]]:
    """Statically check a wait program for deadlock and bad waits.

    Checks, in order: unknown resources/processes, structural
    release/re-acquire errors, barrier (completion-wait) cycles, and
    hold-and-wait cycles through the resource-order graph.  A resource
    cycle through only single-copy implements with a distinct-witness
    assignment is a provable deadlock (ERROR, with the process cycle in
    the runtime diagnostic format); a cycle that needs a duplicated
    implement or has no distinct witnesses is a lock-order inversion
    the engine may or may not hit (WARNING).

    Returns:
        ``(issues, cycle)`` — the cycle is the alternating process/via
        list for a provable deadlock, ``[]`` otherwise.
    """
    issues: List[Issue] = []
    names = set(program.proc_names())

    all_pairs: List[HoldPair] = []
    barrier_edges: Dict[str, List[Tuple[str, str]]] = {}
    for proc in program.procs:
        pairs, proc_issues = hold_pairs(proc)
        issues.extend(proc_issues)
        all_pairs.extend(pairs)
        for step in proc.steps:
            if isinstance(step, AcquireStep):
                if step.resource not in program.capacities:
                    issues.append(error(
                        "unsatisfiable_acquire",
                        f"{proc.name} acquires {step.resource}, but no "
                        f"such implement was issued",
                        subject=step.resource))
            elif isinstance(step, BarrierStep):
                for target in step.waits_on:
                    if target not in names:
                        issues.append(error(
                            "unsatisfiable_wait",
                            f"{proc.name} waits for {target}, but no "
                            f"such process exists",
                            subject=target))
                    elif target != proc.name:
                        barrier_edges.setdefault(proc.name, []).append(
                            ("<wait>", target))
        # A self-wait can never be satisfied: the process cannot finish
        # before itself.
        for step in proc.steps:
            if isinstance(step, BarrierStep) and proc.name in step.waits_on:
                issues.append(error(
                    "unsatisfiable_wait",
                    f"{proc.name} waits for its own completion",
                    subject=proc.name))

    # Re-acquire of a single-copy implement is a guaranteed self-deadlock:
    # the process queues on a resource only it can release.  Runtime
    # shape: p waits via r on p itself, cycle [p, r, p].
    for proc in program.procs:
        held: List[str] = []
        for step in proc.steps:
            if isinstance(step, AcquireStep):
                if (step.resource in held
                        and program.capacities.get(step.resource, 1) == 1):
                    cycle = [proc.name, step.resource, proc.name]
                    issues.append(error(
                        "deadlock_cycle",
                        f"self-deadlock: {format_wait_cycle(cycle)}",
                        subject=proc.name))
                    return issues, cycle
                if step.resource not in held:
                    held.append(step.resource)
            elif isinstance(step, ReleaseStep):
                if step.resource in held:
                    held.remove(step.resource)

    # Barrier cycles are definite: completion-wait edges do not depend on
    # timing.
    cycle = find_wait_cycle(barrier_edges)
    if cycle:
        issues.append(error(
            "deadlock_cycle",
            f"completion-wait cycle: {format_wait_cycle(cycle)}",
            subject=cycle[0]))
        return issues, cycle

    # Hold-and-wait: build the resource-order graph (held -> requested).
    res_edges: Dict[str, List[Tuple[str, str]]] = {}
    seen_edges = set()
    for pname, held, requested, _ in all_pairs:
        if held == requested:
            continue
        if (held, requested) not in seen_edges:
            seen_edges.add((held, requested))
            res_edges.setdefault(held, []).append(("", requested))
    res_cycle = find_wait_cycle(res_edges)
    if not res_cycle:
        return issues, []

    resources = res_cycle[0::2][:-1]  # drop the repeated closing node
    k = len(resources)
    provable = all(
        program.capacities.get(r, 1) == 1 for r in resources)
    candidates: List[List[Tuple[int, str]]] = []
    for i, r in enumerate(resources):
        nxt = resources[(i + 1) % k]
        best: Dict[str, int] = {}
        for p, h, q, o in all_pairs:
            if h == r and q == nxt and o < best.get(p, o + 1):
                best[p] = o
        candidates.append(sorted((o, p) for p, o in best.items()))
    witnesses = _witness_matching(resources, candidates) if provable else None

    if witnesses is None:
        issues.append(warning(
            "lock_order_inversion",
            f"implements are acquired in conflicting orders "
            f"({' -> '.join(resources + [resources[0]])}); not provably "
            f"deadlocking (duplicate copies or no distinct witnesses)",
            subject=resources[0]))
        return issues, []

    # witness i holds resources[i] and requests resources[i+1], which
    # witness i+1 holds: the same wait-for relation the runtime engine
    # reports, so the shared cycle finder canonicalizes the rotation.
    proc_edges: Dict[str, List[Tuple[str, str]]] = {}
    for i, w in enumerate(witnesses):
        via = resources[(i + 1) % k]
        proc_edges.setdefault(w, []).append((via, witnesses[(i + 1) % k]))
    cycle = find_wait_cycle(proc_edges)
    issues.append(error(
        "deadlock_cycle",
        f"hold-and-wait cycle: {format_wait_cycle(cycle)}",
        subject=cycle[0] if cycle else resources[0]))
    return issues, cycle


def execute_wait_program(program: WaitProgram, *,
                         until: Optional[float] = None) -> Simulator:
    """Interpret a wait program on the real simulation engine.

    The parity bridge for regression tests: a program the static
    analyzer flags as deadlocking must raise
    :class:`~repro.sim.engine.DeadlockError` here with the *same* cycle
    list.  Steps map one-to-one onto engine commands.

    Returns:
        The finished :class:`~repro.sim.engine.Simulator` (clock at the
        program's makespan).

    Raises:
        DeadlockError: when the program deadlocks at runtime.
    """
    sim = Simulator()
    handles = {name: sim.resource(name, capacity=cap)
               for name, cap in sorted(program.capacities.items())}

    def gen(proc: ProcSpec) -> ProcessGen:
        for step in proc.steps:
            if isinstance(step, AcquireStep):
                yield Acquire(handles[step.resource])
            elif isinstance(step, ReleaseStep):
                yield Release(handles[step.resource])
            elif isinstance(step, WorkStep):
                yield Timeout(step.duration)
            else:
                yield WaitAll(step.waits_on)

    for proc in program.procs:
        sim.add_process(proc.name, gen(proc))
    sim.run(until=until)
    return sim
