"""Static analysis of the paper's scenarios: bounds without running.

:func:`analyze_scenario` compiles a flag, applies a scenario's
decomposition, and derives everything the classroom could know *before*
anyone picks up a marker:

* a sound **speedup bound** — ``min(active workers, implement
  instances)``: at any instant a stroke occupies one worker and one
  implement, so realized parallelism (busy time / makespan) can never
  exceed either count;
* the flag DAG's **work/span** numbers and the work-span-law ideal
  speedup ceiling;
* **load-imbalance** lower bounds from the partition's weighted
  per-worker loads;
* per-implement **contention** pressure and the bottleneck implement;
* **deadlock** analysis of the acquire/release order the partition
  implies (via :mod:`repro.analyze.waitgraph`), including the hoarding
  + rotated-order configuration that genuinely deadlocks; and
* **fault-plan validation** against the run's roster and palette.

Everything lands in one :class:`~repro.analyze.report.AnalysisReport`.
"""

from __future__ import annotations

from itertools import groupby
from typing import Dict, List, Optional, Tuple

from ..depgraph.flag_dags import flag_dag
from ..faults.plan import FaultPlan
from ..flags.compiler import compile_flag
from ..flags.decompose import DecompositionError, Partition, scenario_partition
from ..flags.spec import FlagSpec, PaintOp
from ..grid.palette import Color
from ..schedule.pipeline import rotate_color_order
from ..schedule.runner import AcquirePolicy, marker_name
from .faultcheck import check_fault_plan
from .report import AnalysisError, AnalysisReport, Issue, error
from .waitgraph import (
    AcquireStep,
    ProcSpec,
    ReleaseStep,
    Step,
    WaitProgram,
    WorkStep,
    analyze_wait_program,
)

#: Generous per-weight-unit upper bound (simulated seconds) used to
#: estimate a run's horizon for the advisory fault-past-horizon check.
#: Stroke service times are a few seconds per weight unit; the padding
#: keeps the warning quiet for any plausible plan and loud only for
#: events scheduled far past the end of even a sequential run.
HORIZON_SECONDS_PER_WEIGHT = 30.0


def worker_name(index: int) -> str:
    """Canonical process name for the ``index``-th active worker."""
    return f"worker{index}"


def wait_program_from_partition(
    partition: Partition,
    *,
    copies: int = 1,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    hoard: bool = False,
) -> WaitProgram:
    """Compile a partition's implement traffic into a wait program.

    Mirrors :func:`~repro.schedule.runner.paint_worker`'s acquire order:
    under HOLD_COLOR_RUN a worker keeps an implement through a run of
    same-color strokes and swaps at color boundaries; under
    RELEASE_PER_STROKE every run is bracketed by its own
    acquire/release, so the worker never holds two implements and
    cannot participate in a hold-and-wait cycle.

    ``hoard=True`` models the greedy student who grabs the *next*
    implement before letting go of the current one — the acquire and
    release at each color boundary swap places.  That single inversion
    is what creates the Coffman hold-and-wait condition; combined with
    :func:`~repro.schedule.pipeline.rotate_color_order` it produces a
    real circular wait (the analyzer's seeded deadlock example).

    Work durations are the summed stroke complexities of each run, so
    the program is deterministic and engine-executable for parity tests.
    """
    procs: List[ProcSpec] = []
    colors = sorted({op.color for op in partition.program.ops}, key=int)
    active = [(i, ops) for i, ops in enumerate(partition.assignments) if ops]
    for slot, (_, ops) in enumerate(active):
        steps: List[Step] = []
        held: Optional[str] = None
        for color, run in groupby(ops, key=lambda op: op.color):
            res = marker_name(color)
            weight = sum(op.complexity for op in run)
            if held != res:
                if hoard:
                    steps.append(AcquireStep(res))
                    if held is not None:
                        steps.append(ReleaseStep(held))
                else:
                    if held is not None:
                        steps.append(ReleaseStep(held))
                    steps.append(AcquireStep(res))
                held = res
            steps.append(WorkStep(weight))
            if policy is AcquirePolicy.RELEASE_PER_STROKE:
                steps.append(ReleaseStep(res))
                held = None
        if held is not None:
            steps.append(ReleaseStep(held))
        procs.append(ProcSpec(name=worker_name(slot), steps=tuple(steps)))
    return WaitProgram(
        procs=tuple(procs),
        capacities={marker_name(c): copies for c in colors},
    )


def _load_section(active_ops: List[Tuple[int, Tuple[PaintOp, ...]]],
                  ) -> Dict[str, object]:
    """Weighted per-worker loads, imbalance, and the makespan floor."""
    loads = [sum(op.complexity for op in ops) for _, ops in active_ops]
    mean = sum(loads) / len(loads)
    return {
        "per_worker": [round(x, 6) for x in loads],
        "imbalance": round(max(loads) / mean, 6) if mean > 0 else 1.0,
        "makespan_lower_bound_weight": round(max(loads), 6),
    }


def _contention_section(
    active_ops: List[Tuple[int, Tuple[PaintOp, ...]]],
    colors: List[Color],
    copies: int,
) -> Dict[str, object]:
    """Per-implement demand pressure and the bottleneck implement."""
    per: List[Dict[str, object]] = []
    for color in colors:
        res = marker_name(color)
        demand = 0.0
        workers = 0
        for _, ops in active_ops:
            w = sum(op.complexity for op in ops if op.color is color)
            if w > 0:
                workers += 1
                demand += w
        per.append({
            "resource": res,
            "workers": workers,
            "demand_weight": round(demand, 6),
            "copies": copies,
            "serial_bound_weight": round(demand / copies, 6),
        })
    per.sort(key=lambda e: e["resource"])
    bottleneck = max(per, key=lambda e: (e["serial_bound_weight"],
                                         e["resource"]))
    return {"per_implement": per, "bottleneck": bottleneck["resource"]}


def analyze_scenario(
    spec: FlagSpec,
    scenario: int,
    *,
    team_size: int = 4,
    copies: int = 1,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    hoard: bool = False,
    rotate: bool = False,
) -> AnalysisReport:
    """Statically verify one flag × scenario configuration.

    Args:
        spec: the flag to analyze.
        scenario: core scenario number (1-4).
        team_size: students on the team; must cover the scenario's
            active workers or the report carries a ``team_too_small``
            ERROR (the same condition that raises
            :class:`~repro.agents.team.TeamError` at runtime).
        copies: duplicate implements issued per color.
        policy: implement acquisition policy to model.
        rows, cols: optional compile-time grid override.
        fault_plan: optional plan to vet against this run's shape.
        hoard: model acquire-before-release at color boundaries.
        rotate: model :func:`~repro.schedule.pipeline.rotate_color_order`.

    Returns:
        The full :class:`~repro.analyze.report.AnalysisReport`;
        ``report.ok`` is False iff an ERROR-severity issue was found.

    Raises:
        AnalysisError: when the configuration cannot even be modeled
            (scenario outside 1-4, or a decomposition the flag does not
            support).
    """
    program = compile_flag(spec, rows, cols)
    try:
        partition = scenario_partition(program, scenario)
    except DecompositionError as exc:
        raise AnalysisError(str(exc)) from exc
    if rotate:
        partition = rotate_color_order(partition)

    active_ops = [(i, ops) for i, ops in enumerate(partition.assignments)
                  if ops]
    n_active = len(active_ops)
    colors = sorted({op.color for op in program.ops}, key=int)
    total_implements = len(colors) * copies

    issues: List[Issue] = []
    if team_size < n_active:
        issues.append(error(
            "team_too_small",
            f"scenario {scenario} needs {n_active} colorers, team has "
            f"{team_size}",
            subject=f"scenario{scenario}"))

    wait_program = wait_program_from_partition(
        partition, copies=copies, policy=policy, hoard=hoard)
    wait_issues, cycle = analyze_wait_program(wait_program)
    issues.extend(wait_issues)

    dag = flag_dag(spec, rows, cols)
    span, path = dag.critical_path()
    dag_section = {
        "work": round(dag.total_work(), 6),
        "span": round(span, 6),
        "ideal_speedup_bound": round(dag.ideal_speedup_bound(), 6),
        "critical_path": list(path),
        "max_parallelism": dag.max_parallelism(),
    }

    load_section = _load_section(active_ops)
    contention_section = _contention_section(active_ops, colors, copies)

    if fault_plan is not None and not fault_plan.is_empty:
        total_weight = sum(op.complexity for op in program.ops)
        horizon = total_weight * HORIZON_SECONDS_PER_WEIGHT
        issues.extend(check_fault_plan(
            fault_plan, n_workers=n_active, colors=colors, horizon=horizon))

    return AnalysisReport(
        flag=spec.name,
        scenario=scenario,
        team_size=team_size,
        copies=copies,
        policy=policy.value,
        hoard=hoard,
        rotated=rotate,
        n_active_workers=n_active,
        total_implements=total_implements,
        speedup_bound=float(min(n_active, total_implements)),
        dag=dag_section,
        load=load_section,
        contention=contention_section,
        deadlock_cycle=cycle,
        issues=tuple(issues),
    )
