"""Analysis reports: typed issues and a canonical-JSON result envelope.

The static analyzer never *runs* anything, so everything it learns fits
in a plain data structure: a list of typed :class:`Issue` findings plus
the numeric bounds the analysis derived.  :class:`AnalysisReport`
serializes to canonical JSON — sorted keys, compact separators, the
same convention :mod:`repro.serve.protocol` uses — so reports are
byte-comparable in tests and cacheable by content address.

Severity semantics match the pre-flight gates: ``ERROR`` findings make
a configuration statically invalid (the sweep executor and the serve
admission path refuse it before dispatch); ``WARNING`` findings are
advisory (the run proceeds, the report records the concern).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class AnalysisError(Exception):
    """Raised when an analysis cannot be performed at all (bad inputs)."""


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ERROR: the configuration cannot execute correctly — deadlock cycle,
    unsatisfiable wait, fault plan naming a nonexistent target.  Gates
    refuse the work.

    WARNING: the configuration executes but something is off — a fault
    scheduled past the estimated horizon, a degenerate partition.  Gates
    let the work through; the report keeps the note.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One analysis finding.

    Attributes:
        code: stable machine-readable identifier (``"deadlock_cycle"``,
            ``"fault_unknown_worker"``, ...).
        severity: :class:`Severity` of the finding.
        message: human-readable detail, naming the offending subject
            (the cycle path, the worker index, the implement color).
        subject: the thing the finding is about — a process name, a
            resource name, a fault index — for programmatic grouping.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, stable field set."""
        return {"code": self.code, "severity": self.severity.value,
                "message": self.message, "subject": self.subject}


def error(code: str, message: str, subject: str = "") -> Issue:
    """Shorthand for an ERROR-severity :class:`Issue`."""
    return Issue(code=code, severity=Severity.ERROR, message=message,
                 subject=subject)


def warning(code: str, message: str, subject: str = "") -> Issue:
    """Shorthand for a WARNING-severity :class:`Issue`."""
    return Issue(code=code, severity=Severity.WARNING, message=message,
                 subject=subject)


def canonical_dumps(body: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes: sorted keys, compact separators.

    The same encoding convention as ``repro.serve.protocol.dumps`` —
    duplicated here rather than imported because ``repro.serve`` imports
    this package for its admission gate, and the dependency must point
    in one direction only.
    """
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


#: Version stamp carried by every serialized report; bump on breaking
#: changes to the report's field structure.
ANALYSIS_VERSION = 1


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static analyzer concluded about one configuration.

    Attributes:
        flag: catalog flag name.
        scenario: core scenario number (1-4).
        team_size: colorers on the team the configuration names.
        copies: duplicate implements issued per color.
        policy: acquisition policy name (``"HOLD_COLOR_RUN"`` ...).
        hoard: whether the analysis modeled hoarding students (acquire
            the next implement before releasing the current one).
        rotated: whether the analysis modeled the rotated color order
            (:func:`repro.schedule.pipeline.rotate_color_order`).
        n_active_workers: workers with a non-empty assignment.
        total_implements: implement instances available (colors x copies).
        speedup_bound: sound static ceiling on realized parallelism for
            this scenario run: ``min(n_active_workers, total_implements)``
            — at any instant a stroke occupies one worker and one
            implement, so busy-time/makespan can never exceed it.
        dag: work-span analysis of the flag's layer dependency graph:
            ``work``, ``span``, ``ideal_speedup_bound`` (work/span law),
            ``critical_path`` (task names), ``max_parallelism``.
        load: per-worker weighted loads, ``imbalance`` (max/mean) and
            ``makespan_lower_bound_weight`` (max worker load — no
            schedule finishes faster than its busiest worker, in stroke
            weight units).
        contention: per-implement demand: worker count, total demanded
            weight, copies, and ``serial_bound_weight`` (demand/copies —
            a lower bound on makespan contributed by that implement);
            ``bottleneck`` names the worst one.
        deadlock_cycle: alternating ``[p, via, p, ..., p]`` wait cycle
            (the :func:`repro.sim.find_wait_cycle` format) or ``[]``.
        issues: all findings, errors first, construction order otherwise.
    """

    flag: str
    scenario: int
    team_size: int
    copies: int
    policy: str
    hoard: bool
    rotated: bool
    n_active_workers: int
    total_implements: int
    speedup_bound: float
    dag: Dict[str, Any]
    load: Dict[str, Any]
    contention: Dict[str, Any]
    deadlock_cycle: List[str] = field(default_factory=list)
    issues: Tuple[Issue, ...] = ()

    @property
    def errors(self) -> List[Issue]:
        """Findings that make the configuration statically invalid."""
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Issue]:
        """Advisory findings."""
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether the configuration passed (no ERROR findings)."""
        return not self.errors

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form, stable field set, version-stamped."""
        return {
            "analysis_version": ANALYSIS_VERSION,
            "flag": self.flag,
            "scenario": self.scenario,
            "team_size": self.team_size,
            "copies": self.copies,
            "policy": self.policy,
            "hoard": self.hoard,
            "rotated": self.rotated,
            "n_active_workers": self.n_active_workers,
            "total_implements": self.total_implements,
            "speedup_bound": self.speedup_bound,
            "dag": self.dag,
            "load": self.load,
            "contention": self.contention,
            "deadlock_cycle": list(self.deadlock_cycle),
            "ok": self.ok,
            "issues": [i.to_dict() for i in self.issues],
        }

    def to_json(self) -> bytes:
        """Canonical JSON bytes of :meth:`to_dict` (byte-stable)."""
        return canonical_dumps(self.to_dict())

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AnalysisReport":
        """Rebuild a report from :meth:`to_dict` output.

        Raises:
            AnalysisError: on a version mismatch or missing fields.
        """
        version = d.get("analysis_version")
        if version != ANALYSIS_VERSION:
            raise AnalysisError(
                f"report version {version!r} != {ANALYSIS_VERSION}")
        try:
            issues = tuple(
                Issue(code=i["code"], severity=Severity(i["severity"]),
                      message=i["message"], subject=i.get("subject", ""))
                for i in d["issues"]
            )
            return cls(
                flag=d["flag"], scenario=d["scenario"],
                team_size=d["team_size"], copies=d["copies"],
                policy=d["policy"], hoard=d["hoard"], rotated=d["rotated"],
                n_active_workers=d["n_active_workers"],
                total_implements=d["total_implements"],
                speedup_bound=d["speedup_bound"],
                dag=d["dag"], load=d["load"], contention=d["contention"],
                deadlock_cycle=list(d["deadlock_cycle"]), issues=issues,
            )
        except (KeyError, ValueError) as exc:
            raise AnalysisError(f"malformed report dict: {exc}") from exc

    def format(self) -> str:
        """Multi-line human-readable rendering (CLI text output)."""
        lines = [
            f"{self.flag} scenario {self.scenario}: "
            f"{'ok' if self.ok else 'INVALID'}",
            f"  workers        : {self.n_active_workers} active "
            f"(team of {self.team_size}), "
            f"{self.total_implements} implement(s)",
            f"  speedup bound  : {self.speedup_bound:.2f}x "
            f"(min of workers and implements)",
            f"  work-span      : work {self.dag['work']:.0f}, "
            f"span {self.dag['span']:.0f} -> "
            f"ideal {self.dag['ideal_speedup_bound']:.2f}x",
            f"  load imbalance : {self.load['imbalance']:.2f} "
            f"(makespan >= {self.load['makespan_lower_bound_weight']:.0f} "
            f"weight units)",
        ]
        bottleneck = self.contention.get("bottleneck")
        if bottleneck:
            per = {e["resource"]: e
                   for e in self.contention["per_implement"]}
            b = per[bottleneck]
            lines.append(
                f"  contention     : bottleneck {bottleneck} "
                f"({b['workers']} workers want {b['demand_weight']:.0f} "
                f"weight through {b['copies']} cop"
                f"{'y' if b['copies'] == 1 else 'ies'})")
        if self.deadlock_cycle:
            from ..sim.engine import format_wait_cycle
            lines.append(
                f"  deadlock       : "
                f"{format_wait_cycle(self.deadlock_cycle)}")
        else:
            lines.append("  deadlock       : none possible "
                         "(no hold-and-wait cycle)")
        for issue in self.issues:
            lines.append(f"  [{issue.severity.value}] "
                         f"{issue.code}: {issue.message}")
        return "\n".join(lines)


def issues_summary(issues: List[Issue]) -> str:
    """One-line roll-up of a finding list for gate error messages."""
    return "; ".join(f"{i.code}: {i.message}" for i in issues)
