"""Static verification of scenarios before any simulation runs.

Two layers (see ``docs/analysis.md``):

* :mod:`repro.analyze.scenarios` — compile a flag + scenario + team
  into bounds the classroom can derive before anyone picks up a
  marker: deadlock cycles (same format as the runtime diagnostic),
  work/span speedup ceilings, load-imbalance floors, contention
  hotspots, and fault-plan validation.
* :mod:`repro.analyze.preflight` — the admission gates the sweep
  executor and the serve service call to refuse statically-invalid
  work before dispatch.

The codebase linter lives in ``tools/simlint.py`` (layer 2 of the
static-analysis subsystem); it shares the philosophy, not this package.
"""

from .report import (
    ANALYSIS_VERSION,
    AnalysisError,
    AnalysisReport,
    Issue,
    Severity,
    canonical_dumps,
    error,
    issues_summary,
    warning,
)
from .waitgraph import (
    AcquireStep,
    BarrierStep,
    HoldPair,
    ProcSpec,
    ReleaseStep,
    Step,
    WaitProgram,
    WorkStep,
    analyze_wait_program,
    execute_wait_program,
    hold_pairs,
)
from .scenarios import (
    HORIZON_SECONDS_PER_WEIGHT,
    analyze_scenario,
    wait_program_from_partition,
    worker_name,
)
from .faultcheck import check_fault_plan
from .preflight import cell_reports, check_cell

__all__ = [
    "ANALYSIS_VERSION",
    "AnalysisError",
    "AnalysisReport",
    "Issue",
    "Severity",
    "canonical_dumps",
    "error",
    "issues_summary",
    "warning",
    "AcquireStep",
    "BarrierStep",
    "HoldPair",
    "ProcSpec",
    "ReleaseStep",
    "Step",
    "WaitProgram",
    "WorkStep",
    "analyze_wait_program",
    "execute_wait_program",
    "hold_pairs",
    "HORIZON_SECONDS_PER_WEIGHT",
    "analyze_scenario",
    "wait_program_from_partition",
    "worker_name",
    "check_fault_plan",
    "cell_reports",
    "check_cell",
]
