"""Static validation of fault plans against a run's shape.

Mirrors the checks :class:`~repro.faults.injector.FaultInjector` makes
at install time — worker indices inside the active roster, implement
failures naming colors the run actually uses — so a bad plan is refused
*before* an executor slot is burned.  The message text intentionally
matches the runtime :class:`~repro.faults.plan.FaultError` wording: the
static report and the runtime exception name the same target the same
way.

Horizon checks are advisory: a fault scheduled after the estimated end
of the run will simply never fire, which is usually a sweep-design
mistake rather than an execution hazard, so it surfaces as a WARNING.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..faults.plan import FaultPlan, ImplementFailure, LateArrival
from ..grid.palette import Color
from .report import Issue, error, warning


def check_fault_plan(
    plan: FaultPlan,
    *,
    n_workers: int,
    colors: Sequence[Color],
    horizon: Optional[float] = None,
) -> List[Issue]:
    """Validate a fault plan against the run it is destined for.

    Args:
        plan: the fault schedule to vet.
        n_workers: active workers in the run (the injector's roster
            size); worker indices must be in ``[0, n_workers)``.
        colors: colors the run issues implements for; implement
            failures must target one of them.
        horizon: estimated run end in simulated seconds; events at or
            past it draw a WARNING.  None skips the horizon check.

    Returns:
        Issues in plan order — ERROR for nonexistent targets (the same
        conditions the runtime injector raises
        :class:`~repro.faults.plan.FaultError` for), WARNING for
        never-firing events.
    """
    issues: List[Issue] = []
    color_set = set(colors)
    for i, fault in enumerate(plan.faults):
        worker = getattr(fault, "worker", None)
        if worker is not None and not 0 <= worker < n_workers:
            issues.append(error(
                "fault_unknown_worker",
                f"fault targets worker {worker}, but the run has only "
                f"{n_workers} active workers",
                subject=f"fault[{i}]"))
        if isinstance(fault, ImplementFailure) and fault.color not in color_set:
            issues.append(error(
                "fault_unknown_implement",
                f"implement failure for {fault.color.name}, but the run "
                f"only uses {sorted(c.name for c in color_set)}",
                subject=f"fault[{i}]"))
        if horizon is not None:
            at = (fault.delay if isinstance(fault, LateArrival)
                  else getattr(fault, "at", None))
            if at is not None and at >= horizon:
                issues.append(warning(
                    "fault_past_horizon",
                    f"{fault.kind.value} at t={at:g} is past the "
                    f"estimated horizon {horizon:g}; it will never fire",
                    subject=f"fault[{i}]"))
    return issues
