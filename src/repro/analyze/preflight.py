"""Pre-flight gates: vet sweep cells and serve requests before dispatch.

The executor and the service both accept fully-specified configurations
(:class:`~repro.sweep.spec.SweepCell`); this module answers "is this
cell statically valid?" without burning an executor slot.  A cell fails
the gate when :func:`~repro.analyze.scenarios.analyze_scenario` finds
an ERROR-severity issue — an undersized team, a provable deadlock, a
fault plan naming a nonexistent target — or when the configuration
cannot even be modeled (unknown flag, unsupported decomposition).

ACTIVITY cells (scenario 0) run all four core scenarios back to back,
so the gate checks each of the four; any scenario's error fails the
cell.
"""

from __future__ import annotations

from typing import List, Optional

from ..flags.decompose import DecompositionError
from ..sweep.spec import ACTIVITY, SweepCell
from .report import AnalysisError, AnalysisReport, Issue, error
from .scenarios import analyze_scenario


def check_cell(cell: SweepCell) -> List[Issue]:
    """Statically validate one sweep cell.

    Returns:
        Every issue found (ERROR and WARNING).  Callers gating on the
        result should refuse the cell iff any issue has ERROR severity;
        warnings ride along for reporting.
    """
    issues: List[Issue] = []
    for report in cell_reports(cell, issues):
        issues.extend(report.issues)
    return issues


def cell_reports(cell: SweepCell,
                 failures: Optional[List[Issue]] = None,
                 ) -> List[AnalysisReport]:
    """Analyze every scenario a cell implies (four for ACTIVITY cells).

    Args:
        cell: the configuration to analyze.
        failures: optional sink for modeling failures (unknown flag,
            unsupported decomposition) — each becomes an ERROR issue
            there instead of an exception, so gates can report them
            structurally.

    Returns:
        One report per analyzable scenario (possibly empty when the
        flag itself is unknown).
    """
    from ..flags import get_flag

    if failures is None:
        failures = []
    try:
        spec = get_flag(cell.flag)
    except KeyError as exc:
        failures.append(error("unknown_flag", str(exc.args[0]),
                              subject=cell.flag))
        return []

    scenarios = range(1, 5) if cell.scenario == ACTIVITY else [cell.scenario]
    reports: List[AnalysisReport] = []
    for n in scenarios:
        try:
            reports.append(analyze_scenario(
                spec, n,
                team_size=cell.team_size,
                copies=cell.copies,
                policy=cell.policy,
                rows=cell.rows,
                cols=cell.cols,
                fault_plan=cell.fault_plan,
            ))
        except (AnalysisError, DecompositionError) as exc:
            failures.append(error(
                "decomposition_failed",
                f"scenario {n}: {exc}",
                subject=f"scenario{n}"))
    return reports
