"""Discrete-event simulation kernel: engine, events, traces."""

from .events import Event, EventKind
from .engine import (
    Acquire,
    Command,
    ProcessGen,
    Release,
    ResourceHandle,
    SimulationError,
    Simulator,
    Timeout,
    WaitAll,
)
from .trace import AgentSummary, Interval, Trace, TraceError
from .export import (
    ExportError,
    event_from_dict,
    event_to_dict,
    export_events,
    export_trace,
    import_events,
    import_trace,
)

__all__ = [
    "Event",
    "EventKind",
    "Acquire",
    "Command",
    "ProcessGen",
    "Release",
    "ResourceHandle",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WaitAll",
    "AgentSummary",
    "Interval",
    "Trace",
    "TraceError",
    "ExportError",
    "event_from_dict",
    "event_to_dict",
    "export_events",
    "export_trace",
    "import_events",
    "import_trace",
]
