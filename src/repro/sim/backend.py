"""The engine-backend contract: one trial-execution interface, N engines.

The trial-execution path used to be a single implementation — the
event-loop :class:`~repro.sim.engine.Simulator` driven once per trial by
:func:`repro.sweep.executor.run_trial`.  This module names that path the
**reference backend** and defines the seam along which faster engines
plug in.  The first alternative is the structure-of-arrays numpy engine
in :mod:`repro.sim.vector`, which advances every trial of a sweep cell
simultaneously.

The contract
------------

A backend executes sweep *tasks*: the JSON-safe ``(cell, trial)`` dicts
:func:`repro.sweep.executor.run_sweep` builds (see
:func:`repro.sweep.executor.run_trial`).  Every backend must honor the
same two guarantees the rest of the stack is built on:

1. **Seed identity.**  Trial ``t`` of a cell draws from the stream
   ``trial_seed_sequences(seed, n_trials, cell_key=...)[t]`` — the
   policy in :mod:`repro.sweep.seeding` — and consumes it in exactly
   the order the reference engine would, so the *metrics* of trial
   ``t`` are identical bit for bit across backends.
2. **Purity.**  A task's result is a function of the task dict alone —
   not of which backend ran it in which process at what batch size —
   so caching, retries, hedging, and work stealing stay sound.

What backends may differ on is the *payload shape*: the reference
backend emits full event traces; the vector backend emits metric-only
payloads (no ``"trace"`` key).  That is why a cell's cache address
folds in the backend whenever it is not the reference one (see
:func:`repro.sweep.executor.cell_address`) — the two payload families
never collide in the cache.

Selection
---------

Callers request ``"reference"``, ``"vector"``, or ``"auto"``.  ``auto``
resolves per cell: vector when the cell is expressible, otherwise
reference, with the reason logged on the ``repro.sim.backend`` logger.
An *explicit* ``"vector"`` request for an inexpressible cell raises
:class:`BackendError` instead — silent fallback is only for ``auto``.
The vector engine cannot express fault plans (kernel-level interrupts)
or attached observers (vector runs produce no event stream); those
cells always run on the reference engine.

This module imports nothing heavy at module level so that
``repro.sim`` can re-export it without creating import cycles; the
executor and vector engine load lazily inside methods.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Mapping, Optional

LOG = logging.getLogger("repro.sim.backend")

#: Concrete engines, by name.
BACKEND_NAMES = ("reference", "vector")

#: What ``--backend`` accepts: the engines plus per-cell resolution.
BACKEND_CHOICES = ("reference", "vector", "auto")


class BackendError(Exception):
    """An unknown backend name, or an explicit request a backend refuses."""


def vector_unsupported_reason(cell: Mapping[str, Any], *,
                              observe: bool = False) -> Optional[str]:
    """Why the vector engine cannot run a cell — or ``None`` if it can.

    Args:
        cell: a cell key_dict (:meth:`repro.sweep.spec.SweepCell.key_dict`).
        observe: whether the run would attach an observer.
    """
    if observe:
        return ("an observer is attached, and vector runs produce no "
                "event stream to observe")
    if cell.get("faults") is not None:
        label = cell.get("fault_label") or "unlabeled"
        return (f"the cell carries a fault plan ({label!r}), which needs "
                f"the reference engine's kernel interrupts")
    return None


def resolve_backend(requested: str, cell: Mapping[str, Any], *,
                    observe: bool = False) -> str:
    """Resolve a backend request to a concrete engine for one cell.

    ``"reference"`` and ``"vector"`` are taken literally; ``"auto"``
    picks vector when the cell is expressible and otherwise falls back
    to reference, logging the reason at INFO on ``repro.sim.backend``.

    Raises:
        BackendError: for names outside :data:`BACKEND_CHOICES`, and
            for an explicit ``"vector"`` request on a cell the vector
            engine cannot express (fault plan or observer attached).
    """
    if requested not in BACKEND_CHOICES:
        raise BackendError(
            f"unknown backend {requested!r}; choose from "
            f"{list(BACKEND_CHOICES)}")
    if requested == "reference":
        return "reference"
    reason = vector_unsupported_reason(cell, observe=observe)
    if reason is None:
        return "vector"
    if requested == "vector":
        raise BackendError(
            f"vector backend cannot run cell "
            f"{cell.get('flag')!r}/scenario {cell.get('scenario')}: "
            f"{reason}")
    LOG.info("auto backend: falling back to reference for cell %r "
             "scenario %s: %s", cell.get("flag"), cell.get("scenario"),
             reason)
    return "reference"


class EngineBackend:
    """One trial-execution engine behind the backend contract.

    Subclasses implement :meth:`run_trial` (and may override
    :meth:`run_cell` with a batched fast path) and :meth:`supports`.
    """

    #: The registry name of this engine.
    name: str = "abstract"

    def supports(self, cell: Mapping[str, Any], *,
                 observe: bool = False) -> Optional[str]:
        """``None`` when this engine can run the cell, else the reason not."""
        raise NotImplementedError

    def run_trial(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one (cell, trial) task; pure function of the dict."""
        raise NotImplementedError

    def run_cell(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Execute every trial task of one cell, in task order.

        The default just loops :meth:`run_trial`; batched engines
        override this with a whole-cell fast path.
        """
        return [self.run_trial(task) for task in tasks]


class ReferenceBackend(EngineBackend):
    """The event-loop :class:`~repro.sim.engine.Simulator`, one trial at
    a time — the didactic implementation every other engine is pinned
    against."""

    name = "reference"

    def supports(self, cell: Mapping[str, Any], *,
                 observe: bool = False) -> Optional[str]:
        """The reference engine runs everything."""
        return None

    def run_trial(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Delegate to the executor's event-loop trial path."""
        from ..sweep.executor import run_trial
        stripped = {k: v for k, v in task.items() if k != "backend"}
        return run_trial(stripped)


class VectorBackend(EngineBackend):
    """The structure-of-arrays numpy engine (:mod:`repro.sim.vector`)."""

    name = "vector"

    def supports(self, cell: Mapping[str, Any], *,
                 observe: bool = False) -> Optional[str]:
        """Refuses fault plans and observed runs; everything else runs."""
        return vector_unsupported_reason(cell, observe=observe)

    def run_trial(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Run one trial on the vector engine."""
        from .vector import run_vector_trial
        return run_vector_trial(task)

    def run_cell(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run every trial of the cell in one batched pass."""
        from .vector import run_vector_cell
        return run_vector_cell(tasks)


def get_backend(name: str) -> EngineBackend:
    """The engine registered under a concrete backend name.

    ``"auto"`` is deliberately not accepted here: resolution happens
    per cell via :func:`resolve_backend` *before* tasks are built, so
    a task dict always names a concrete engine.

    Raises:
        BackendError: for names outside :data:`BACKEND_NAMES`.
    """
    if name == "reference":
        return ReferenceBackend()
    if name == "vector":
        return VectorBackend()
    raise BackendError(
        f"unknown backend {name!r}; concrete backends: "
        f"{list(BACKEND_NAMES)}")
