"""Typed event records emitted during a simulation run.

Every observable action in the classroom simulation — a stroke starting or
finishing, an implement being requested, granted or released, a processor
finishing its task list — is logged as an :class:`Event` with the simulated
timestamp.  The trace module aggregates these into timelines and metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class EventKind(enum.Enum):
    """The vocabulary of things that can happen during a run."""

    PROCESS_START = "process_start"
    PROCESS_DONE = "process_done"
    PROCESS_KILLED = "process_killed"
    STROKE_START = "stroke_start"
    STROKE_END = "stroke_end"
    RESOURCE_REQUEST = "resource_request"
    RESOURCE_ACQUIRE = "resource_acquire"
    RESOURCE_RELEASE = "resource_release"
    RESOURCE_FAILED = "resource_failed"
    RESOURCE_REPAIRED = "resource_repaired"
    HANDOFF = "handoff"
    FAULT = "fault"
    FAULT_INJECTED = "fault_injected"
    STALL = "stall"
    OP_REASSIGNED = "op_reassigned"
    OP_ABANDONED = "op_abandoned"
    NOTE = "note"


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped occurrence.

    Ordered by ``(time, seq)`` so identical-time events keep their emission
    order — the determinism guarantee of the engine.

    Attributes:
        time: simulated seconds since the scenario started.
        seq: global emission counter (ties broken deterministically).
        kind: what happened.
        agent: which processor/student it happened to (None for global).
        data: kind-specific payload (cell, color, resource name, ...).
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    agent: Optional[str] = field(compare=False, default=None)
    data: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"t={self.time:8.2f}", self.kind.value]
        if self.agent:
            bits.append(self.agent)
        if self.data:
            bits.append(str(self.data))
        return "  ".join(bits)


#: Events that mark the boundaries of "useful work" for utilization math.
WORK_EVENTS: Tuple[EventKind, EventKind] = (
    EventKind.STROKE_START,
    EventKind.STROKE_END,
)

#: Events that mark waiting on a shared implement.
WAIT_EVENTS: Tuple[EventKind, EventKind] = (
    EventKind.RESOURCE_REQUEST,
    EventKind.RESOURCE_ACQUIRE,
)
