"""Post-run analysis of an event log: timelines, waits, utilization, Gantt.

A :class:`Trace` wraps the flat event list a :class:`~repro.sim.engine.
Simulator` produced and answers the questions the classroom debrief asks:
how long did each scenario take, who was busy when, how long did processors
wait for shared implements, how well-balanced was the work?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .events import Event, EventKind


class TraceError(Exception):
    """Raised on malformed event logs (unbalanced start/end pairs, ...)."""


@dataclass(frozen=True)
class Interval:
    """A labeled time interval on one agent's timeline."""

    agent: str
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.end - self.start


@dataclass
class AgentSummary:
    """Aggregate time accounting for one processor.

    ``busy`` is stroke time, ``waiting`` is time blocked on implements,
    ``idle`` is everything else between the agent's first start and the
    run's makespan (including pipeline fill/drain time).
    """

    agent: str
    strokes: int
    busy: float
    waiting: float
    finish: float
    idle: float

    @property
    def utilization(self) -> float:
        """busy / finish — the fraction of the run the agent did real work."""
        return self.busy / self.finish if self.finish > 0 else 0.0


class Trace:
    """Structured view over a simulation's event list."""

    def __init__(self, events: Sequence[Event]) -> None:
        self.events: List[Event] = sorted(events)
        self._strokes: Optional[List[Interval]] = None
        self._waits: Optional[List[Interval]] = None

    # -- raw access ----------------------------------------------------------
    def of_kind(self, kind: EventKind) -> List[Event]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def agents(self) -> List[str]:
        """Every agent that appears in the log, sorted."""
        return sorted({e.agent for e in self.events if e.agent is not None})

    def makespan(self) -> float:
        """Time of the last event (0.0 for an empty log)."""
        return self.events[-1].time if self.events else 0.0

    def finish_time(self, agent: str) -> float:
        """The agent's PROCESS_DONE time.

        Raises:
            TraceError: if the agent never finished.
        """
        for e in self.events:
            if e.kind == EventKind.PROCESS_DONE and e.agent == agent:
                return e.time
        raise TraceError(f"agent {agent!r} has no PROCESS_DONE event")

    # -- stroke timeline -----------------------------------------------------
    def stroke_intervals(self) -> List[Interval]:
        """Paired STROKE_START/STROKE_END intervals per agent, time order.

        Raises:
            TraceError: on an END without a matching START (per agent).
        """
        if self._strokes is not None:
            return self._strokes
        open_start: Dict[str, Event] = {}
        out: List[Interval] = []
        for e in self.events:
            if e.kind == EventKind.STROKE_START:
                if e.agent in open_start:
                    raise TraceError(f"nested stroke for {e.agent!r} at {e.time}")
                open_start[e.agent] = e
            elif e.kind == EventKind.STROKE_END:
                try:
                    s = open_start.pop(e.agent)
                except KeyError:
                    raise TraceError(
                        f"STROKE_END without START for {e.agent!r} at {e.time}"
                    ) from None
                label = str(s.data.get("color", s.data.get("label", "stroke")))
                out.append(Interval(e.agent, s.time, e.time, label))
        if open_start:
            raise TraceError(f"unclosed strokes: {sorted(open_start)}")
        self._strokes = out
        return out

    def wait_intervals(self) -> List[Interval]:
        """REQUEST→ACQUIRE intervals (time spent queued for an implement).

        Zero-length waits (immediately granted requests) are included so
        contention statistics can count total requests.
        """
        if self._waits is not None:
            return self._waits
        pending: Dict[Tuple[str, str], Event] = {}
        out: List[Interval] = []
        for e in self.events:
            if e.kind == EventKind.RESOURCE_REQUEST:
                key = (e.agent or "", str(e.data.get("resource")))
                pending[key] = e
            elif e.kind == EventKind.RESOURCE_ACQUIRE:
                key = (e.agent or "", str(e.data.get("resource")))
                req = pending.pop(key, None)
                if req is None:
                    raise TraceError(
                        f"ACQUIRE without REQUEST: {e.agent!r}/{key[1]} at {e.time}"
                    )
                out.append(Interval(e.agent or "", req.time, e.time, key[1]))
        self._waits = out
        return out

    # -- aggregates ------------------------------------------------------------
    def busy_time(self, agent: str) -> float:
        """Total stroke time for one agent."""
        return sum(i.duration for i in self.stroke_intervals()
                   if i.agent == agent)

    def waiting_time(self, agent: str) -> float:
        """Total implement-queue time for one agent."""
        return sum(i.duration for i in self.wait_intervals()
                   if i.agent == agent)

    def stroke_count(self, agent: str) -> int:
        """Number of cells this agent colored."""
        return sum(1 for i in self.stroke_intervals() if i.agent == agent)

    def summaries(self) -> List[AgentSummary]:
        """Per-agent time accounting against the run makespan.

        Only agents that painted or waited are included (timer students and
        pure observers have no strokes and are omitted).
        """
        strokes = self.stroke_intervals()
        active = sorted({i.agent for i in strokes}
                        | {i.agent for i in self.wait_intervals()})
        out = []
        for a in active:
            busy = self.busy_time(a)
            waiting = self.waiting_time(a)
            try:
                finish = self.finish_time(a)
            except TraceError:
                finish = self.makespan()
            out.append(AgentSummary(
                agent=a,
                strokes=self.stroke_count(a),
                busy=busy,
                waiting=waiting,
                finish=finish,
                idle=max(0.0, finish - busy - waiting),
            ))
        return out

    def total_wait_fraction(self) -> float:
        """Waiting time as a fraction of total (busy + waiting) time.

        The headline contention number: near zero for scenarios 1-3, large
        for scenario 4 with single shared implements.
        """
        busy = sum(i.duration for i in self.stroke_intervals())
        wait = sum(i.duration for i in self.wait_intervals())
        denom = busy + wait
        return wait / denom if denom > 0 else 0.0

    def resource_holders_timeline(self, resource: str) -> List[Interval]:
        """ACQUIRE→RELEASE holding intervals for one implement."""
        pending: Dict[str, Event] = {}
        out: List[Interval] = []
        for e in self.events:
            if str(e.data.get("resource")) != resource:
                continue
            if e.kind == EventKind.RESOURCE_ACQUIRE:
                pending[e.agent or ""] = e
            elif e.kind == EventKind.RESOURCE_RELEASE:
                acq = pending.pop(e.agent or "", None)
                if acq is None:
                    raise TraceError(
                        f"RELEASE without ACQUIRE: {e.agent!r}/{resource}"
                    )
                out.append(Interval(e.agent or "", acq.time, e.time, resource))
        return out

    def resource_utilization(self, resource: str) -> float:
        """Fraction of the makespan the implement was in someone's hand."""
        span = self.makespan()
        if span <= 0:
            return 0.0
        held = sum(i.duration for i in self.resource_holders_timeline(resource))
        return held / span

    def handoffs(self) -> List[Event]:
        """Explicit implement handoff events (pipelined rotation strategy)."""
        return self.of_kind(EventKind.HANDOFF)

    def faults(self) -> List[Event]:
        """Fault-injection events (crayon breakage and similar)."""
        return self.of_kind(EventKind.FAULT)
