"""Trace serialization: JSON-lines export/import of event logs.

Lets a simulated session be archived, diffed, or analyzed outside the
process (the equivalent of keeping the classroom's raw stopwatch sheets).
Round-trips exactly: ``import_events(export_events(evs)) == evs``.
"""

from __future__ import annotations

import io
import json
from typing import Iterable, List, TextIO, Union

from .events import Event, EventKind
from .trace import Trace


class ExportError(Exception):
    """Raised for malformed trace files."""


def event_to_dict(event: Event) -> dict:
    """One event as a JSON-safe dict."""
    return {
        "time": event.time,
        "seq": event.seq,
        "kind": event.kind.value,
        "agent": event.agent,
        "data": dict(event.data),
    }


def event_from_dict(d: dict) -> Event:
    """Rebuild an event from its dict form.

    Raises:
        ExportError: on missing fields or unknown event kinds.
    """
    try:
        kind = EventKind(d["kind"])
        return Event(time=float(d["time"]), seq=int(d["seq"]), kind=kind,
                     agent=d.get("agent"), data=dict(d.get("data", {})))
    except (KeyError, ValueError) as exc:
        raise ExportError(f"bad event record {d!r}: {exc}") from exc


def export_events(events: Iterable[Event],
                  fp: Union[TextIO, None] = None) -> str:
    """Serialize events as JSON lines; returns the text (and writes to
    ``fp`` when given)."""
    lines = [json.dumps(event_to_dict(e), sort_keys=True) for e in events]
    text = "\n".join(lines) + ("\n" if lines else "")
    if fp is not None:
        fp.write(text)
    return text


def import_events(source: Union[str, TextIO]) -> List[Event]:
    """Parse JSON-lines text (or a file object) back into events.

    Raises:
        ExportError: on unparseable lines or bad records.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    events: List[Event] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExportError(f"line {lineno}: invalid JSON: {exc}") from exc
        events.append(event_from_dict(d))
    return events


def export_trace(trace: Trace, fp: Union[TextIO, None] = None) -> str:
    """Serialize a whole trace's event list."""
    return export_events(trace.events, fp)


def import_trace(source: Union[str, TextIO]) -> Trace:
    """Load a trace back; all Trace analyses work on the result."""
    return Trace(import_events(source))
