"""The scalar replay path: exact event interleaving without the trimmings.

Runs with implement contention or multi-owner cells cannot be advanced
as batched arithmetic — which worker waits, for how long, and which
stroke lands last on a shared cell all depend on the sampled durations.
For those runs the vector backend replays the *real* generators
(:func:`repro.schedule.runner.paint_worker`, driven by the real team and
RNG stream) on a stripped-down kernel that reproduces the reference
engine's scheduling decisions exactly but skips everything metric
payloads do not need: event logging, observers, traces, interrupt
epochs, and the full :class:`~repro.grid.canvas.Canvas` bookkeeping.

Fidelity notes:

- the heap is keyed ``(time, seq)`` with one shared monotone counter
  for heap pushes and resource-queue entries, preserving the reference
  kernel's relative ordering (log events draw from the same counter
  there, but only *relative* order is ever compared);
- acquire/grant/release semantics are copied verbatim from
  ``Simulator._try_acquire`` / ``_grant_queued`` / ``_do_release``;
- the stub canvas applies last-write-wins color codes in paint-call
  order, which is dispatch (time) order — the only part of the real
  canvas the correctness check reads.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

import numpy as np

from ...agents.team import Team
from ...schedule.runner import marker_name, paint_worker
from ..engine import (
    Acquire,
    ProcessGen,
    Release,
    ResourceHandle,
    SimulationError,
    Timeout,
)
from .plan import RunPlan


class _StubCanvas:
    """The minimal canvas surface ``paint_worker`` and grading touch."""

    def __init__(self, rows: int, cols: int) -> None:
        self.codes = np.zeros((rows, cols), dtype=np.int8)

    def paint(self, cell, color, *, agent=None, time=None,
              coverage=1.0) -> None:
        """Record a stroke: last write wins, like an overpaintable canvas."""
        self.codes[cell] = int(color)

    def matches(self, target: np.ndarray, *,
                ignore_blank_target: bool = True) -> bool:
        """Section V-C grading, mirroring ``Canvas.matches``."""
        if ignore_blank_target:
            care = target != 0
            return bool(np.array_equal(self.codes[care], target[care]))
        return bool(np.array_equal(self.codes, target))


class _MiniKernel:
    """A logging-free event loop with the reference engine's scheduling.

    Supports exactly the command set ``paint_worker`` yields on clean
    runs — :class:`Timeout`, :class:`Acquire`, :class:`Release` — plus
    the ``log``/``now`` surface the worker generator reads.  Reuses the
    real :class:`~repro.sim.engine.ResourceHandle` so FIFO queue and
    capacity semantics are shared code, not a copy.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, str]] = []
        self._seq = itertools.count()
        self._procs: Dict[str, ProcessGen] = {}
        self._done: Dict[str, float] = {}
        self._resources: Dict[str, ResourceHandle] = {}

    def resource(self, name: str, capacity: int = 1) -> ResourceHandle:
        """Create (or fetch) a named shared resource."""
        if name not in self._resources:
            self._resources[name] = ResourceHandle(name, capacity)
        return self._resources[name]

    def add_process(self, name: str, gen: ProcessGen) -> None:
        """Register a process to start at time 0 (insertion order ties)."""
        self._procs[name] = gen
        heapq.heappush(self._heap, (0.0, next(self._seq), name))

    def log(self, kind, agent=None, **data) -> None:
        """Swallow a domain event; replay keeps metrics, not traces."""

    def run(self) -> float:
        """Drive every process to completion; returns the makespan.

        Raises:
            SimulationError: if the heap empties with a process still
                blocked (clean scenario runs never deadlock; this guard
                turns a planner bug into a loud failure).
        """
        while self._heap:
            t, _, name = heapq.heappop(self._heap)
            self.now = t
            self._step(name)
        blocked = sorted(n for n in self._procs if n not in self._done)
        if blocked:
            raise SimulationError(
                f"vector replay deadlocked with {blocked} still blocked")
        return self.now

    def _step(self, name: str) -> None:
        gen = self._procs[name]
        while True:
            try:
                cmd = next(gen)
            except StopIteration:
                self._done[name] = self.now
                return
            if isinstance(cmd, Timeout):
                heapq.heappush(self._heap,
                               (self.now + cmd.delay, next(self._seq), name))
                return
            if isinstance(cmd, Acquire):
                res = cmd.resource
                if (not res.failed and len(res.holders) < res.capacity
                        and not res.queue):
                    res.holders.append(name)
                    continue
                res.queue.append((next(self._seq), name))
                return
            if isinstance(cmd, Release):
                res = cmd.resource
                if name not in res.holders:
                    raise SimulationError(
                        f"{name!r} released {res.name!r} without holding it")
                res.holders.remove(name)
                while (not res.failed and res.queue
                       and len(res.holders) < res.capacity):
                    res.queue.sort()
                    _, waiter = res.queue.pop(0)
                    res.holders.append(waiter)
                    heapq.heappush(self._heap,
                                   (self.now, next(self._seq), waiter))
                continue
            raise SimulationError(
                f"vector replay cannot execute {cmd!r} from {name!r}")


def run_replay_trial(run: RunPlan, team: Team,
                     rng: np.random.Generator) -> Dict[str, object]:
    """Execute one trial of a contended run; returns its metric payload.

    Mirrors :func:`repro.schedule.runner.run_partition` step for step —
    same resource construction order, same worker registration order,
    same shared ``last_holder`` map, same timer measurement — with the
    real ``paint_worker`` generators drawing from ``rng``, so the RNG
    stream advances exactly as the reference engine advances it.
    """
    sim = _MiniKernel()
    canvas = _StubCanvas(run.rows, run.cols)
    resources = {
        c: sim.resource(marker_name(c), capacity=team.kit.copies)
        for c in run.sorted_colors
    }
    last_holder: Dict[str, str] = {}
    students = team.colorers(run.n_active)
    for student, ops in zip(students, run.active_ops):
        sim.add_process(
            student.name,
            paint_worker(sim, student, ops, team, canvas, resources, rng,
                         style=run.style, policy=run.policy,
                         last_holder=last_holder),
        )
    true_makespan = sim.run()
    measured = team.timer.measure(true_makespan, rng)
    return {
        "label": run.label,
        "strategy": run.strategy,
        "n_workers": run.n_active,
        "true_makespan": true_makespan,
        "measured_time": measured,
        "correct": canvas.matches(run.target, ignore_blank_target=True),
    }
