"""The structure-of-arrays batch path: all trials of a run at once.

A contention-free run (see :func:`repro.sim.vector.plan._soa_eligible`)
reduces to pure arithmetic: every worker's strokes execute back to back,
each stroke consumes exactly one standard normal from the trial's RNG
stream, and the stream is shared between workers *in event-dispatch
order* — the worker whose next wakeup is earliest draws next.  This
module replays that arithmetic for a whole batch of trials as numpy
arrays of shape ``(trials, workers, strokes)``.

Bit-identity with the reference engine is load-bearing (it is pinned by
a tier-1 property test across the full catalog), so every floating-point
expression here mirrors the scalar model's operation order exactly:

- ``Generator.standard_normal(n)`` produces the same values and stream
  state as ``n`` scalar draws, so one batched draw per trial covers all
  of a run's lognormal and timer noise;
- ``Generator.lognormal(m, s)`` equals ``math.exp(m + s*z)`` on the
  same stream — but numpy's SIMD ``np.exp`` is *not* bit-identical to
  the libm ``math.exp`` the scalar path uses, so every exponential here
  goes through :func:`_libm_exp` (elementwise libm);
- elementwise float64 ``+ - * /``, ``np.hypot``, and ``np.cumsum``
  (a sequential left fold, unlike pairwise ``np.sum``) match their
  scalar counterparts bit for bit, provided the association order of
  each expression is preserved.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ...agents.team import Team
from .plan import RunPlan


def _libm_exp(a: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp`` (libm), bit-identical to the scalar path.

    ``np.exp`` uses a vectorized polynomial that differs from libm in
    the last ulp for some inputs; those single-bit differences compound
    through makespans and break metric identity, so the batch path pays
    for scalar libm calls instead.
    """
    flat = a.reshape(-1)
    out = np.array([math.exp(v) for v in flat.tolist()], dtype=np.float64)
    return out.reshape(a.shape)


def run_soa_batch(run: RunPlan, teams: Sequence[Team],
                  rngs: Sequence[np.random.Generator]) -> List[Dict[str, object]]:
    """Execute one contention-free run for every trial simultaneously.

    Args:
        run: a plan with ``path == "soa"``.
        teams: one team per trial, already ``begin_scenario()``-reset.
        rngs: the matching per-trial generators, positioned exactly
            where the reference engine's stream would be at run start.

    Returns:
        One metric payload dict per trial, in trial order.  Each team's
        students have their experience counters advanced exactly as a
        reference run would leave them.
    """
    B = len(teams)
    W = run.n_active
    counts = run.counts
    N = int(counts.sum())

    # Per-(trial, worker) student statics, gathered once.
    base = np.empty((B, W))
    sigp = np.empty((B, W))
    wpen = np.empty((B, W))
    wtau = np.empty((B, W))
    frate = np.empty((B, W))
    life0 = np.empty((B, W))
    for b, team in enumerate(teams):
        for w, student in enumerate(team.colorers(W)):
            p = student.profile
            base[b, w] = p.base_cell_time
            sigp[b, w] = p.sigma
            wpen[b, w] = p.warmup_penalty
            wtau[b, w] = p.warmup_tau
            frate[b, w] = p.fatigue_rate
            life0[b, w] = student.lifetime_cells

    # Mean stroke times M[b, w, k]: the scalar model's exact chain
    #   ((((base * speed) * style) * warmup) * fatigue) * complexity
    # with warmup = 1 + penalty * exp(-(lifetime0 + k) / tau) and
    # fatigue = 1 + rate * k  (k = strokes already done this scenario).
    k_idx = np.arange(run.comp.shape[1], dtype=np.float64)
    expo = -(life0[:, :, None] + k_idx[None, None, :]) / wtau[:, :, None]
    warm = 1.0 + wpen[:, :, None] * _libm_exp(expo)
    fat = 1.0 + frate[:, :, None] * k_idx[None, None, :]
    M = base[:, :, None] * run.speed[None, :, :]
    M = M * run.style.time_factor
    M = M * warm
    M = M * fat
    M = M * run.comp[None, :, :]

    # Lognormal noise parameters: sigma = hypot(student, implement),
    # location = -0.5 * sigma * sigma (scalar association order).
    sig = np.hypot(sigp[:, :, None], run.var[None, :, :])
    loc = (-0.5 * sig) * sig

    # One batched draw per trial: N stroke normals + 2 timer normals,
    # identical values and stream state to N+2 scalar draws.
    Z = np.empty((B, N + 2))
    for b, rng in enumerate(rngs):
        Z[b] = rng.standard_normal(N + 2)

    if W == 1:
        arg = loc[:, 0, :] + sig[:, 0, :] * Z[:, :N]
        d = M[:, 0, :] * _libm_exp(arg)
        makespan = np.cumsum(d, axis=1)[:, -1]
    else:
        # Replay the engine's dispatch order: each pending worker has
        # one wakeup in the heap; the earliest wakeup draws the next
        # normal.  At t=0 all wakeups tie and break by insertion order
        # = worker index, which argmin's first-index tie rule matches;
        # later exact-time ties have measure zero under continuous
        # lognormal durations.
        nd = np.zeros((B, W))        # next drawing-dispatch time
        kk = np.zeros((B, W), dtype=np.int64)
        finish = np.zeros((B, W))
        rows = np.arange(B)
        for i in range(N):
            w = np.argmin(nd, axis=1)
            k = kk[rows, w]
            arg = loc[rows, w, k] + sig[rows, w, k] * Z[:, i]
            d = M[rows, w, k] * _libm_exp(arg)
            t = nd[rows, w] + d
            finish[rows, w] = t
            done = k + 1
            kk[rows, w] = done
            nd[rows, w] = np.where(done == counts[w], np.inf, t)
        makespan = finish.max(axis=1)

    # The timer student: measured = max(0, true + (start - stop) jitter),
    # where normal(0, s) on this stream is exactly 0.0 + s*z.
    rs = np.array([team.timer.reaction_sigma for team in teams])
    jitter = (0.0 + rs * Z[:, N]) - (0.0 + rs * Z[:, N + 1])
    measured = np.maximum(0.0, makespan + jitter)

    # Advance experience state the way stroke_time would have.
    for team in teams:
        for w, student in enumerate(team.colorers(W)):
            c = int(counts[w])
            student.lifetime_cells += c
            student.scenario_cells += c

    return [
        {
            "label": run.label,
            "strategy": run.strategy,
            "n_workers": W,
            "true_makespan": float(makespan[b]),
            "measured_time": float(measured[b]),
            "correct": bool(run.correct),
        }
        for b in range(B)
    ]
