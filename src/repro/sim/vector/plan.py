"""Compile a sweep cell into a static vector execution plan.

Everything about a cell that does not depend on the trial — the compiled
paint program, the scenario partitions, per-op complexity/implement
constants, the grading target, and which execution path each run can
take — is computed once here and shared by every trial of the batch.

Two execution paths exist (see :mod:`repro.sim.vector`):

- ``"soa"``: the run is *contention-free* — the active workers' color
  sets are pairwise disjoint (no worker ever waits for or hands off an
  implement), every painted cell has a single owner (the final canvas
  is trial-independent), and no implement can fault mid-stroke.  Such a
  run is a pure sequence of stroke-time draws and can be advanced for
  all trials at once as structure-of-arrays numpy math.
- ``"replay"``: anything else (shared implements, multi-owner cells).
  The run still skips the reference engine's logging/observer machinery
  but must replay the event interleaving per trial
  (:mod:`repro.sim.vector.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...agents.implements import ImplementModel
from ...agents.student import FillStyle
from ...agents.team import ImplementKit
from ...flags import get_flag
from ...flags.compiler import compile_flag
from ...flags.decompose import Partition
from ...flags.spec import FlagSpec, PaintOp, PaintProgram
from ...grid.palette import Color
from ...schedule.runner import AcquirePolicy
from ...schedule.scenario import core_scenarios
from ...sweep.spec import ACTIVITY


@dataclass(frozen=True)
class RunPlan:
    """The static (trial-independent) description of one scenario run.

    Attributes:
        label: the payload label ("scenario1", "scenario1_repeat", ...).
        strategy: the decomposition name of the partition.
        style / policy: the cell's fill style and acquisition policy.
        rows / cols: the compiled program's raster size.
        active_ops: per-worker ordered stroke tuples, non-empty workers
            only, in worker order — exactly what the reference runner
            hands each ``paint_worker``.
        sorted_colors: the program's colors sorted by code, the order
            the reference runner creates implement resources in.
        target: the grading image (``FlagSpec.final_image``).
        path: ``"soa"`` or ``"replay"``.
        counts: (soa) per-worker stroke counts.
        comp / speed / var: (soa) per-(worker, stroke) complexity,
            implement speed factor, and implement variability, padded
            to the widest worker (padding is never read).
        correct: (soa) whether the run reproduces the target — with a
            single owner per cell this is trial-independent.
    """

    label: str
    strategy: str
    style: FillStyle
    policy: AcquirePolicy
    rows: int
    cols: int
    active_ops: Tuple[Tuple[PaintOp, ...], ...]
    sorted_colors: Tuple[Color, ...]
    target: np.ndarray
    path: str
    counts: Optional[np.ndarray] = None
    comp: Optional[np.ndarray] = None
    speed: Optional[np.ndarray] = None
    var: Optional[np.ndarray] = None
    correct: Optional[bool] = None

    @property
    def n_active(self) -> int:
        """Workers that actually color in this run."""
        return len(self.active_ops)

    @property
    def n_draws(self) -> int:
        """Standard normals one trial of this run consumes on the soa
        path: one per stroke plus the timer's two reaction draws."""
        return sum(len(ops) for ops in self.active_ops) + 2


@dataclass(frozen=True)
class CellPlan:
    """A compiled sweep cell: its flag spec, kit shape, and run list."""

    cell: Mapping[str, Any]
    spec: FlagSpec
    kit: ImplementKit
    runs: Tuple[RunPlan, ...]


def _soa_eligible(active_ops: Tuple[Tuple[PaintOp, ...], ...],
                  kit: ImplementKit) -> bool:
    """Whether a run is contention-free enough for the batched path.

    Three conditions, each guarding one way per-trial state could leak
    into the event interleaving or the final canvas:

    - no implement faults (a fault draw would shift the RNG stream and
      insert repair timeouts);
    - pairwise-disjoint worker color sets (no queueing, no handoffs —
      an implement only ever returns to the hand that held it);
    - a single owner per painted cell (the last stroke on a cell is
      then fixed by program order, not by sampled stroke times).
    """
    for ops in active_ops:
        for op in ops:
            if kit.implement_for(op.color).break_prob > 0:
                return False
    seen: set = set()
    for ops in active_ops:
        colors = {op.color for op in ops}
        if colors & seen:
            return False
        seen |= colors
    owner: Dict[Tuple[int, int], int] = {}
    for w, ops in enumerate(active_ops):
        for op in ops:
            if owner.setdefault(op.cell, w) != w:
                return False
    return True


def _final_codes(program: PaintProgram) -> np.ndarray:
    """The canvas a single-owner run always produces.

    With one owner per cell, each worker paints its cells in program
    order, so the last write to every cell is the program-order last
    op — the same fold the sequential painter's algorithm does.
    """
    codes = np.zeros((program.rows, program.cols), dtype=np.int8)
    for op in program.ops:
        codes[op.cell] = int(op.color)
    return codes


def _matches(codes: np.ndarray, target: np.ndarray) -> bool:
    """Section V-C lenient grading: blank target cells may hold anything."""
    care = target != 0
    return bool(np.array_equal(codes[care], target[care]))


def _plan_run(program: PaintProgram, partition: Partition, label: str,
              style: FillStyle, policy: AcquirePolicy, kit: ImplementKit,
              target: np.ndarray) -> RunPlan:
    """Build one RunPlan from a compiled program and its partition."""
    active_ops = tuple(tuple(ops) for ops in partition.assignments if ops)
    sorted_colors = tuple(sorted({op.color for op in program.ops}, key=int))
    if not _soa_eligible(active_ops, kit):
        return RunPlan(label=label, strategy=partition.strategy, style=style,
                       policy=policy, rows=program.rows, cols=program.cols,
                       active_ops=active_ops, sorted_colors=sorted_colors,
                       target=target, path="replay")
    counts = np.array([len(ops) for ops in active_ops], dtype=np.int64)
    width = int(counts.max())
    comp = np.ones((len(active_ops), width), dtype=np.float64)
    speed = np.ones((len(active_ops), width), dtype=np.float64)
    var = np.zeros((len(active_ops), width), dtype=np.float64)
    for w, ops in enumerate(active_ops):
        for k, op in enumerate(ops):
            implement: ImplementModel = kit.implement_for(op.color)
            comp[w, k] = op.complexity
            speed[w, k] = implement.speed_factor
            var[w, k] = implement.variability
    correct = _matches(_final_codes(program), target)
    return RunPlan(label=label, strategy=partition.strategy, style=style,
                   policy=policy, rows=program.rows, cols=program.cols,
                   active_ops=active_ops, sorted_colors=sorted_colors,
                   target=target, path="soa", counts=counts, comp=comp,
                   speed=speed, var=var, correct=correct)


def build_cell_plan(cell: Mapping[str, Any]) -> CellPlan:
    """Compile a cell key-dict into its static vector plan.

    ACTIVITY cells expand to the reference executor's exact run list —
    scenario 1, its repeat, then scenarios 2-4, all at the flag's
    default raster size (``run_core_activity`` never overrides it);
    single-scenario cells honor the cell's rows/cols override.
    """
    spec = get_flag(cell["flag"])
    style = FillStyle[cell["style"]]
    policy = AcquirePolicy[cell["policy"]]
    kit = ImplementKit.uniform(list(spec.colors_used()),
                               copies=cell["copies"])
    scenarios = {s.number: s for s in core_scenarios()}
    if cell["scenario"] == ACTIVITY:
        entries = [(scenarios[1], "scenario1"),
                   (scenarios[1], "scenario1_repeat"),
                   (scenarios[2], "scenario2"),
                   (scenarios[3], "scenario3"),
                   (scenarios[4], "scenario4")]
        program = compile_flag(spec, None, None)
    else:
        s = scenarios[cell["scenario"]]
        entries = [(s, f"scenario{s.number}")]
        program = compile_flag(spec, cell["rows"], cell["cols"])
    target = spec.final_image(program.rows, program.cols)
    runs: List[RunPlan] = []
    for scenario, label in entries:
        partition = scenario.partition(program)
        runs.append(_plan_run(program, partition, label, style, policy,
                              kit, target))
    return CellPlan(cell=dict(cell), spec=spec, kit=kit, runs=tuple(runs))
