"""The vector backend's entry points: run a cell's trials as one batch.

This is the engine behind ``--backend vector``: it compiles the cell
once (:mod:`repro.sim.vector.plan`), derives every trial's RNG stream
from the standard seeding policy (:mod:`repro.sweep.seeding`), builds
the real per-trial teams, and then advances each scenario run for all
trials together — on the structure-of-arrays path when the run is
contention-free, on the stripped scalar replay path otherwise.  Either
way, each run consumes exactly the standard normals the reference
engine would (one per stroke plus two timer draws, plus any handoff /
wait draws on the replay path), so the stream stays aligned across a
mixed soa/replay run sequence and every per-trial metric is identical
to the reference engine's.

Payloads are metric-only — no ``"trace"`` key — which is why vector
results live under distinct cache addresses (see
:func:`repro.sweep.executor.cell_address`).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ...agents.team import make_team
from ...sweep.seeding import trial_seed_sequences
from ..backend import BackendError, vector_unsupported_reason
from .plan import build_cell_plan
from .replay import run_replay_trial
from .soa import run_soa_batch


def run_vector_cell(tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute every given trial task of one cell in a single batch.

    Args:
        tasks: executor-format task dicts (see
            :func:`repro.sweep.executor.run_trial`) that must all name
            the same cell, seed, and trial count; the trial indices may
            be any subset of the batch.

    Returns:
        ``{"trial": t, "runs": {label: payload}}`` dicts in task order,
        with per-trial metrics bit-identical to the reference engine.

    Raises:
        BackendError: on an empty/mixed task list, or a cell the vector
            engine cannot express (fault plan, observer attached).
    """
    if not tasks:
        raise BackendError("run_vector_cell needs at least one task")
    first = tasks[0]
    cell = first["cell"]
    for task in tasks[1:]:
        if (task["cell"] != cell or task["seed"] != first["seed"]
                or task["n_trials"] != first["n_trials"]
                or task["cell_key"] != first["cell_key"]):
            raise BackendError(
                "run_vector_cell tasks must share one (cell, seed, "
                "n_trials) batch")
    observe = any(task.get("observe", False) for task in tasks)
    reason = vector_unsupported_reason(cell, observe=observe)
    if reason is not None:
        raise BackendError(
            f"vector backend cannot run cell {cell.get('flag')!r}/"
            f"scenario {cell.get('scenario')}: {reason}")

    plan = build_cell_plan(cell)
    sequences = trial_seed_sequences(first["seed"], first["n_trials"],
                                     cell_key=first["cell_key"])
    trials = [task["trial"] for task in tasks]
    rngs = [np.random.default_rng(sequences[t]) for t in trials]
    colors = list(plan.spec.colors_used())
    teams = [
        make_team(f"trial{t}", cell["team_size"], rng, colors=colors,
                  copies=cell["copies"])
        for t, rng in zip(trials, rngs)
    ]

    runs_by_trial: List[Dict[str, Dict[str, Any]]] = [{} for _ in trials]
    for run in plan.runs:
        for team in teams:
            team.begin_scenario()
        if run.path == "soa":
            payloads = run_soa_batch(run, teams, rngs)
        else:
            payloads = [run_replay_trial(run, team, rng)
                        for team, rng in zip(teams, rngs)]
        for b, payload in enumerate(payloads):
            runs_by_trial[b][run.label] = payload
    return [{"trial": t, "runs": runs_by_trial[b]}
            for b, t in enumerate(trials)]


def run_vector_trial(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one (cell, trial) task on the vector engine.

    The single-trial convenience over :func:`run_vector_cell` — same
    contract as :func:`repro.sweep.executor.run_trial`, minus the trace.
    """
    return run_vector_cell([task])[0]
