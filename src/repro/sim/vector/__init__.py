"""The structure-of-arrays vector engine behind ``--backend vector``.

Advances every trial of a sweep cell simultaneously while producing
per-trial metrics bit-identical to the reference event-loop engine —
the contract and selection rules live in :mod:`repro.sim.backend`, the
worked guide in ``docs/backends.md``.

Public surface:

- :func:`run_vector_cell` — all trials of one cell as one batch;
- :func:`run_vector_trial` — one executor task (same shape as
  :func:`repro.sweep.executor.run_trial`, minus the trace);
- :func:`build_cell_plan` / :class:`CellPlan` / :class:`RunPlan` — the
  static per-cell compilation the batch paths share.
"""

from .engine import run_vector_cell, run_vector_trial
from .plan import CellPlan, RunPlan, build_cell_plan

__all__ = [
    "CellPlan",
    "RunPlan",
    "build_cell_plan",
    "run_vector_cell",
    "run_vector_trial",
]
