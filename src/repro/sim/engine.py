"""A deterministic generator-based discrete-event simulation engine.

The engine is a minimal SimPy-style kernel, built from scratch: processes
are Python generators that ``yield`` commands (:class:`Timeout`,
:class:`Acquire`, :class:`Release`, :class:`WaitAll`), and the engine owns a
single event heap keyed by ``(time, sequence)``.  Two runs with the same
seed and the same process set produce byte-identical traces; this property
is load-bearing for the reproduction benchmarks and is covered by tests.

Why build one instead of importing SimPy: the environment is offline, the
kernel is ~200 lines, and owning it lets the trace layer log exactly the
classroom-level events we need (strokes, implement handoffs) without
adapter glue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .events import Event, EventKind

#: A simulation process: a generator yielding engine commands.
ProcessGen = Generator["Command", Any, None]


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, double release, ...)."""


class Command:
    """Base class for things a process may yield to the engine."""


@dataclass(frozen=True)
class Timeout(Command):
    """Suspend the process for ``delay`` simulated seconds (>= 0)."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Acquire(Command):
    """Block until the named resource is granted to this process."""

    resource: "ResourceHandle"


@dataclass(frozen=True)
class Release(Command):
    """Give the named resource back (must currently hold it)."""

    resource: "ResourceHandle"


@dataclass(frozen=True)
class WaitAll(Command):
    """Block until every one of the given processes has finished."""

    names: Tuple[str, ...]


class ResourceHandle:
    """A shared, single-holder resource (one drawing implement).

    FIFO grant order: requests are queued in arrival order with ties broken
    by the engine's deterministic sequence counter.  ``capacity`` > 1 models
    a team that was given duplicate implements (the paper's "extra
    resources would reduce contention" remark).
    """

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.holders: List[str] = []
        self.queue: List[Tuple[int, str]] = []  # (arrival seq, process name)

    def held_by(self, process: str) -> bool:
        """Whether the process currently holds one unit of this resource."""
        return process in self.holders

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResourceHandle({self.name!r}, capacity={self.capacity}, "
                f"holders={self.holders}, queued={len(self.queue)})")


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    process: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class Simulator:
    """The event-loop kernel.

    Typical use::

        sim = Simulator()
        red = sim.resource("red_marker")
        sim.add_process("P1", worker_gen(sim, red))
        sim.run()
        print(sim.now, len(sim.events))

    Processes log domain events through :meth:`log`; the kernel itself logs
    PROCESS_START / PROCESS_DONE and all resource traffic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events: List[Event] = []
        self._heap: List[_Scheduled] = []
        self._seq = itertools.count()
        self._procs: Dict[str, ProcessGen] = {}
        self._done: Dict[str, float] = {}
        self._resources: Dict[str, ResourceHandle] = {}
        # dep process name -> processes blocked until it finishes
        self._wait_index: Dict[str, List[str]] = {}
        # blocked process -> set of deps it is still waiting on
        self._pending_deps: Dict[str, set] = {}
        self._started = False

    # -- construction ------------------------------------------------------
    def resource(self, name: str, capacity: int = 1) -> ResourceHandle:
        """Create (or fetch) a named shared resource."""
        if name in self._resources:
            existing = self._resources[name]
            if existing.capacity != capacity:
                raise SimulationError(
                    f"resource {name!r} already exists with capacity "
                    f"{existing.capacity}, asked for {capacity}"
                )
            return existing
        handle = ResourceHandle(name, capacity)
        self._resources[name] = handle
        return handle

    def add_process(self, name: str, gen: ProcessGen,
                    start_at: float = 0.0) -> None:
        """Register a process to begin at ``start_at`` simulated seconds."""
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        if name in self._procs:
            raise SimulationError(f"duplicate process name {name!r}")
        if start_at < 0:
            raise SimulationError(f"negative start time for {name!r}")
        self._procs[name] = gen
        heapq.heappush(
            self._heap, _Scheduled(start_at, next(self._seq), name, "start")
        )

    # -- logging -----------------------------------------------------------
    def log(self, kind: EventKind, agent: Optional[str] = None,
            **data: Any) -> Event:
        """Append a domain event at the current simulated time."""
        ev = Event(time=self.now, seq=next(self._seq), kind=kind,
                   agent=agent, data=data)
        self.events.append(ev)
        return ev

    # -- the loop ----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drive every process to completion (or until the time horizon).

        Returns the final simulation time (the makespan when all processes
        finished).

        Raises:
            SimulationError: on deadlock — processes still blocked on
                resources or waits when the heap empties.
        """
        self._started = True
        while self._heap:
            item = heapq.heappop(self._heap)
            if until is not None and item.time > until:
                self.now = until
                return self.now
            if item.time < self.now:
                raise SimulationError(
                    f"time went backwards: {item.time} < {self.now}"
                )
            self.now = item.time
            name = item.process
            if item.payload == "start":
                self.log(EventKind.PROCESS_START, agent=name)
            self._step(name, send_value=None)
        blocked = [n for n in self._procs if n not in self._done]
        if blocked:
            raise SimulationError(
                f"deadlock: processes never finished: {sorted(blocked)}"
            )
        return self.now

    def _step(self, name: str, send_value: Any) -> None:
        """Advance one process until it blocks, sleeps, or finishes."""
        gen = self._procs[name]
        while True:
            try:
                cmd = gen.send(send_value)
            except StopIteration:
                self._finish(name)
                return
            send_value = None
            if isinstance(cmd, Timeout):
                heapq.heappush(
                    self._heap,
                    _Scheduled(self.now + cmd.delay, next(self._seq), name),
                )
                return
            if isinstance(cmd, Acquire):
                if self._try_acquire(cmd.resource, name):
                    continue  # got it immediately; keep stepping
                return  # parked in the resource queue
            if isinstance(cmd, Release):
                self._do_release(cmd.resource, name)
                continue
            if isinstance(cmd, WaitAll):
                missing = tuple(n for n in cmd.names if n not in self._done)
                unknown = [n for n in missing if n not in self._procs]
                if unknown:
                    raise SimulationError(f"wait on unknown processes {unknown}")
                if not missing:
                    continue
                self._park_waiter(name, missing)
                return
            raise SimulationError(f"process {name!r} yielded {cmd!r}")

    # -- resources ---------------------------------------------------------
    def _try_acquire(self, res: ResourceHandle, name: str) -> bool:
        self.log(EventKind.RESOURCE_REQUEST, agent=name, resource=res.name)
        if len(res.holders) < res.capacity and not res.queue:
            res.holders.append(name)
            self.log(EventKind.RESOURCE_ACQUIRE, agent=name, resource=res.name)
            return True
        res.queue.append((next(self._seq), name))
        return False

    def _do_release(self, res: ResourceHandle, name: str) -> None:
        if name not in res.holders:
            raise SimulationError(
                f"{name!r} released {res.name!r} without holding it"
            )
        res.holders.remove(name)
        self.log(EventKind.RESOURCE_RELEASE, agent=name, resource=res.name)
        if res.queue and len(res.holders) < res.capacity:
            res.queue.sort()
            _, waiter = res.queue.pop(0)
            res.holders.append(waiter)
            self.log(EventKind.RESOURCE_ACQUIRE, agent=waiter,
                     resource=res.name)
            # Resume the waiter at the current time, after the releaser's
            # current step completes (heap ordering keeps this fair).
            heapq.heappush(
                self._heap, _Scheduled(self.now, next(self._seq), waiter)
            )

    # -- process completion / waits ----------------------------------------
    def _park_waiter(self, name: str, missing: Tuple[str, ...]) -> None:
        for dep in missing:
            self._wait_index.setdefault(dep, []).append(name)
        self._pending_deps[name] = set(missing)

    def _finish(self, name: str) -> None:
        self._done[name] = self.now
        self.log(EventKind.PROCESS_DONE, agent=name)
        for waiter in self._wait_index.pop(name, []):
            deps = self._pending_deps.get(waiter)
            if deps is None:
                continue
            deps.discard(name)
            if not deps:
                del self._pending_deps[waiter]
                heapq.heappush(
                    self._heap, _Scheduled(self.now, next(self._seq), waiter)
                )

    # -- results -----------------------------------------------------------
    @property
    def finish_times(self) -> Dict[str, float]:
        """Completion time of every finished process."""
        return dict(self._done)

    def makespan(self) -> float:
        """Latest completion time across all processes (0.0 if none ran)."""
        return max(self._done.values(), default=0.0)
