"""A deterministic generator-based discrete-event simulation engine.

The engine is a minimal SimPy-style kernel, built from scratch: processes
are Python generators that ``yield`` commands (:class:`Timeout`,
:class:`Acquire`, :class:`Release`, :class:`WaitAll`), and the engine owns a
single event heap keyed by ``(time, sequence)``.  Two runs with the same
seed and the same process set produce byte-identical traces; this property
is load-bearing for the reproduction benchmarks and is covered by tests.

Why build one instead of importing SimPy: the environment is offline, the
kernel is ~200 lines, and owning it lets the trace layer log exactly the
classroom-level events we need (strokes, implement handoffs) without
adapter glue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from .events import Event, EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.observer import Observer

#: A simulation process: a generator yielding engine commands.
ProcessGen = Generator["Command", Any, None]


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, double release, ...)."""


#: A wait-for graph: waiter name -> [(via label, awaited process name)].
#: ``via`` is the resource the waiter is queued on, or ``"<wait>"`` for a
#: WaitAll dependency.  Shared vocabulary between the runtime deadlock
#: diagnostic below and the static analyzer in :mod:`repro.analyze`.
WaitEdges = Dict[str, List[Tuple[str, str]]]


def find_wait_cycle(edges: WaitEdges) -> List[str]:
    """First wait-for cycle as ``[p0, via, p1, via, ..., p0]``.

    Deterministic: nodes and edges are visited in sorted order, so the
    same graph always names the same cycle.  This is the *single* cycle
    finder in the codebase — the runtime :class:`DeadlockError` diagnostic
    and the static analyzer (:mod:`repro.analyze.waitgraph`) both call it,
    which is what keeps their reported cycles comparable.

    Args:
        edges: waiter -> [(via, awaited)] adjacency lists.  ``via`` labels
            the edge (a resource name, or ``"<wait>"``).

    Returns:
        The alternating node/via cycle list, or ``[]`` when acyclic.
    """
    index: Dict[str, int] = {}   # node -> position on the current path
    visited: set = set()
    path: List[str] = []
    vias: List[str] = []         # vias[j] labels the edge path[j]->path[j+1]

    def dfs(node: str) -> Optional[List[str]]:
        index[node] = len(path)
        path.append(node)
        for via, target in sorted(edges.get(node, [])):
            if target in index:
                start = index[target]
                cycle: List[str] = []
                for j in range(start, len(path) - 1):
                    cycle.extend([path[j], vias[j]])
                cycle.extend([path[-1], via, target])
                return cycle
            if target in edges and target not in visited:
                vias.append(via)
                found = dfs(target)
                if found:
                    return found
                vias.pop()
        path.pop()
        del index[node]
        visited.add(node)
        return None

    for node in sorted(edges):
        if node not in visited:
            found = dfs(node)
            if found:
                return found
    return []


def format_wait_cycle(cycle: List[str]) -> str:
    """Render a cycle list as ``p0 -[via]-> p1 -[via]-> ... -> p0``.

    The inverse-readable form of :func:`find_wait_cycle` output; the
    runtime deadlock message and the static analyzer's reports both use
    it, so a cycle printed by either is textually comparable.  Returns
    ``""`` for an empty cycle.
    """
    if not cycle:
        return ""
    arrows = cycle[0]
    for i in range(1, len(cycle) - 1, 2):
        arrows += f" -[{cycle[i]}]-> {cycle[i + 1]}"
    return arrows


class DeadlockError(SimulationError):
    """Raised when the heap empties with processes still blocked.

    Attributes:
        blocked: names of the processes that never finished.
        cycle: the wait-for cycle as an alternating list
            ``[proc, via, proc, via, ..., proc]`` where ``via`` is the
            resource (or ``"<wait>"`` for a WaitAll edge) the left process
            is queued on and the right process holds; empty when the
            blockage is starvation rather than a circular wait.
        wait_for: per-process diagnostic lines (who holds what, who queues
            for what).
    """

    def __init__(self, message: str, *, blocked: List[str],
                 cycle: List[str], wait_for: List[str]) -> None:
        super().__init__(message)
        self.blocked = blocked
        self.cycle = cycle
        self.wait_for = wait_for


class WatchdogExceeded(SimulationError):
    """Raised when a run exceeds its event or simulated-time budget.

    Converts a runaway simulation (a livelocked retry loop, a fault plan
    that keeps reinjecting work) into a structured, catchable error
    instead of an unbounded loop.

    Attributes:
        budget: which budget tripped, ``"events"`` or ``"time"``.
        limit: the configured budget value.
        at: simulated time when the watchdog fired.
        dispatched: number of scheduler dispatches executed so far.
    """

    def __init__(self, budget: str, limit: float, at: float,
                 dispatched: int) -> None:
        super().__init__(
            f"watchdog: {budget} budget exceeded "
            f"(limit {limit}, t={at:.2f}, {dispatched} dispatches)"
        )
        self.budget = budget
        self.limit = limit
        self.at = at
        self.dispatched = dispatched


class Interrupt(Exception):
    """Base class for exceptions the kernel throws *into* a process.

    An interrupt preempts a process at its current yield point (sleeping
    on a :class:`Timeout`, parked in a resource queue, or blocked on a
    :class:`WaitAll`).  A process may catch the interrupt and recover; an
    uncaught interrupt kills the process (its held resources are released
    and it is marked finished-by-kill, not an engine crash).
    """

    def __init__(self, reason: str = "", **data: Any) -> None:
        super().__init__(reason or self.__class__.__name__)
        self.reason = reason
        self.data = data


class KillInterrupt(Interrupt):
    """A fatal interrupt: the process is being removed (student dropout).

    Processes may catch it to clean up bookkeeping but should re-raise;
    the kernel then releases held resources and wakes any waiters.
    """


class StallInterrupt(Interrupt):
    """A transient preemption: pause for ``duration``, then resume."""

    def __init__(self, duration: float, reason: str = "stall",
                 **data: Any) -> None:
        if duration < 0:
            raise SimulationError(f"negative stall duration: {duration}")
        super().__init__(reason, **data)
        self.duration = duration


class ResourceFailure(Interrupt):
    """Thrown into a process whose acquire hit a permanently failed
    resource (the marker dried and no spare is coming)."""

    def __init__(self, resource: str, reason: str = "resource failed",
                 **data: Any) -> None:
        super().__init__(reason, **data)
        self.resource = resource


class Command:
    """Base class for things a process may yield to the engine."""


@dataclass(frozen=True)
class Timeout(Command):
    """Suspend the process for ``delay`` simulated seconds (>= 0)."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Acquire(Command):
    """Block until the named resource is granted to this process."""

    resource: "ResourceHandle"


@dataclass(frozen=True)
class Release(Command):
    """Give the named resource back (must currently hold it)."""

    resource: "ResourceHandle"


@dataclass(frozen=True)
class WaitAll(Command):
    """Block until every one of the given processes has finished."""

    names: Tuple[str, ...]


class ResourceHandle:
    """A shared, single-holder resource (one drawing implement).

    FIFO grant order: requests are queued in arrival order with ties broken
    by the engine's deterministic sequence counter.  ``capacity`` > 1 models
    a team that was given duplicate implements (the paper's "extra
    resources would reduce contention" remark).
    """

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.holders: List[str] = []
        self.queue: List[Tuple[int, str]] = []  # (arrival seq, process name)
        self.failed = False
        self.repair_at: Optional[float] = None

    def held_by(self, process: str) -> bool:
        """Whether the process currently holds one unit of this resource."""
        return process in self.holders

    def fail(self, repair_at: Optional[float] = None) -> None:
        """Stop granting this resource (the marker dried out).

        Current holders are unaffected — the failure bites at the next
        grant boundary.  With ``repair_at`` set, waiters stay queued and
        grants resume once :meth:`Simulator.repair_resource` runs (the
        engine schedules that automatically via
        :meth:`Simulator.fail_resource`); without it the failure is
        permanent.  Prefer :meth:`Simulator.fail_resource`, which also
        logs the event and notifies queued waiters of permanent failures.

        Raises:
            SimulationError: if the resource is already failed.
        """
        if self.failed:
            raise SimulationError(f"resource {self.name!r} already failed")
        self.failed = True
        self.repair_at = repair_at

    @property
    def permanently_failed(self) -> bool:
        """Failed with no repair scheduled."""
        return self.failed and self.repair_at is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ", FAILED" if self.failed else ""
        return (f"ResourceHandle({self.name!r}, capacity={self.capacity}, "
                f"holders={self.holders}, queued={len(self.queue)}{state})")


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    process: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    #: Wakeup generation of the target process at scheduling time; a
    #: mismatch at pop time means the process was interrupted meanwhile
    #: and this wakeup is stale.  Kernel callbacks ("call" payloads) are
    #: never stale.
    epoch: int = field(compare=False, default=0)


class Simulator:
    """The event-loop kernel.

    Typical use::

        sim = Simulator()
        red = sim.resource("red_marker")
        sim.add_process("P1", worker_gen(sim, red))
        sim.run()
        print(sim.now, len(sim.events))

    Processes log domain events through :meth:`log`; the kernel itself logs
    PROCESS_START / PROCESS_DONE and all resource traffic.

    ``observer`` is the zero-overhead-when-disabled observability tap
    (see :mod:`repro.obs`): when ``None`` (the default) the kernel
    executes exactly the pre-observability instruction stream, and every
    hook site is a single ``is not None`` test.  Observers are read-only
    — they never touch the event log or the sequence counter, so an
    observed run's trace is byte-identical to an unobserved one.
    """

    def __init__(self, observer: Optional["Observer"] = None) -> None:
        self.observer = observer
        self.now: float = 0.0
        self.events: List[Event] = []
        self._heap: List[_Scheduled] = []
        self._seq = itertools.count()
        self._procs: Dict[str, ProcessGen] = {}
        self._done: Dict[str, float] = {}
        self._killed: Dict[str, float] = {}
        self._resources: Dict[str, ResourceHandle] = {}
        # dep process name -> processes blocked until it finishes
        self._wait_index: Dict[str, List[str]] = {}
        # blocked process -> set of deps it is still waiting on
        self._pending_deps: Dict[str, set] = {}
        # process -> wakeup generation; bumped on interrupt so that any
        # already-scheduled wakeup for the old state is skipped as stale
        self._epoch: Dict[str, int] = {}
        self._started = False

    # -- construction ------------------------------------------------------
    def resource(self, name: str, capacity: int = 1) -> ResourceHandle:
        """Create (or fetch) a named shared resource."""
        if name in self._resources:
            existing = self._resources[name]
            if existing.capacity != capacity:
                raise SimulationError(
                    f"resource {name!r} already exists with capacity "
                    f"{existing.capacity}, asked for {capacity}"
                )
            return existing
        handle = ResourceHandle(name, capacity)
        self._resources[name] = handle
        return handle

    def attach_observer(self, observer: "Observer") -> None:
        """Attach an observability tap before the run starts.

        Raises:
            SimulationError: once :meth:`run` has been called (hooking
                in mid-run would give the observer a torn view).
        """
        if self._started:
            raise SimulationError(
                "cannot attach an observer after run() started")
        self.observer = observer

    def add_process(self, name: str, gen: ProcessGen,
                    start_at: float = 0.0) -> None:
        """Register a process to begin at ``start_at`` simulated seconds."""
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        if name in self._procs:
            raise SimulationError(f"duplicate process name {name!r}")
        if start_at < 0:
            raise SimulationError(f"negative start time for {name!r}")
        self._procs[name] = gen
        heapq.heappush(
            self._heap,
            _Scheduled(start_at, next(self._seq), name, "start",
                       epoch=self._epoch.get(name, 0)),
        )

    def schedule_call(self, time: float, fn: Callable[..., Any],
                      *args: Any) -> None:
        """Run ``fn(*args)`` at kernel level at simulated ``time``.

        The callback runs between process steps with the clock set to
        ``time``; it may log events, fail/repair resources, interrupt
        processes, or schedule further calls.  This is the hook the fault
        injector compiles :class:`~repro.faults.plan.FaultPlan` entries
        into.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule a call at {time} < now {self.now}"
            )
        heapq.heappush(
            self._heap,
            _Scheduled(time, next(self._seq), "", payload=("call", fn, args)),
        )

    # -- logging -----------------------------------------------------------
    def log(self, kind: EventKind, agent: Optional[str] = None,
            **data: Any) -> Event:
        """Append a domain event at the current simulated time."""
        ev = Event(time=self.now, seq=next(self._seq), kind=kind,
                   agent=agent, data=data)
        self.events.append(ev)
        if self.observer is not None:
            self.observer.on_event(ev)
        return ev

    # -- the loop ----------------------------------------------------------
    def run(self, until: Optional[float] = None, *,
            max_events: Optional[int] = None,
            max_time: Optional[float] = None) -> float:
        """Drive every process to completion (or until the time horizon).

        Returns the final simulation time (the makespan when all processes
        finished).

        Args:
            until: stop cleanly once the next event lies past this time;
                the event is kept for a later ``run()`` call.
            max_events: watchdog — abort after this many scheduler
                dispatches (catches livelocked retry loops).
            max_time: watchdog — abort once simulated time would pass
                this budget.  Unlike ``until`` this is an error, not a
                pause: the simulation was expected to finish by then.

        Raises:
            DeadlockError: processes still blocked on resources or waits
                when the heap empties; the message names the wait-for
                cycle when one exists.
            WatchdogExceeded: an event or time budget was exhausted.
        """
        self._started = True
        obs = self.observer
        if obs is not None:
            obs.on_run_start(self)
        dispatched = 0
        while self._heap:
            item = heapq.heappop(self._heap)
            name = item.process
            is_call = isinstance(item.payload, tuple) and item.payload[0] == "call"
            if not is_call and item.epoch != self._epoch.get(name, 0):
                continue  # stale wakeup: the process was interrupted
            if until is not None and item.time > until:
                # Keep the event for a later run() call — dropping it
                # would silently lose a process wakeup.
                heapq.heappush(self._heap, item)
                self.now = until
                if obs is not None:
                    obs.on_run_end(self, self.now)
                return self.now
            if max_time is not None and item.time > max_time:
                raise WatchdogExceeded("time", max_time, self.now, dispatched)
            if item.time < self.now:
                raise SimulationError(
                    f"time went backwards: {item.time} < {self.now}"
                )
            self.now = item.time
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise WatchdogExceeded("events", max_events, self.now,
                                       dispatched)
            if is_call:
                _, fn, args = item.payload
                if obs is not None:
                    obs.on_dispatch_start("<kernel>", self.now)
                    fn(*args)
                    obs.on_dispatch_end("<kernel>", self.now)
                else:
                    fn(*args)
                continue
            if item.payload == "start":
                self.log(EventKind.PROCESS_START, agent=name)
            if obs is not None:
                obs.on_dispatch_start(name, self.now)
                self._step(name)
                obs.on_dispatch_end(name, self.now)
            else:
                self._step(name)
        blocked = sorted(n for n in self._procs if n not in self._done)
        if blocked:
            raise self._deadlock_error(blocked)
        if obs is not None:
            obs.on_run_end(self, self.now)
        return self.now

    def _step(self, name: str, send_value: Any = None,
              throw: Optional[BaseException] = None) -> None:
        """Advance one process until it blocks, sleeps, or finishes.

        ``throw`` delivers an :class:`Interrupt` into the generator at its
        current yield point instead of resuming it with a value.
        """
        gen = self._procs[name]
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    cmd = gen.throw(exc)
                else:
                    cmd = gen.send(send_value)
            except StopIteration:
                self._finish(name)
                return
            except Interrupt as exc:
                # The process did not survive the interrupt (or chose to
                # re-raise after cleanup): it dies here, not the kernel.
                self._kill(name, exc)
                return
            send_value = None
            if isinstance(cmd, Timeout):
                self._wake(name, self.now + cmd.delay)
                return
            if isinstance(cmd, Acquire):
                res = cmd.resource
                if res.permanently_failed:
                    # Deliver the failure into the process so it can
                    # adapt (skip the color, drop the op, ...).
                    throw = ResourceFailure(res.name)
                    continue
                if self._try_acquire(res, name):
                    continue  # got it immediately; keep stepping
                return  # parked in the resource queue
            if isinstance(cmd, Release):
                self._do_release(cmd.resource, name)
                continue
            if isinstance(cmd, WaitAll):
                if len(set(cmd.names)) != len(cmd.names):
                    raise SimulationError(
                        f"process {name!r} waits on duplicate names "
                        f"{list(cmd.names)}"
                    )
                if name in cmd.names:
                    raise SimulationError(
                        f"process {name!r} cannot wait on itself"
                    )
                missing = tuple(n for n in cmd.names if n not in self._done)
                unknown = [n for n in missing if n not in self._procs]
                if unknown:
                    raise SimulationError(f"wait on unknown processes {unknown}")
                if not missing:
                    continue
                self._park_waiter(name, missing)
                return
            raise SimulationError(f"process {name!r} yielded {cmd!r}")

    # -- scheduling helpers -------------------------------------------------
    def _wake(self, name: str, at: float) -> None:
        """Schedule a wakeup for a process, stamped with its epoch."""
        heapq.heappush(
            self._heap,
            _Scheduled(at, next(self._seq), name,
                       epoch=self._epoch.get(name, 0)),
        )

    # -- resources ---------------------------------------------------------
    def _try_acquire(self, res: ResourceHandle, name: str) -> bool:
        self.log(EventKind.RESOURCE_REQUEST, agent=name, resource=res.name)
        if not res.failed and len(res.holders) < res.capacity and not res.queue:
            res.holders.append(name)
            self.log(EventKind.RESOURCE_ACQUIRE, agent=name, resource=res.name)
            return True
        res.queue.append((next(self._seq), name))
        return False

    def _grant_queued(self, res: ResourceHandle) -> None:
        """Hand a non-failed resource to queued waiters, FIFO, up to
        capacity, waking each at the current time."""
        while not res.failed and res.queue and len(res.holders) < res.capacity:
            res.queue.sort()
            _, waiter = res.queue.pop(0)
            res.holders.append(waiter)
            self.log(EventKind.RESOURCE_ACQUIRE, agent=waiter,
                     resource=res.name)
            # Resume the waiter at the current time, after the current
            # step completes (heap ordering keeps this fair).
            self._wake(waiter, self.now)

    def _do_release(self, res: ResourceHandle, name: str) -> None:
        if name not in res.holders:
            raise SimulationError(
                f"{name!r} released {res.name!r} without holding it"
            )
        res.holders.remove(name)
        self.log(EventKind.RESOURCE_RELEASE, agent=name, resource=res.name)
        self._grant_queued(res)

    def fail_resource(self, res: ResourceHandle,
                      repair_at: Optional[float] = None) -> None:
        """Fail a resource at the current time (the marker dries out).

        Current holders are unaffected until they release; the failure
        bites at the grant boundary.  With ``repair_at``, waiters stay
        queued and a repair is scheduled (the spare arrives); without it,
        every queued waiter immediately receives a
        :class:`ResourceFailure` interrupt and future acquires fail too.

        Raises:
            SimulationError: if already failed, or ``repair_at`` is in
                the past.
        """
        if repair_at is not None and repair_at < self.now:
            raise SimulationError(
                f"repair_at {repair_at} is before now {self.now}"
            )
        res.fail(repair_at)
        self.log(EventKind.RESOURCE_FAILED, resource=res.name,
                 permanent=repair_at is None,
                 **({} if repair_at is None else {"repair_at": repair_at}))
        if repair_at is not None:
            self.schedule_call(repair_at, self.repair_resource, res)
            return
        res.queue.sort()
        waiters = [w for _, w in res.queue]
        res.queue.clear()
        for waiter in waiters:
            self._step(waiter, throw=ResourceFailure(res.name))

    def repair_resource(self, res: ResourceHandle) -> None:
        """Un-fail a resource (the spare arrived) and resume granting."""
        if not res.failed:
            raise SimulationError(f"resource {res.name!r} is not failed")
        res.failed = False
        res.repair_at = None
        self.log(EventKind.RESOURCE_REPAIRED, resource=res.name)
        self._grant_queued(res)

    # -- interrupts ---------------------------------------------------------
    def interrupt(self, name: str, exc: Optional[Interrupt] = None) -> bool:
        """Preempt a process at its current yield point, immediately.

        Works whether the process is sleeping on a timeout, parked in a
        resource queue, or blocked on a wait: it is unparked, any pending
        wakeup is invalidated, and ``exc`` is thrown into its generator.
        Returns False (a no-op) when the process already finished.

        Raises:
            SimulationError: for an unknown process name.
        """
        if name not in self._procs:
            raise SimulationError(f"cannot interrupt unknown process {name!r}")
        if name in self._done:
            return False
        self._unpark(name)
        self._step(name, throw=exc if exc is not None else Interrupt())
        return True

    def schedule_interrupt(self, time: float, name: str,
                           exc: Optional[Interrupt] = None) -> None:
        """Deliver an interrupt to a process at a future simulated time."""
        self.schedule_call(time, self.interrupt, name, exc)

    def _unpark(self, name: str) -> None:
        """Remove a process from every blocking structure and invalidate
        its pending wakeups (pre-interrupt bookkeeping)."""
        self._epoch[name] = self._epoch.get(name, 0) + 1
        for res in self._resources.values():
            res.queue = [(s, w) for s, w in res.queue if w != name]
        deps = self._pending_deps.pop(name, None)
        if deps:
            for dep in deps:
                waiters = self._wait_index.get(dep)
                if waiters and name in waiters:
                    waiters.remove(name)

    def _kill(self, name: str, exc: Interrupt) -> None:
        """Terminate a process that died from an uncaught interrupt:
        release everything it holds, mark it finished-by-kill, and wake
        its waiters (they will never get more from it)."""
        self._unpark(name)
        for res in self._resources.values():
            while name in res.holders:
                self._do_release(res, name)
        self._killed[name] = self.now
        self._done[name] = self.now
        self.log(EventKind.PROCESS_KILLED, agent=name, reason=str(exc))
        self._release_waiters(name)

    # -- process completion / waits ----------------------------------------
    def _park_waiter(self, name: str, missing: Tuple[str, ...]) -> None:
        for dep in missing:
            self._wait_index.setdefault(dep, []).append(name)
        self._pending_deps[name] = set(missing)

    def _finish(self, name: str) -> None:
        self._done[name] = self.now
        self.log(EventKind.PROCESS_DONE, agent=name)
        self._release_waiters(name)

    def _release_waiters(self, name: str) -> None:
        for waiter in self._wait_index.pop(name, []):
            deps = self._pending_deps.get(waiter)
            if deps is None:
                continue
            deps.discard(name)
            if not deps:
                del self._pending_deps[waiter]
                self._wake(waiter, self.now)

    # -- deadlock diagnostics ----------------------------------------------
    def _deadlock_error(self, blocked: List[str]) -> DeadlockError:
        """Build the wait-for graph over the blocked processes, find a
        cycle if one exists, and package everything as a DeadlockError."""
        # edges: blocked process -> [(via label, process it waits on)]
        edges: Dict[str, List[Tuple[str, str]]] = {n: [] for n in blocked}
        wants: Dict[str, str] = {}
        for res in self._resources.values():
            for _, waiter in sorted(res.queue):
                if waiter in edges:
                    wants[waiter] = res.name
                    for holder in res.holders:
                        edges[waiter].append((res.name, holder))
        for waiter, deps in self._pending_deps.items():
            if waiter in edges:
                for dep in sorted(deps):
                    edges[waiter].append(("<wait>", dep))

        cycle = find_wait_cycle(edges)
        holds = {
            n: [r.name for r in self._resources.values() if n in r.holders]
            for n in blocked
        }
        wait_for = []
        for n in blocked:
            if n in wants:
                res = self._resources[wants[n]]
                holders = ", ".join(res.holders) or "nobody"
                state = " [FAILED]" if res.failed else ""
                what = f"waits for {res.name}{state} (held by {holders})"
            elif n in self._pending_deps:
                what = ("waits for processes "
                        f"{sorted(self._pending_deps[n])} to finish")
            else:
                what = "is blocked (no pending wakeup)"
            wait_for.append(f"{n} holds {holds[n] or 'nothing'}, {what}")

        lines = [f"deadlock: {len(blocked)} of {len(self._procs)} "
                 f"processes never finished: {blocked}"]
        if cycle:
            lines.append(f"wait-for cycle: {format_wait_cycle(cycle)}")
        for line in wait_for:
            lines.append(f"  {line}")
        return DeadlockError("\n".join(lines), blocked=blocked,
                             cycle=cycle, wait_for=wait_for)

    # -- results -----------------------------------------------------------
    @property
    def finish_times(self) -> Dict[str, float]:
        """Completion time of every finished process (kills included)."""
        return dict(self._done)

    @property
    def killed(self) -> Dict[str, float]:
        """Processes removed by an uncaught interrupt, with kill times."""
        return dict(self._killed)

    def is_finished(self, name: str) -> bool:
        """Whether a process has completed (normally or by kill)."""
        return name in self._done

    def makespan(self) -> float:
        """Latest completion time across all processes (0.0 if none ran)."""
        return max(self._done.values(), default=0.0)
