"""Rubric grading of student-drawn dependency graphs (Section V-C).

The paper's examiners sorted 29 Jordan-flag submissions into: perfectly
correct (10, 34%), mostly correct (7, 24% — split triangle, merged stripes,
or spatial layout without arrows), linear chains (the most common error),
incomplete drawings, and "no learning demonstrated" (drew the flag or wrote
code).  This module encodes that rubric as an executable classifier over
:class:`Submission` objects, with the same allowances the paper grants:

- the white-stripe task may be omitted (blank paper is white);
- redundant transitive edges are forgiven (closure comparison);
- the split triangle counts as mostly correct even though none of the
  students got its edges exactly right.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from .flag_dags import (
    jordan_linear_chain_dag,
    jordan_merged_stripes_dag,
    jordan_reference_dag,
    jordan_reference_dag_with_white,
    jordan_split_triangle_dag,
)
from .graph import TaskGraph


class SubmissionKind(enum.Enum):
    """What the student actually handed in."""

    GRAPH = "graph"
    FLAG_DRAWING = "flag_drawing"
    CODE = "code"


class Category(enum.Enum):
    """The paper's grading buckets, plus OTHER for unclassifiable graphs."""

    PERFECT = "perfect"
    MOSTLY_CORRECT = "mostly_correct"
    LINEAR_CHAIN = "linear_chain"
    INCOMPLETE = "incomplete"
    NO_LEARNING = "no_learning"
    OTHER = "other"


@dataclass
class Submission:
    """One collected student artifact.

    Attributes:
        student: anonymous identifier.
        kind: a graph, a flag drawing, or code (the latter two demonstrate
            no learning about dependency graphs).
        graph: the drawn graph, when kind is GRAPH.
        has_arrows: False when the student only *implied* dependencies by
            spatial layout (one submission did this; mostly correct).
        complete: False when the student ran out of time mid-drawing.
        crossed_out_white: the student started a white-stripe task and
            struck it (evidence of the blank-paper insight; cosmetic).
    """

    student: str
    kind: SubmissionKind
    graph: Optional[TaskGraph] = None
    has_arrows: bool = True
    complete: bool = True
    crossed_out_white: bool = False


#: Synonyms observed in hand-drawn task labels, mapped to canonical names.
_CANONICAL_NAMES: Dict[str, str] = {
    "black": "black_stripe",
    "black stripe": "black_stripe",
    "top stripe": "black_stripe",
    "white": "white_stripe",
    "white stripe": "white_stripe",
    "middle stripe": "white_stripe",
    "green": "green_stripe",
    "green stripe": "green_stripe",
    "bottom stripe": "green_stripe",
    "triangle": "red_triangle",
    "red triangle": "red_triangle",
    "chevron": "red_triangle",
    "star": "white_star",
    "dot": "white_star",
    "white dot": "white_star",
    "white star": "white_star",
    "circle": "white_star",
    "top triangle": "red_triangle_top",
    "upper triangle": "red_triangle_top",
    "bottom triangle": "red_triangle_bottom",
    "lower triangle": "red_triangle_bottom",
    "stripes": "stripes",
    "all stripes": "stripes",
    "background": "stripes",
}


def canonicalize(graph: TaskGraph) -> TaskGraph:
    """Rename hand-written task labels to canonical names.

    Unknown labels pass through lowercased with spaces collapsed to
    underscores; canonical names are left untouched.
    """
    def canon(name: str) -> str:
        key = name.strip().lower()
        if key in _CANONICAL_NAMES:
            return _CANONICAL_NAMES[key]
        return key.replace(" ", "_")

    g = TaskGraph()
    for t in graph.tasks:
        g.add_task(canon(t), graph.weight(t))
    for u, v in graph.edges:
        g.add_dependency(canon(u), canon(v))
    return g


def _drop_white(graph: TaskGraph) -> TaskGraph:
    """Remove the white-stripe task (with its edges) if present."""
    if "white_stripe" not in graph:
        return graph
    g = graph.copy()
    g.remove_task("white_stripe")
    return g


def _matches_reference(graph: TaskGraph) -> bool:
    """Perfect match against either reference (white drawn or omitted),
    with weights ignored and redundant transitive edges forgiven."""
    unweighted = TaskGraph.from_edges(graph.edges, isolated=graph.tasks)
    for ref in (jordan_reference_dag(), jordan_reference_dag_with_white()):
        ref_u = TaskGraph.from_edges(ref.edges, isolated=ref.tasks)
        if unweighted.same_structure(ref_u):
            return True
    # A submission that drew white but otherwise matches the white-less
    # reference is also perfect (white may hang anywhere harmless), as long
    # as dropping white recovers the reference.
    return _drop_white(unweighted).same_structure(
        TaskGraph.from_edges(jordan_reference_dag().edges,
                             isolated=jordan_reference_dag().tasks)
    )


def _is_split_triangle(graph: TaskGraph) -> bool:
    """The split-triangle mostly-correct variant (either edge version)."""
    g = _drop_white(TaskGraph.from_edges(graph.edges, isolated=graph.tasks))
    for correct in (False, True):
        ref = jordan_split_triangle_dag(correct_edges=correct)
        if g.same_structure(ref):
            return True
    return False


def _is_merged_stripes(graph: TaskGraph) -> bool:
    """The merged-stripes mostly-correct variant."""
    g = _drop_white(TaskGraph.from_edges(graph.edges, isolated=graph.tasks))
    return g.same_structure(jordan_merged_stripes_dag())


def classify(submission: Submission) -> Category:
    """Apply the Section V-C rubric to one submission."""
    if submission.kind is not SubmissionKind.GRAPH or submission.graph is None:
        return Category.NO_LEARNING
    graph = canonicalize(submission.graph)
    if not submission.complete:
        return Category.INCOMPLETE
    if _matches_reference(graph):
        if not submission.has_arrows:
            # Right structure, dependencies only implied spatially.
            return Category.MOSTLY_CORRECT
        return Category.PERFECT
    if _is_split_triangle(graph) or _is_merged_stripes(graph):
        return Category.MOSTLY_CORRECT
    if graph.is_linear_chain():
        return Category.LINEAR_CHAIN
    return Category.OTHER


@dataclass
class GradingReport:
    """Aggregated grading results for one class's submissions."""

    counts: Dict[Category, int] = field(default_factory=dict)
    total: int = 0

    @property
    def n_perfect(self) -> int:
        """Perfect submissions."""
        return self.counts.get(Category.PERFECT, 0)

    @property
    def n_mostly(self) -> int:
        """Mostly-correct submissions."""
        return self.counts.get(Category.MOSTLY_CORRECT, 0)

    def fraction(self, cat: Category) -> float:
        """One category's share of all submissions (0.0 when empty)."""
        return self.counts.get(cat, 0) / self.total if self.total else 0.0

    @property
    def at_least_mostly_correct(self) -> float:
        """The paper's headline: perfect + mostly, as a fraction (59%)."""
        return ((self.n_perfect + self.n_mostly) / self.total
                if self.total else 0.0)


def explain(submission: Submission) -> str:
    """Human-readable grading feedback for one submission.

    The note an instructor would write back: what category the work falls
    in and *why*, with the specific observation that drove the rubric.
    """
    cat = classify(submission)
    if cat is Category.NO_LEARNING:
        what = ("a drawing of the flag" if submission.kind
                is SubmissionKind.FLAG_DRAWING else
                "code to draw the flag" if submission.kind
                is SubmissionKind.CODE else "no graph")
        return (f"no learning demonstrated: you submitted {what}; the "
                "exercise asked for a dependency graph (tasks as boxes, "
                "arrows for must-finish-before)")
    graph = canonicalize(submission.graph)  # type: ignore[arg-type]
    if cat is Category.INCOMPLETE:
        return (f"incomplete: {graph.n_tasks} task(s) drawn before time "
                "ran out; what you have trends toward a sequential chain "
                "- remember independent tasks need no arrow between them")
    if cat is Category.PERFECT:
        extras = []
        if "white_stripe" not in graph:
            extras.append("omitting the white stripe is fine - blank "
                          "paper is already white")
        if submission.crossed_out_white:
            extras.append("crossing out the white-stripe box shows you "
                          "saw that yourself")
        note = "; ".join(extras)
        return "perfect: stripes -> triangle -> star, exactly right" + (
            f" ({note})" if note else ""
        )
    if cat is Category.MOSTLY_CORRECT:
        if not submission.has_arrows:
            return ("mostly correct: the layout implies the right "
                    "dependencies, but a dependency graph needs the "
                    "arrows drawn explicitly")
        if _is_merged_stripes(graph):
            return ("mostly correct: merging all stripes into one task "
                    "loses the parallelism between them - they could be "
                    "colored simultaneously")
        return ("mostly correct: splitting the triangle mirrors your "
                "code, but note the top half doesn't actually depend on "
                "the green stripe (nor the bottom on the black)")
    if cat is Category.LINEAR_CHAIN:
        return ("linear chain: every task waits for the previous one - "
                "that's sequential thinking; the stripes don't overlap, "
                "so nothing forces an order between them")
    return ("unrecognized structure: check each arrow means 'must finish "
            "before', pointing from the earlier task to the later one")


def grade_all(submissions) -> GradingReport:
    """Classify a batch of submissions and tally the rubric categories."""
    report = GradingReport()
    for sub in submissions:
        cat = classify(sub)
        report.counts[cat] = report.counts.get(cat, 0) + 1
        report.total += 1
    return report
