"""Task dependency graphs: a from-scratch DAG with the PDC analyses.

Vertices are tasks ("color the black stripe"), directed edges denote
dependencies (edge ``u -> v`` means *u must finish before v starts*) — the
exact definition the Knox students were given.  The class supports the
analyses the activity motivates:

- topological ordering (is there a legal sequential schedule?),
- critical path (the lower bound on parallel completion time),
- parallelism profile (how many tasks *could* run at each depth),
- transitive reduction (the clean form of Figure 9),
- comparison helpers used by the student-submission grader.

A :mod:`networkx` bridge is provided for interop, but nothing in the
library depends on it for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx


class GraphError(Exception):
    """Raised on cycles, unknown nodes, or malformed graphs."""


@dataclass
class TaskGraph:
    """A directed acyclic graph of named, weighted tasks.

    Weights default to 1.0 (one "unit of coloring"); flag-derived graphs
    weight each task by its cell count so the critical path is in strokes.
    """

    _nodes: Dict[str, float] = field(default_factory=dict)
    _succ: Dict[str, Set[str]] = field(default_factory=dict)
    _pred: Dict[str, Set[str]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------
    def add_task(self, name: str, weight: float = 1.0) -> None:
        """Add a task (idempotent; re-adding updates the weight).

        Raises:
            GraphError: on empty names or negative weights.
        """
        if not name:
            raise GraphError("task name must be non-empty")
        if weight < 0:
            raise GraphError(f"task {name!r} has negative weight {weight}")
        self._nodes[name] = weight
        self._succ.setdefault(name, set())
        self._pred.setdefault(name, set())

    def add_dependency(self, before: str, after: str) -> None:
        """Declare that ``before`` must finish before ``after`` starts.

        Unknown endpoints are added with weight 1.0.  Self-loops and edges
        that would close a cycle raise.
        """
        if before == after:
            raise GraphError(f"self-dependency on {before!r}")
        for n in (before, after):
            if n not in self._nodes:
                self.add_task(n)
        if self._reaches(after, before):
            raise GraphError(
                f"adding {before!r} -> {after!r} would create a cycle"
            )
        self._succ[before].add(after)
        self._pred[after].add(before)

    def remove_task(self, name: str) -> None:
        """Remove a task and every edge touching it.

        Raises:
            GraphError: if the task does not exist.
        """
        if name not in self._nodes:
            raise GraphError(f"no task {name!r}")
        for s in self._succ.pop(name):
            self._pred[s].discard(name)
        for p in self._pred.pop(name):
            self._succ[p].discard(name)
        del self._nodes[name]

    # -- basic queries --------------------------------------------------------
    @property
    def tasks(self) -> List[str]:
        """All task names, sorted for determinism."""
        return sorted(self._nodes)

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self._nodes)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """All dependency edges, sorted."""
        return sorted((u, v) for u, vs in self._succ.items() for v in vs)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return sum(len(vs) for vs in self._succ.values())

    def weight(self, name: str) -> float:
        """A task's weight.

        Raises:
            GraphError: for unknown tasks.
        """
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"no task {name!r}") from None

    def successors(self, name: str) -> List[str]:
        """Tasks that directly depend on ``name`` (sorted)."""
        if name not in self._nodes:
            raise GraphError(f"no task {name!r}")
        return sorted(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Tasks ``name`` directly depends on (sorted)."""
        if name not in self._nodes:
            raise GraphError(f"no task {name!r}")
        return sorted(self._pred[name])

    def sources(self) -> List[str]:
        """Tasks with no prerequisites — can all start immediately."""
        return sorted(n for n in self._nodes if not self._pred[n])

    def sinks(self) -> List[str]:
        """Tasks nothing depends on."""
        return sorted(n for n in self._nodes if not self._succ[n])

    def _reaches(self, start: str, goal: str) -> bool:
        """DFS reachability (used for cycle prevention)."""
        if start not in self._nodes:
            return False
        stack, seen = [start], set()
        while stack:
            n = stack.pop()
            if n == goal:
                return True
            if n in seen:
                continue
            seen.add(n)
            stack.extend(self._succ[n])
        return False

    # -- orderings and structure -----------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn's algorithm with lexicographic tie-breaking (deterministic).

        Raises:
            GraphError: if the graph somehow contains a cycle (defensive;
                ``add_dependency`` prevents them).
        """
        indeg = {n: len(self._pred[n]) for n in self._nodes}
        ready = sorted(n for n, d in indeg.items() if d == 0)
        out: List[str] = []
        while ready:
            n = ready.pop(0)
            out.append(n)
            changed = False
            for s in self._succ[n]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
                    changed = True
            if changed:
                ready.sort()
        if len(out) != len(self._nodes):
            raise GraphError("cycle detected in topological sort")
        return out

    def depth(self) -> Dict[str, int]:
        """Longest-path depth of every task (sources are depth 0)."""
        d: Dict[str, int] = {}
        for n in self.topological_order():
            d[n] = max((d[p] + 1 for p in self._pred[n]), default=0)
        return d

    def levels(self) -> List[List[str]]:
        """Tasks grouped by depth — the "layers" of a legal schedule."""
        dep = self.depth()
        if not dep:
            return []
        out: List[List[str]] = [[] for _ in range(max(dep.values()) + 1)]
        for n, d in sorted(dep.items()):
            out[d].append(n)
        return out

    def parallelism_profile(self) -> List[int]:
        """Width of each depth level: the parallelism available per step."""
        return [len(level) for level in self.levels()]

    def max_parallelism(self) -> int:
        """The widest level (0 for an empty graph)."""
        prof = self.parallelism_profile()
        return max(prof) if prof else 0

    def is_linear_chain(self) -> bool:
        """True when the tasks form one single path (every level width 1 and
        each non-sink has exactly one successor)."""
        if self.n_tasks <= 1:
            return self.n_tasks == 1
        if self.max_parallelism() != 1:
            return False
        return all(len(self._succ[n]) <= 1 and len(self._pred[n]) <= 1
                   for n in self._nodes)

    # -- schedule bounds ---------------------------------------------------------
    def critical_path(self) -> Tuple[float, List[str]]:
        """Longest weighted path: (length, task names along it).

        The length is the minimum possible parallel completion time with
        unlimited processors (in task-weight units).
        """
        order = self.topological_order()
        dist: Dict[str, float] = {}
        best_pred: Dict[str, Optional[str]] = {}
        for n in order:
            preds = self._pred[n]
            if preds:
                p = max(sorted(preds), key=lambda q: dist[q])
                dist[n] = dist[p] + self._nodes[n]
                best_pred[n] = p
            else:
                dist[n] = self._nodes[n]
                best_pred[n] = None
        if not dist:
            return 0.0, []
        end = max(sorted(dist), key=lambda q: dist[q])
        path = [end]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        return dist[end], list(reversed(path))

    def total_work(self) -> float:
        """Sum of all task weights — the sequential completion time."""
        return sum(self._nodes.values())

    def ideal_speedup_bound(self) -> float:
        """total work / critical path — the DAG's speedup ceiling."""
        cp, _ = self.critical_path()
        return self.total_work() / cp if cp > 0 else 1.0

    # -- transformations ---------------------------------------------------------
    def transitive_closure_edges(self) -> Set[Tuple[str, str]]:
        """All (ancestor, descendant) pairs implied by the edges."""
        out: Set[Tuple[str, str]] = set()
        for n in self._nodes:
            stack = list(self._succ[n])
            seen: Set[str] = set()
            while stack:
                m = stack.pop()
                if m in seen:
                    continue
                seen.add(m)
                out.add((n, m))
                stack.extend(self._succ[m])
        return out

    def transitive_reduction(self) -> "TaskGraph":
        """The minimal graph with the same reachability — Figure 9's form."""
        closure = self.transitive_closure_edges()
        g = TaskGraph()
        for n, w in self._nodes.items():
            g.add_task(n, w)
        for u, v in self.edges:
            # u -> v is redundant if some intermediate w has u->w and w->v.
            redundant = any(
                (u, w) in closure and (w, v) in closure
                for w in self._nodes if w not in (u, v)
            )
            if not redundant:
                g.add_dependency(u, v)
        return g

    def copy(self) -> "TaskGraph":
        """Deep copy."""
        g = TaskGraph()
        for n, w in self._nodes.items():
            g.add_task(n, w)
        for u, v in self.edges:
            g.add_dependency(u, v)
        return g

    # -- comparison ---------------------------------------------------------------
    def same_structure(self, other: "TaskGraph") -> bool:
        """Equal task sets and equal *reachability* (edge direction included).

        Transitive differences are forgiven: a student who draws
        ``a -> b -> c`` plus the redundant ``a -> c`` still has the same
        structure as the reduced graph.
        """
        if set(self.tasks) != set(other.tasks):
            return False
        return self.transitive_closure_edges() == other.transitive_closure_edges()

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a networkx DiGraph (weights as node attributes)."""
        g = nx.DiGraph()
        for n in self.tasks:
            g.add_node(n, weight=self._nodes[n])
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_networkx(cls, g: "nx.DiGraph") -> "TaskGraph":
        """Import from a networkx DiGraph.

        Raises:
            GraphError: if the digraph has a cycle.
        """
        tg = cls()
        for n, data in g.nodes(data=True):
            tg.add_task(str(n), float(data.get("weight", 1.0)))
        for u, v in g.edges():
            tg.add_dependency(str(u), str(v))
        return tg

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]],
                   isolated: Iterable[str] = ()) -> "TaskGraph":
        """Build from an edge list plus optional isolated tasks."""
        g = cls()
        for n in isolated:
            g.add_task(n)
        for u, v in edges:
            g.add_dependency(u, v)
        return g

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph(tasks={self.n_tasks}, edges={self.n_edges})"
