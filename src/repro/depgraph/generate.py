"""Synthetic student submissions for the Jordan dependency-graph exercise.

The paper collected 29 drawings from a class of 65 (45% response, with one
section's rate suppressed by time pressure).  We cannot re-collect human
drawings, so this module generates populations of :class:`Submission`
artifacts from a mixture model whose default weights are the paper's
observed proportions.  The generator and the grader are *independent*
implementations of each category — the benchmark's round trip (generate →
classify → tally) is a real test of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .classify import Category, Submission, SubmissionKind
from .flag_dags import (
    jordan_linear_chain_dag,
    jordan_merged_stripes_dag,
    jordan_reference_dag,
    jordan_reference_dag_with_white,
    jordan_split_triangle_dag,
)
from .graph import TaskGraph


#: The paper's observed mixture over 29 submissions: 10 perfect, 5 split
#: triangle + 1 merged stripes + 1 spatial-without-arrows (= 7 mostly
#: correct), 6 linear chains, 2 incomplete, 4 no-learning.
PAPER_MIXTURE: Dict[str, float] = {
    "perfect": 10 / 29,
    "split_triangle": 5 / 29,
    "merged_stripes": 1 / 29,
    "spatial_no_arrows": 1 / 29,
    "linear_chain": 6 / 29,
    "incomplete": 2 / 29,
    "no_learning": 4 / 29,
}


def _perfect_graph(rng: np.random.Generator) -> TaskGraph:
    """A perfect submission: reference graph, white drawn or omitted, with
    an occasional harmless redundant transitive edge."""
    base = (jordan_reference_dag_with_white() if rng.random() < 0.4
            else jordan_reference_dag())
    g = TaskGraph.from_edges(base.edges, isolated=base.tasks)
    if rng.random() < 0.25:
        # A redundant stripes -> star edge: same closure, still perfect.
        src = "black_stripe" if rng.random() < 0.5 else "green_stripe"
        g.add_dependency(src, "white_star")
    return g


def _incomplete_graph(rng: np.random.Generator) -> TaskGraph:
    """A truncated linear attempt — the paper notes the incompletes were
    'working toward a linear solution as well'."""
    chain = jordan_linear_chain_dag(include_white=rng.random() < 0.5)
    order = chain.topological_order()
    keep = order[: int(rng.integers(2, len(order)))]
    g = TaskGraph()
    prev: Optional[str] = None
    for t in keep:
        g.add_task(t)
        if prev is not None:
            g.add_dependency(prev, t)
        prev = t
    return g


def make_submission(kind_key: str, student: str,
                    rng: np.random.Generator) -> Submission:
    """Materialize one submission of the given mixture category.

    Raises:
        KeyError: for unknown category keys (valid keys are the
            :data:`PAPER_MIXTURE` keys).
    """
    if kind_key == "perfect":
        return Submission(student=student, kind=SubmissionKind.GRAPH,
                          graph=_perfect_graph(rng),
                          crossed_out_white=rng.random() < 0.3)
    if kind_key == "split_triangle":
        return Submission(student=student, kind=SubmissionKind.GRAPH,
                          graph=jordan_split_triangle_dag(correct_edges=False))
    if kind_key == "merged_stripes":
        return Submission(student=student, kind=SubmissionKind.GRAPH,
                          graph=jordan_merged_stripes_dag())
    if kind_key == "spatial_no_arrows":
        ref = jordan_reference_dag()
        return Submission(student=student, kind=SubmissionKind.GRAPH,
                          graph=TaskGraph.from_edges(ref.edges,
                                                     isolated=ref.tasks),
                          has_arrows=False)
    if kind_key == "linear_chain":
        return Submission(
            student=student, kind=SubmissionKind.GRAPH,
            graph=jordan_linear_chain_dag(include_white=rng.random() < 0.5),
        )
    if kind_key == "incomplete":
        return Submission(student=student, kind=SubmissionKind.GRAPH,
                          graph=_incomplete_graph(rng), complete=False)
    if kind_key == "no_learning":
        kind = (SubmissionKind.FLAG_DRAWING if rng.random() < 0.5
                else SubmissionKind.CODE)
        return Submission(student=student, kind=kind)
    raise KeyError(f"unknown submission category {kind_key!r}; "
                   f"valid: {sorted(PAPER_MIXTURE)}")


@dataclass(frozen=True)
class ClassroomCollection:
    """The outcome of one collection: who submitted what.

    ``class_size`` is enrollment; ``submissions`` only contains the
    voluntary responders (the 45% of the paper's procedure).
    """

    class_size: int
    submissions: Tuple[Submission, ...]

    @property
    def response_rate(self) -> float:
        """Submissions / enrollment."""
        return len(self.submissions) / self.class_size if self.class_size else 0.0


def generate_submissions(
    n: int,
    rng: np.random.Generator,
    mixture: Optional[Dict[str, float]] = None,
) -> List[Submission]:
    """Draw ``n`` submissions i.i.d. from a category mixture."""
    mixture = mixture or PAPER_MIXTURE
    keys = sorted(mixture)
    probs = np.array([mixture[k] for k in keys], dtype=float)
    probs = probs / probs.sum()
    draws = rng.choice(len(keys), size=n, p=probs)
    return [make_submission(keys[int(d)], f"student{i:03d}", rng)
            for i, d in enumerate(draws)]


def generate_exact_paper_cohort(rng: np.random.Generator) -> List[Submission]:
    """The paper's cohort with *exact* category counts (29 submissions).

    Deterministic counts, randomized within-category variation — the
    configuration the Figure 9 benchmark replays to recover 34% / 24% /
    59% exactly.
    """
    counts = {
        "perfect": 10,
        "split_triangle": 5,
        "merged_stripes": 1,
        "spatial_no_arrows": 1,
        "linear_chain": 6,
        "incomplete": 2,
        "no_learning": 4,
    }
    subs: List[Submission] = []
    i = 0
    for key in sorted(counts):
        for _ in range(counts[key]):
            subs.append(make_submission(key, f"student{i:03d}", rng))
            i += 1
    perm = rng.permutation(len(subs))
    return [subs[int(j)] for j in perm]


def simulate_collection(
    rng: np.random.Generator,
    *,
    class_size: int = 65,
    n_sections: int = 3,
    base_response_rate: float = 0.55,
    rushed_section: int = 0,
    rushed_response_rate: float = 0.18,
    mixture: Optional[Dict[str, float]] = None,
) -> ClassroomCollection:
    """Simulate the voluntary collection across class sections.

    The paper's first section had less drawing time and submitted only 4
    of the 29 drawings; ``rushed_section`` reproduces that suppression.
    """
    if not 0 <= rushed_section < n_sections:
        raise ValueError("rushed_section out of range")
    per_section = [class_size // n_sections] * n_sections
    for i in range(class_size % n_sections):
        per_section[i] += 1
    submissions: List[Submission] = []
    sid = 0
    for sec, n_students in enumerate(per_section):
        rate = (rushed_response_rate if sec == rushed_section
                else base_response_rate)
        n_resp = int(rng.binomial(n_students, rate))
        submissions.extend(
            generate_submissions(n_resp, rng, mixture=mixture)
        )
        sid += n_students
    return ClassroomCollection(class_size=class_size,
                               submissions=tuple(submissions))
