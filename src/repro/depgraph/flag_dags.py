"""Derive task dependency graphs from flag specifications.

The layered paint order of a :class:`FlagSpec` induces a DAG: layer *B*
depends on layer *A* exactly when their regions overlap and *A* paints
first (the overpaint must land on top).  Transitive reduction of that graph
for the flag of Jordan is precisely Figure 9: the three stripes, then the
red triangle, then the white dot.

The module also builds the two "mostly correct" student variants Section
V-C describes — the split triangle and the merged stripes — so the grader
and the synthetic-submission generator share one source of truth.
"""

from __future__ import annotations

from typing import Optional

from ..flags.spec import FlagSpec
from ..grid.regions import Triangle
from .graph import TaskGraph


def flag_dag(spec: FlagSpec, rows: Optional[int] = None,
             cols: Optional[int] = None, *,
             include_optional: bool = False,
             reduce: bool = True) -> TaskGraph:
    """The dependency graph a flag's layer structure induces.

    Args:
        spec: the flag.
        rows, cols: grid size used to decide region overlaps.
        include_optional: keep optional-on-blank layers (white on white) as
            tasks; Figure 9 omits them, matching the grading allowance.
        reduce: return the transitive reduction (the clean drawn form).
    """
    rows = rows or spec.default_rows
    cols = cols or spec.default_cols
    g = TaskGraph()
    kept = {
        l.name for l in spec.layers
        if include_optional or not l.optional_on_blank
    }
    work = spec.work_per_layer(rows, cols)
    for l in spec.layers:
        if l.name in kept:
            g.add_task(l.name, weight=float(work[l.name]))
    for before, after in spec.overlap_pairs(rows, cols):
        if before in kept and after in kept:
            g.add_dependency(before, after)
    return g.transitive_reduction() if reduce else g


def jordan_reference_dag() -> TaskGraph:
    """Figure 9: the intended solution for coloring the flag of Jordan.

    Stripes (black, green; white omitted per the grading rule) precede the
    red triangle, which precedes the white dot.  Weights carry the default
    grid's cell counts.
    """
    from ..flags.catalog import jordan
    return flag_dag(jordan(), include_optional=False, reduce=True)


def jordan_reference_dag_with_white() -> TaskGraph:
    """The full-credit alternative that *does* draw the white stripe."""
    from ..flags.catalog import jordan
    return flag_dag(jordan(), include_optional=True, reduce=True)


def great_britain_reference_dag() -> TaskGraph:
    """The worked example shown to students before the Jordan exercise."""
    from ..flags.catalog import great_britain
    return flag_dag(great_britain(), reduce=True)


def jordan_split_triangle_dag(*, correct_edges: bool = False) -> TaskGraph:
    """The split-triangle student variant (5 of 29 submissions, 14%).

    Students who built the chevron from two right triangles in the
    programming assignment mirrored that here.  With ``correct_edges=False``
    (what every such student actually drew) both half-triangles depend on
    *all* stripes; the truly correct version — top half independent of the
    green stripe, bottom half independent of the black stripe — was drawn
    by nobody, and is available with ``correct_edges=True``.
    """
    g = TaskGraph()
    for t in ("black_stripe", "green_stripe",
              "red_triangle_top", "red_triangle_bottom", "white_star"):
        g.add_task(t)
    if correct_edges:
        g.add_dependency("black_stripe", "red_triangle_top")
        g.add_dependency("green_stripe", "red_triangle_bottom")
    else:
        for stripe in ("black_stripe", "green_stripe"):
            g.add_dependency(stripe, "red_triangle_top")
            g.add_dependency(stripe, "red_triangle_bottom")
    g.add_dependency("red_triangle_top", "white_star")
    g.add_dependency("red_triangle_bottom", "white_star")
    return g


def jordan_merged_stripes_dag() -> TaskGraph:
    """The merged-stripes variant: one task for all the stripes (1 of 29)."""
    g = TaskGraph()
    g.add_task("stripes")
    g.add_task("red_triangle")
    g.add_task("white_star")
    g.add_dependency("stripes", "red_triangle")
    g.add_dependency("red_triangle", "white_star")
    return g


def jordan_linear_chain_dag(*, include_white: bool = False) -> TaskGraph:
    """The most common *error*: a single sequential chain of tasks.

    Students who drew this were thinking in terms of sequential code —
    every task depends on the previous one regardless of actual overlap.
    """
    tasks = ["black_stripe"]
    if include_white:
        tasks.append("white_stripe")
    tasks += ["green_stripe", "red_triangle", "white_star"]
    g = TaskGraph()
    prev = None
    for t in tasks:
        g.add_task(t)
        if prev is not None:
            g.add_dependency(prev, t)
        prev = t
    return g
