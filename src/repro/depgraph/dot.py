"""Graphviz DOT export of task graphs — the drawable form of Figure 9.

No graphviz dependency: this emits the DOT text an instructor can paste
into any renderer to produce handouts/solutions for the dependency-graph
exercise.
"""

from __future__ import annotations

from typing import Dict, Optional

from .graph import TaskGraph


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: TaskGraph,
    *,
    name: str = "depgraph",
    rankdir: str = "TB",
    show_weights: bool = False,
    highlight_critical_path: bool = False,
    node_colors: Optional[Dict[str, str]] = None,
) -> str:
    """Render a task graph as Graphviz DOT text.

    Args:
        name: the graph's DOT identifier.
        rankdir: layout direction (TB like Figure 9, or LR).
        show_weights: append each task's weight to its label.
        highlight_critical_path: draw the critical path in bold red.
        node_colors: optional fill color per task name.

    Raises:
        ValueError: for an invalid rankdir.
    """
    if rankdir not in ("TB", "LR", "BT", "RL"):
        raise ValueError(f"invalid rankdir {rankdir!r}")
    cp_edges = set()
    cp_nodes = set()
    if highlight_critical_path:
        _, path = graph.critical_path()
        cp_nodes = set(path)
        cp_edges = set(zip(path, path[1:]))

    lines = [f"digraph {name} {{", f"  rankdir={rankdir};",
             "  node [shape=box];"]
    for task in graph.tasks:
        label = task
        if show_weights:
            label += f"\\n({graph.weight(task):g})"
        attrs = [f'label="{label}"']
        if node_colors and task in node_colors:
            attrs.append(f'style=filled, fillcolor="{node_colors[task]}"')
        elif task in cp_nodes:
            attrs.append("color=red, penwidth=2")
        lines.append(f"  {_quote(task)} [{', '.join(attrs)}];")
    for u, v in graph.edges:
        attrs = ""
        if (u, v) in cp_edges:
            attrs = " [color=red, penwidth=2]"
        lines.append(f"  {_quote(u)} -> {_quote(v)}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot_notes(graph: TaskGraph, schedule) -> str:
    """DOT with each node annotated by its scheduled (proc, start-end).

    ``schedule`` is a :class:`repro.depgraph.schedule_dag.DagSchedule`.
    """
    colors = {}
    palette = ["#cfe8ff", "#ffd9cf", "#d6f5d6", "#fff3bf", "#e6d6ff",
               "#ffd6eb", "#d9fff8", "#f0e0c0"]
    labels: Dict[str, str] = {}
    for task in graph.tasks:
        st = schedule.tasks[task]
        colors[task] = palette[st.processor % len(palette)]
        labels[task] = f"P{st.processor}: {st.start:g}-{st.end:g}"
    base = to_dot(graph, node_colors=colors)
    # Append scheduling info as xlabels via comment lines (renderers keep
    # comments; humans read them).
    notes = "\n".join(f"// {t}: {labels[t]}" for t in graph.tasks)
    return base + "\n" + notes
