"""List scheduling of task graphs onto P processors.

The Knox follow-up stops at *drawing* the dependency graph; the natural
next step — the "expand the discussion of dependencies" future work — is
scheduling it: given the Jordan DAG and P students, when does each task
run and how long does the whole flag take?

This module implements classic greedy list scheduling with pluggable
priorities (critical-path/HLF by default), verifies Graham's bound
(makespan <= work/P + critical path), and reports per-processor timelines
— the bridge from the unplugged activity to real scheduling theory.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .graph import GraphError, TaskGraph


class ScheduleError(Exception):
    """Raised for invalid scheduling inputs."""


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement: processor, start and end time."""

    task: str
    processor: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Task length in weight units."""
        return self.end - self.start


@dataclass
class DagSchedule:
    """A complete schedule of a task graph on P processors."""

    n_processors: int
    tasks: Dict[str, ScheduledTask] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last task (0.0 when empty)."""
        return max((t.end for t in self.tasks.values()), default=0.0)

    def processor_timeline(self, proc: int) -> List[ScheduledTask]:
        """Tasks on one processor, in start order."""
        return sorted(
            (t for t in self.tasks.values() if t.processor == proc),
            key=lambda t: t.start,
        )

    def processor_busy(self, proc: int) -> float:
        """Total busy time of one processor."""
        return sum(t.duration for t in self.tasks.values()
                   if t.processor == proc)

    def utilization(self) -> float:
        """Mean processor busy fraction over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(t.duration for t in self.tasks.values())
        return busy / (self.n_processors * span)

    def validate(self, graph: TaskGraph) -> None:
        """Check the schedule against the graph's constraints.

        Raises:
            ScheduleError: on missing tasks, precedence violations, or
                overlapping tasks on one processor.
        """
        missing = set(graph.tasks) - set(self.tasks)
        if missing:
            raise ScheduleError(f"unscheduled tasks: {sorted(missing)}")
        for name, st in self.tasks.items():
            for dep in graph.predecessors(name):
                if self.tasks[dep].end > st.start + 1e-9:
                    raise ScheduleError(
                        f"{name} starts at {st.start} before its "
                        f"dependency {dep} ends at {self.tasks[dep].end}"
                    )
        for p in range(self.n_processors):
            timeline = self.processor_timeline(p)
            for a, b in zip(timeline, timeline[1:]):
                if a.end > b.start + 1e-9:
                    raise ScheduleError(
                        f"processor {p}: {a.task} and {b.task} overlap"
                    )


#: A priority function: higher value = scheduled earlier among ready tasks.
Priority = Callable[[TaskGraph, str], float]


def critical_path_priority(graph: TaskGraph, task: str) -> float:
    """Length of the longest downstream path including the task (HLF)."""
    memo: Dict[str, float] = {}

    def downstream(n: str) -> float:
        if n in memo:
            return memo[n]
        succ = graph.successors(n)
        memo[n] = graph.weight(n) + (max(downstream(s) for s in succ)
                                     if succ else 0.0)
        return memo[n]

    return downstream(task)


def weight_priority(graph: TaskGraph, task: str) -> float:
    """Largest-task-first."""
    return graph.weight(task)


def fifo_priority(graph: TaskGraph, task: str) -> float:
    """No prioritization (ties broken by name for determinism)."""
    return 0.0


def list_schedule(
    graph: TaskGraph,
    n_processors: int,
    priority: Priority = critical_path_priority,
) -> DagSchedule:
    """Greedy list scheduling: whenever a processor is free, give it the
    highest-priority ready task.

    Deterministic: ties break on task name, processors are assigned in
    index order.

    Raises:
        ScheduleError: for a non-positive processor count.
    """
    if n_processors < 1:
        raise ScheduleError(f"need at least one processor, got {n_processors}")

    prio = {t: priority(graph, t) for t in graph.tasks}
    indeg = {t: len(graph.predecessors(t)) for t in graph.tasks}
    ready: List[Tuple[float, str]] = [
        (-prio[t], t) for t in graph.tasks if indeg[t] == 0
    ]
    heapq.heapify(ready)

    # (free_time, processor index)
    procs: List[Tuple[float, int]] = [(0.0, i) for i in range(n_processors)]
    heapq.heapify(procs)
    # Earliest start of each task (dependency releases).
    release: Dict[str, float] = {t: 0.0 for t in graph.tasks}

    schedule = DagSchedule(n_processors=n_processors)
    # Event-driven: pull the earliest-free processor; if no task is ready
    # at that moment, advance to the next dependency completion.
    pending_until: List[Tuple[float, str]] = []  # (available_at, task)

    while ready or pending_until:
        now, p = heapq.heappop(procs)
        # Move newly-released tasks into the ready heap.
        while pending_until and pending_until[0][0] <= now + 1e-12:
            _, t = heapq.heappop(pending_until)
            heapq.heappush(ready, (-prio[t], t))
        if not ready:
            if not pending_until:
                break
            # Idle until the next release.
            now = max(now, pending_until[0][0])
            heapq.heappush(procs, (now, p))
            continue
        _, task = heapq.heappop(ready)
        start = max(now, release[task])
        end = start + graph.weight(task)
        schedule.tasks[task] = ScheduledTask(task, p, start, end)
        heapq.heappush(procs, (end, p))
        for succ in graph.successors(task):
            indeg[succ] -= 1
            release[succ] = max(release[succ], end)
            if indeg[succ] == 0:
                heapq.heappush(pending_until, (end, succ))

    if len(schedule.tasks) != graph.n_tasks:
        raise ScheduleError(
            f"scheduled {len(schedule.tasks)} of {graph.n_tasks} tasks"
        )
    return schedule


def graham_bound(graph: TaskGraph, n_processors: int) -> float:
    """Graham's list-scheduling guarantee: work/P + critical path.

    Any list schedule's makespan is at most this (and at least
    max(work/P, critical path)).
    """
    cp, _ = graph.critical_path()
    return graph.total_work() / n_processors + cp


def lower_bound(graph: TaskGraph, n_processors: int) -> float:
    """max(work / P, critical path): no schedule can beat this."""
    cp, _ = graph.critical_path()
    return max(graph.total_work() / n_processors, cp)


def speedup_curve(
    graph: TaskGraph,
    processors: List[int],
    priority: Priority = critical_path_priority,
) -> Dict[int, float]:
    """Scheduled speedup (work / makespan) per processor count."""
    out: Dict[int, float] = {}
    work = graph.total_work()
    for p in processors:
        sched = list_schedule(graph, p, priority)
        out[p] = work / sched.makespan if sched.makespan > 0 else 1.0
    return out
