"""Region algebra over grid cells, vectorized with numpy boolean masks.

A :class:`Region` describes a set of cells on a ``rows x cols`` grid.  Flag
specifications are built from regions (stripes, rectangles, triangles,
diagonal bands, discs, polygons) combined with set algebra (union,
intersection, difference).  Regions are *lazy*: they carry a closed-form
membership test and only materialize a boolean mask when asked, so a region
can be reused across grid sizes.

Masks are computed with vectorized numpy operations on index grids — no
per-cell Python loops — following the HPC guidance to vectorize the raster
hot path.

Coordinate convention: ``(row, col)`` with row 0 at the *top* of the flag,
matching how students read the gridded paper.  Fractional geometry (e.g.
"the middle third") is expressed in unit coordinates ``[0, 1] x [0, 1]`` and
scaled to the concrete grid when the mask is materialized; a cell belongs to
a region when its *center* does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

Cell = Tuple[int, int]


def _centers(rows: int, cols: int) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-square coordinates of every cell center.

    Returns ``(y, x)`` arrays of shape ``(rows, cols)`` where ``y`` grows
    downward from 0 (top) to 1 (bottom) and ``x`` grows rightward.
    """
    y = (np.arange(rows, dtype=np.float64)[:, None] + 0.5) / rows
    x = (np.arange(cols, dtype=np.float64)[None, :] + 0.5) / cols
    return np.broadcast_to(y, (rows, cols)), np.broadcast_to(x, (rows, cols))


class Region(abc.ABC):
    """Abstract cell set with numpy mask materialization and set algebra."""

    #: How fiddly this region's *outline* is to color carefully.  1.0 means
    #: trivial (straight stripe edges); intricate shapes (maple leaf, star,
    #: diagonal bands) cost more per boundary cell — the mechanism behind
    #: the paper's "the intricate maple leaf slowed progress" observation.
    INTRICACY: float = 1.0

    @abc.abstractmethod
    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean array of shape ``(rows, cols)``, True where cells belong."""

    def intricacy(self) -> float:
        """Per-boundary-cell coloring difficulty multiplier (>= 1.0)."""
        return self.INTRICACY

    def boundary_mask(self, rows: int, cols: int) -> np.ndarray:
        """Member cells with at least one 4-neighbor outside the region.

        Grid edges do not count as boundary: a stripe flush against the
        paper's edge has nothing to color around there.
        """
        m = self.mask(rows, cols)
        inner = np.zeros_like(m)
        # A cell is interior if all in-grid 4-neighbors are members.
        up = np.ones_like(m); up[1:, :] = m[:-1, :]
        down = np.ones_like(m); down[:-1, :] = m[1:, :]
        left = np.ones_like(m); left[:, 1:] = m[:, :-1]
        right = np.ones_like(m); right[:, :-1] = m[:, 1:]
        inner = m & up & down & left & right
        return m & ~inner

    def cells(self, rows: int, cols: int) -> List[Cell]:
        """The member cells in row-major order."""
        r, c = np.nonzero(self.mask(rows, cols))
        return list(zip(r.tolist(), c.tolist()))

    def count(self, rows: int, cols: int) -> int:
        """Number of member cells on the given grid."""
        return int(self.mask(rows, cols).sum())

    def is_empty(self, rows: int, cols: int) -> bool:
        """True when the region covers no cell of the given grid."""
        return not self.mask(rows, cols).any()

    # -- set algebra -------------------------------------------------------
    def union(self, other: "Region") -> "Region":
        """Cells in either region."""
        return _Union((self, other))

    def intersection(self, other: "Region") -> "Region":
        """Cells in both regions."""
        return _Intersection((self, other))

    def difference(self, other: "Region") -> "Region":
        """Cells in this region but not the other."""
        return _Difference(self, other)

    def complement(self) -> "Region":
        """Cells not in this region."""
        return _Complement(self)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement


# ---------------------------------------------------------------------------
# Primitive regions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FullGrid(Region):
    """Every cell — the whole sheet of gridded paper."""

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        return np.ones((rows, cols), dtype=bool)


@dataclass(frozen=True)
class EmptyRegion(Region):
    """No cells at all; the identity for union."""

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        return np.zeros((rows, cols), dtype=bool)


@dataclass(frozen=True)
class CellSet(Region):
    """An explicit, grid-specific set of ``(row, col)`` cells.

    Cells outside the materialized grid are silently clipped, so a CellSet
    built for a large grid degrades gracefully on a smaller one.
    """

    members: Tuple[Cell, ...]

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        out = np.zeros((rows, cols), dtype=bool)
        for r, c in self.members:
            if 0 <= r < rows and 0 <= c < cols:
                out[r, c] = True
        return out


@dataclass(frozen=True)
class Rect(Region):
    """Axis-aligned rectangle in unit coordinates ``[y0, y1) x [x0, x1)``.

    A cell belongs when its center falls inside the half-open box.  The
    half-open convention makes adjacent rectangles tile without overlap:
    ``Rect(0, 0, .5, 1) | Rect(.5, 0, 1, 1)`` exactly covers the grid.
    """

    y0: float
    x0: float
    y1: float
    x1: float

    def __post_init__(self) -> None:
        if self.y1 < self.y0 or self.x1 < self.x0:
            raise ValueError(
                f"degenerate Rect: ({self.y0},{self.x0})..({self.y1},{self.x1})"
            )

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        y, x = _centers(rows, cols)
        return (y >= self.y0) & (y < self.y1) & (x >= self.x0) & (x < self.x1)


def horizontal_stripe(index: int, total: int) -> Rect:
    """The ``index``-th of ``total`` equal horizontal stripes (0 = top)."""
    if not 0 <= index < total:
        raise ValueError(f"stripe index {index} out of range for {total} stripes")
    return Rect(index / total, 0.0, (index + 1) / total, 1.0)


def vertical_stripe(index: int, total: int) -> Rect:
    """The ``index``-th of ``total`` equal vertical stripes (0 = left)."""
    if not 0 <= index < total:
        raise ValueError(f"stripe index {index} out of range for {total} stripes")
    return Rect(0.0, index / total, 1.0, (index + 1) / total)


@dataclass(frozen=True)
class HalfPlane(Region):
    """Cells on one side of the line ``a*x + b*y <= c`` (unit coordinates)."""

    a: float
    b: float
    c: float

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        y, x = _centers(rows, cols)
        return self.a * x + self.b * y <= self.c


@dataclass(frozen=True)
class Band(Region):
    """Cells within distance ``width/2`` of the line ``a*x + b*y = c``.

    Used for the diagonal strokes of the Union Jack.  Distance is measured
    in unit coordinates after normalizing the line equation.
    """

    INTRICACY = 1.35

    a: float
    b: float
    c: float
    width: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("band width must be positive")
        if self.a == 0 and self.b == 0:
            raise ValueError("degenerate band: a and b both zero")

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        y, x = _centers(rows, cols)
        norm = float(np.hypot(self.a, self.b))
        dist = np.abs(self.a * x + self.b * y - self.c) / norm
        return dist <= self.width / 2.0


@dataclass(frozen=True)
class Disc(Region):
    """Filled circle of given radius centered at ``(cy, cx)`` (unit coords).

    Radius is measured in the *y* unit so a disc keeps its aspect ratio on
    non-square grids (x distances are scaled by the grid aspect).
    """

    INTRICACY = 1.5

    cy: float
    cx: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("disc radius must be positive")

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        y, x = _centers(rows, cols)
        aspect = cols / rows
        dy = y - self.cy
        dx = (x - self.cx) * aspect
        return dy * dy + dx * dx <= self.radius * self.radius


@dataclass(frozen=True)
class Polygon(Region):
    """Filled simple polygon given by unit-coordinate ``(y, x)`` vertices.

    Membership is decided by the even-odd (ray casting) rule, evaluated
    vectorized across all cell centers at once.  Used for the maple leaf of
    the Canadian flag and the star of the Jordan flag.
    """

    INTRICACY = 1.8

    vertices: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("polygon needs at least 3 vertices")

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        y, x = _centers(rows, cols)
        inside = np.zeros((rows, cols), dtype=bool)
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            y1, x1 = verts[i]
            y2, x2 = verts[(i + 1) % n]
            # Does the horizontal ray from each center cross edge (v1, v2)?
            crosses = (y1 > y) != (y2 > y)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_at = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            hit = crosses & (x < x_at)
            inside ^= hit
        return inside


@dataclass(frozen=True)
class Triangle(Region):
    """Filled triangle — a 3-vertex :class:`Polygon` with a clearer name."""

    INTRICACY = 1.4

    p1: Tuple[float, float]
    p2: Tuple[float, float]
    p3: Tuple[float, float]

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        return Polygon((self.p1, self.p2, self.p3)).mask(rows, cols)


# ---------------------------------------------------------------------------
# Combinators
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Union(Region):
    parts: Tuple[Region, ...]

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        out = np.zeros((rows, cols), dtype=bool)
        for p in self.parts:
            out |= p.mask(rows, cols)
        return out

    def intricacy(self) -> float:
        return max(p.intricacy() for p in self.parts)


@dataclass(frozen=True)
class _Intersection(Region):
    parts: Tuple[Region, ...]

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        out = np.ones((rows, cols), dtype=bool)
        for p in self.parts:
            out &= p.mask(rows, cols)
        return out

    def intricacy(self) -> float:
        return max(p.intricacy() for p in self.parts)


@dataclass(frozen=True)
class _Difference(Region):
    left: Region
    right: Region

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        return self.left.mask(rows, cols) & ~self.right.mask(rows, cols)

    def intricacy(self) -> float:
        return max(self.left.intricacy(), self.right.intricacy())


@dataclass(frozen=True)
class _Complement(Region):
    inner: Region

    def mask(self, rows: int, cols: int) -> np.ndarray:
        """Boolean membership mask for a concrete grid."""
        return ~self.inner.mask(rows, cols)

    def intricacy(self) -> float:
        return self.inner.intricacy()


def union_all(regions: Sequence[Region]) -> Region:
    """Union of arbitrarily many regions (empty sequence → empty region)."""
    if not regions:
        return EmptyRegion()
    return _Union(tuple(regions))


def iter_cells_rowmajor(mask: np.ndarray) -> Iterator[Cell]:
    """Yield True cells of a boolean mask in row-major order."""
    rs, cs = np.nonzero(mask)
    for r, c in zip(rs.tolist(), cs.tolist()):
        yield (r, c)
