"""Rendering of canvases and color-code images: ANSI, ASCII, PPM, SVG.

These renderers reproduce the visual artifacts of the paper: Figure 1's
scenario grids, Figure 2's Canadian flag grid, and the flags of Great
Britain and Jordan.  Everything is plain-text or simple file formats so the
library has no plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .canvas import Canvas
from .palette import Color

_RESET = "\x1b[0m"

#: Single-character glyphs for ASCII rendering (no color support needed).
_GLYPH = {
    Color.BLANK: ".",
    Color.RED: "R",
    Color.BLUE: "B",
    Color.YELLOW: "Y",
    Color.GREEN: "G",
    Color.WHITE: "W",
    Color.BLACK: "K",
}


def _codes_of(source: Union[Canvas, np.ndarray]) -> np.ndarray:
    if isinstance(source, Canvas):
        return source.codes
    return np.asarray(source)


def to_ascii(source: Union[Canvas, np.ndarray]) -> str:
    """Plain-ASCII rendering, one glyph per cell, rows separated by newlines.

    Useful in tests and docstrings: ``R`` red, ``B`` blue, ``Y`` yellow,
    ``G`` green, ``W`` white, ``K`` black, ``.`` blank.
    """
    codes = _codes_of(source)
    lines = []
    for row in codes:
        lines.append("".join(_GLYPH[Color(int(v))] for v in row))
    return "\n".join(lines)


def from_ascii(art: str) -> np.ndarray:
    """Parse :func:`to_ascii` output back into a color-code array.

    Ragged rows raise ``ValueError`` so test fixtures fail loudly.
    """
    glyph_to_code = {g: int(c) for c, g in _GLYPH.items()}
    rows = [line for line in art.strip("\n").splitlines()]
    if not rows:
        raise ValueError("empty ascii art")
    width = len(rows[0])
    out = np.zeros((len(rows), width), dtype=np.int8)
    for r, line in enumerate(rows):
        if len(line) != width:
            raise ValueError(f"ragged ascii art: row {r} has {len(line)} != {width}")
        for c, ch in enumerate(line):
            try:
                out[r, c] = glyph_to_code[ch]
            except KeyError:
                raise ValueError(f"unknown glyph {ch!r} at ({r},{c})") from None
    return out


def to_ansi(source: Union[Canvas, np.ndarray], *, cell_width: int = 2) -> str:
    """24-bit-color terminal rendering, ``cell_width`` spaces per cell."""
    codes = _codes_of(source)
    lines = []
    for row in codes:
        parts = []
        for v in row:
            parts.append(Color(int(v)).ansi + " " * cell_width)
        lines.append("".join(parts) + _RESET)
    return "\n".join(lines)


def to_ppm(source: Union[Canvas, np.ndarray], *, scale: int = 16) -> bytes:
    """Binary PPM (P6) image bytes, each cell blown up to ``scale`` pixels."""
    codes = _codes_of(source)
    rows, cols = codes.shape
    rgb = np.zeros((rows, cols, 3), dtype=np.uint8)
    for color in Color:
        rgb[codes == int(color)] = color.rgb
    big = np.repeat(np.repeat(rgb, scale, axis=0), scale, axis=1)
    header = f"P6\n{cols * scale} {rows * scale}\n255\n".encode()
    return header + big.tobytes()


def to_svg(
    source: Union[Canvas, np.ndarray],
    *,
    cell: int = 20,
    grid_lines: bool = True,
    numbers: Optional[np.ndarray] = None,
) -> str:
    """SVG rendering with optional grid lines and per-cell numbering.

    The ``numbers`` argument reproduces the paper's Section IV advice to
    number cells to convey coloring order (Figure 1): pass an int array the
    same shape as the canvas; cells with value >= 0 get their number drawn.
    """
    codes = _codes_of(source)
    rows, cols = codes.shape
    w, h = cols * cell, rows * cell
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
        f'viewBox="0 0 {w} {h}">'
    ]
    for r in range(rows):
        for c in range(cols):
            cr, cg, cb = Color(int(codes[r, c])).rgb
            parts.append(
                f'<rect x="{c * cell}" y="{r * cell}" width="{cell}" '
                f'height="{cell}" fill="rgb({cr},{cg},{cb})"/>'
            )
    if grid_lines:
        for r in range(rows + 1):
            parts.append(
                f'<line x1="0" y1="{r * cell}" x2="{w}" y2="{r * cell}" '
                f'stroke="#888" stroke-width="1"/>'
            )
        for c in range(cols + 1):
            parts.append(
                f'<line x1="{c * cell}" y1="0" x2="{c * cell}" y2="{h}" '
                f'stroke="#888" stroke-width="1"/>'
            )
    if numbers is not None:
        numbers = np.asarray(numbers)
        if numbers.shape != codes.shape:
            raise ValueError(
                f"numbers shape {numbers.shape} != canvas shape {codes.shape}"
            )
        fs = max(6, cell // 2)
        for r in range(rows):
            for c in range(cols):
                n = int(numbers[r, c])
                if n >= 0:
                    parts.append(
                        f'<text x="{c * cell + cell // 2}" '
                        f'y="{r * cell + cell // 2 + fs // 3}" '
                        f'font-size="{fs}" text-anchor="middle" '
                        f'fill="#222">{n}</text>'
                    )
    parts.append("</svg>")
    return "".join(parts)
