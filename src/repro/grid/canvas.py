"""The gridded paper: a numpy-backed raster canvas of colored cells.

A :class:`Canvas` records, for every cell, which color it carries, how well
it was filled (coverage quality), who colored it, and at what simulated time.
It is the shared mutable state the simulated student-processors write into,
and the artifact the "instructor" inspects afterwards.

The color plane is a dense ``int8`` array indexed ``[row, col]``; bulk
queries (coverage, correctness against a target image, per-color counts) are
vectorized numpy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .palette import Color
from .regions import Region

Cell = Tuple[int, int]


class CanvasError(Exception):
    """Raised for out-of-range cells or invalid canvas operations."""


@dataclass(frozen=True)
class Stroke:
    """One cell-coloring action, as recorded in the canvas history.

    Attributes:
        cell: the (row, col) colored.
        color: the color applied.
        agent: identifier of the processor/student who colored it
            (None for direct library writes outside a simulation).
        time: simulated completion time of the stroke (None outside a sim).
        coverage: fraction of the cell area actually inked, in (0, 1];
            reflects the fill style (minimal dot vs scribble vs full fill)
            discussed in Section IV of the paper.
    """

    cell: Cell
    color: Color
    agent: Optional[str] = None
    time: Optional[float] = None
    coverage: float = 1.0


@dataclass
class Canvas:
    """A ``rows x cols`` sheet of gridded paper.

    The canvas enforces single-assignment per cell by default
    (``allow_overpaint=False``): coloring an already-colored cell raises.
    Layered paint programs (Great Britain, Jordan) set
    ``allow_overpaint=True`` so later layers can paint over earlier ones,
    exactly like the layered coloring technique the paper describes.
    """

    rows: int
    cols: int
    allow_overpaint: bool = False
    codes: np.ndarray = field(init=False, repr=False)
    coverage: np.ndarray = field(init=False, repr=False)
    history: List[Stroke] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise CanvasError(f"canvas must be non-empty, got {self.rows}x{self.cols}")
        self.codes = np.zeros((self.rows, self.cols), dtype=np.int8)
        self.coverage = np.zeros((self.rows, self.cols), dtype=np.float32)

    # -- basic cell access ---------------------------------------------------
    def _check(self, cell: Cell) -> None:
        r, c = cell
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise CanvasError(f"cell {cell} outside {self.rows}x{self.cols} canvas")

    def color_at(self, cell: Cell) -> Color:
        """The color currently on a cell (``Color.BLANK`` if untouched)."""
        self._check(cell)
        return Color(int(self.codes[cell]))

    def is_colored(self, cell: Cell) -> bool:
        """True once any non-blank color has been applied to the cell."""
        self._check(cell)
        return self.codes[cell] != Color.BLANK

    def paint(
        self,
        cell: Cell,
        color: Color,
        *,
        agent: Optional[str] = None,
        time: Optional[float] = None,
        coverage: float = 1.0,
    ) -> Stroke:
        """Color one cell, recording the stroke in the history.

        Raises:
            CanvasError: on out-of-range cells, blank color, coverage outside
                (0, 1], or overpainting when ``allow_overpaint`` is False.
        """
        self._check(cell)
        if color is Color.BLANK or color == Color.BLANK:
            raise CanvasError("cannot paint with BLANK; cells start blank")
        if not 0.0 < coverage <= 1.0:
            raise CanvasError(f"coverage must be in (0, 1], got {coverage}")
        if self.is_colored(cell) and not self.allow_overpaint:
            raise CanvasError(
                f"cell {cell} already colored {self.color_at(cell).name}; "
                "overpainting disabled"
            )
        self.codes[cell] = int(color)
        self.coverage[cell] = coverage
        stroke = Stroke(cell=cell, color=Color(color), agent=agent, time=time,
                        coverage=coverage)
        self.history.append(stroke)
        return stroke

    def paint_region(
        self,
        region: Region,
        color: Color,
        *,
        agent: Optional[str] = None,
        coverage: float = 1.0,
    ) -> int:
        """Bulk-paint every cell of a region (row-major); returns cell count.

        This is the vectorized "library" path used to compute reference
        images; simulated students instead paint cell by cell through
        :meth:`paint` so their strokes carry timestamps.
        """
        mask = region.mask(self.rows, self.cols)
        if color is Color.BLANK:
            raise CanvasError("cannot paint with BLANK")
        if not self.allow_overpaint and (self.codes[mask] != 0).any():
            raise CanvasError("region overlaps already-colored cells")
        self.codes[mask] = int(color)
        self.coverage[mask] = coverage
        n = int(mask.sum())
        rs, cs = np.nonzero(mask)
        for r, c in zip(rs.tolist(), cs.tolist()):
            self.history.append(
                Stroke(cell=(r, c), color=color, agent=agent, coverage=coverage)
            )
        return n

    # -- bulk queries ----------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total number of cells on the sheet."""
        return self.rows * self.cols

    def n_colored(self) -> int:
        """How many cells carry some color."""
        return int((self.codes != 0).sum())

    def fraction_colored(self) -> float:
        """Colored cells as a fraction of the whole sheet."""
        return self.n_colored() / self.n_cells

    def color_counts(self) -> Dict[Color, int]:
        """Cell count per non-blank color currently on the canvas."""
        out: Dict[Color, int] = {}
        vals, counts = np.unique(self.codes, return_counts=True)
        for v, n in zip(vals.tolist(), counts.tolist()):
            if v != 0:
                out[Color(v)] = n
        return out

    def matches(self, target: np.ndarray, *, ignore_blank_target: bool = True) -> bool:
        """Whether this canvas reproduces a target color-code image.

        Args:
            target: int array of shape (rows, cols) of expected color codes.
            ignore_blank_target: when True, cells the target leaves blank may
                be anything (mirrors the "white stripe can be omitted because
                paper is white" grading rule from Section V-C).
        """
        if target.shape != (self.rows, self.cols):
            raise CanvasError(
                f"target shape {target.shape} != canvas {self.rows}x{self.cols}"
            )
        if ignore_blank_target:
            care = target != 0
            return bool(np.array_equal(self.codes[care], target[care]))
        return bool(np.array_equal(self.codes, target))

    def diff(self, target: np.ndarray) -> List[Cell]:
        """Cells whose color differs from a target image (blank-sensitive)."""
        if target.shape != (self.rows, self.cols):
            raise CanvasError(
                f"target shape {target.shape} != canvas {self.rows}x{self.cols}"
            )
        rs, cs = np.nonzero(self.codes != target)
        return list(zip(rs.tolist(), cs.tolist()))

    def mean_coverage(self) -> float:
        """Average fill quality over colored cells (0.0 if none colored)."""
        mask = self.codes != 0
        if not mask.any():
            return 0.0
        return float(self.coverage[mask].mean())

    def agent_cell_counts(self) -> Dict[str, int]:
        """How many strokes each agent contributed (latest-stroke-wins not
        applied; every stroke counts, matching 'work done' not 'cells owned')."""
        out: Dict[str, int] = {}
        for s in self.history:
            if s.agent is not None:
                out[s.agent] = out.get(s.agent, 0) + 1
        return out

    def copy_blank(self) -> "Canvas":
        """A fresh blank canvas with the same dimensions and overpaint mode."""
        return Canvas(self.rows, self.cols, allow_overpaint=self.allow_overpaint)

    def snapshot(self) -> np.ndarray:
        """An independent copy of the color-code plane."""
        return self.codes.copy()
