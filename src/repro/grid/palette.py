"""Color palette for the flag-coloring activity.

The unplugged activity equips each team with one drawing implement per color
(red, blue, yellow, green for the flag of Mauritius).  This module defines the
closed set of colors the library understands, together with their display
properties (ANSI escape codes for terminal rendering, RGB triples for PPM/SVG
export) and the integer codes used in the numpy-backed canvas.

Color code 0 is reserved for *blank* (uncolored paper).  All real colors are
strictly positive so that a canvas full of zeros means "nothing colored yet"
and boolean coverage masks can be computed as ``canvas.codes > 0``.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class Color(enum.IntEnum):
    """A drawing color, encoded as a small positive integer.

    ``BLANK`` (0) represents uncolored paper.  ``WHITE`` is an explicit color
    (white crayon/marker) distinct from blank paper even though they render
    similarly; the distinction matters for the Jordan flag dependency graph,
    where students may legitimately omit the white stripe because the paper is
    already white (Section V-C of the paper).
    """

    BLANK = 0
    RED = 1
    BLUE = 2
    YELLOW = 3
    GREEN = 4
    WHITE = 5
    BLACK = 6

    @property
    def is_blank(self) -> bool:
        """True for the reserved no-color value."""
        return self is Color.BLANK

    @property
    def rgb(self) -> Tuple[int, int, int]:
        """The display RGB triple for image export."""
        return _RGB[self]

    @property
    def ansi(self) -> str:
        """ANSI SGR background escape for terminal rendering."""
        return _ANSI[self]

    @classmethod
    def from_name(cls, name: str) -> "Color":
        """Look up a color by case-insensitive name.

        Raises:
            KeyError: if the name is not a known color.
        """
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise KeyError(f"unknown color name: {name!r}") from None


#: RGB display values (roughly the official flag shades).
_RGB: Dict[Color, Tuple[int, int, int]] = {
    Color.BLANK: (245, 245, 245),
    Color.RED: (234, 38, 57),
    Color.BLUE: (0, 38, 127),
    Color.YELLOW: (255, 214, 0),
    Color.GREEN: (0, 165, 80),
    Color.WHITE: (255, 255, 255),
    Color.BLACK: (20, 20, 20),
}

#: ANSI 24-bit background escapes.
_ANSI: Dict[Color, str] = {
    c: f"\x1b[48;2;{r};{g};{b}m" for c, (r, g, b) in _RGB.items()
}

#: The classic Mauritius four-stripe order, top to bottom.
MAURITIUS_STRIPES: Tuple[Color, ...] = (
    Color.RED,
    Color.BLUE,
    Color.YELLOW,
    Color.GREEN,
)

#: Every non-blank color, in enum order.
ALL_COLORS: Tuple[Color, ...] = tuple(c for c in Color if not c.is_blank)


def color_name(code: int) -> str:
    """Human-readable lowercase name for a color code.

    Accepts raw ints (as stored in a canvas) as well as :class:`Color`.
    """
    return Color(code).name.lower()
