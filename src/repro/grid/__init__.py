"""Raster substrate: the gridded paper students color.

Public surface:

- :class:`~repro.grid.palette.Color` — the closed color set.
- :class:`~repro.grid.canvas.Canvas` — numpy-backed sheet of cells with
  stroke history.
- :mod:`~repro.grid.regions` — lazy vectorized region algebra (stripes,
  rectangles, triangles, bands, discs, polygons, set ops).
- :mod:`~repro.grid.render` — ASCII/ANSI/PPM/SVG output.
"""

from .palette import ALL_COLORS, MAURITIUS_STRIPES, Color, color_name
from .canvas import Canvas, CanvasError, Stroke
from .regions import (
    Band,
    CellSet,
    Disc,
    EmptyRegion,
    FullGrid,
    HalfPlane,
    Polygon,
    Rect,
    Region,
    Triangle,
    horizontal_stripe,
    iter_cells_rowmajor,
    union_all,
    vertical_stripe,
)
from .render import from_ascii, to_ansi, to_ascii, to_ppm, to_svg

__all__ = [
    "ALL_COLORS",
    "MAURITIUS_STRIPES",
    "Color",
    "color_name",
    "Canvas",
    "CanvasError",
    "Stroke",
    "Band",
    "CellSet",
    "Disc",
    "EmptyRegion",
    "FullGrid",
    "HalfPlane",
    "Polygon",
    "Rect",
    "Region",
    "Triangle",
    "horizontal_stripe",
    "iter_cells_rowmajor",
    "union_all",
    "vertical_stripe",
    "from_ascii",
    "to_ansi",
    "to_ascii",
    "to_ppm",
    "to_svg",
]
