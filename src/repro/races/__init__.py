"""Two-layer concurrency race detection for the repo's threaded code.

The paper's core lesson — concurrent agents sharing implements need
explicit coordination or they corrupt the flag — applied to our own
runtime: the stream fan-out bus, the store's RLock-guarded connection,
the fabric coordinator's worker threads, and serve's background server
are hand-locked, and this package proves the discipline instead of
asserting it in comments.

* :mod:`repro.races.lockset` — **static** lockset analysis (AST): per
  class, infer which ``self._x`` attributes are guarded (every write
  outside ``__init__`` under ``with self._lock:``) and flag any access
  that skips the lock.  ``repro racecheck src/repro`` runs it repo-wide
  against the justified allowlist in ``tools/races_allow.txt``.
* :mod:`repro.races.sanitizer` — **dynamic** happens-before sanitizer:
  vector-clock shims for ``Lock``/``RLock``/``Condition``/``Thread``
  and deque hand-offs, flagging unordered conflicting accesses to
  registered shared state.  Deterministic by construction (findings
  depend on the synchronization structure, not the interleaving);
  gated into the concurrency tests by ``REPRO_SAN=1``.

Both layers emit the same canonical-JSON :class:`RaceReport` envelope
(the :class:`repro.analyze.report.AnalysisReport` house style); the
related simlint rules LOCK001/LOCK002 live in ``tools/simlint.py``.
"""

from .report import RACES_VERSION, RaceError, RaceReport, sort_findings
from .lockset import (
    Access,
    ClassLockset,
    analyze_file,
    analyze_source,
    load_allowlist,
    lockset_report,
)
from .sanitizer import (
    ENV_FLAG,
    RaceSanitizer,
    SanDeque,
    SanLock,
    SanThread,
    SharedState,
    enabled,
    maybe_sanitized,
)

__all__ = [
    "RACES_VERSION",
    "RaceError",
    "RaceReport",
    "sort_findings",
    "Access",
    "ClassLockset",
    "analyze_file",
    "analyze_source",
    "load_allowlist",
    "lockset_report",
    "ENV_FLAG",
    "RaceSanitizer",
    "SanDeque",
    "SanLock",
    "SanThread",
    "SharedState",
    "enabled",
    "maybe_sanitized",
]
