"""Deterministic happens-before sanitizer: vector clocks over shims.

The dynamic half of :mod:`repro.races` — a miniature FastTrack-style
detector that works on *happens-before*, not on observed interleaving:

* **Shims** for ``threading.Lock`` / ``RLock`` / ``Condition`` /
  ``Thread`` (installed by :meth:`RaceSanitizer.patched`) and an
  explicit :meth:`RaceSanitizer.deque` hand-off queue record
  acquire/release, fork/join, and enqueue/dequeue edges as vector
  clocks.
* **Registered shared state** — :meth:`RaceSanitizer.state` cells, or
  whole attributes intercepted via :meth:`RaceSanitizer.audited_class`
  — records every read/write with the accessing thread's clock and
  flags any pair of conflicting accesses that no chain of edges
  orders.

Why the reports are deterministic even though thread scheduling is
not: an access pair is flagged when *neither order is enforced* by the
recorded edges.  That property is a function of the program's
synchronization structure, not of which interleaving the host happened
to produce, so a genuinely unguarded counter is flagged on every run
and the normalized finding set (sorted, deduplicated, labeled by
registration-order thread ids — never by ``threading`` names or
idents) is byte-stable.  The regression suite re-runs the same racy
program repeatedly and pins byte-identical reports.

Activation in the concurrency tests is environment-gated::

    REPRO_SAN=1 python -m pytest tests/test_races_store.py ...

via :func:`maybe_sanitized`, which is a no-op (``yield None``) unless
``REPRO_SAN=1`` — the tier-1 suite pays nothing by default, the CI
``race`` job turns it on.
"""

from __future__ import annotations

import collections
import contextlib
import os
import threading
from typing import (Any, Deque, Dict, Iterator, Optional, Set, Tuple,
                    Type)

from ..analyze.report import error
from .report import RaceReport, sort_findings

#: The environment flag that turns the sanitizer on in gated tests.
ENV_FLAG = "REPRO_SAN"

# The real primitives, captured at import time so the shims (and the
# sanitizer's own internal guard) survive patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition
_REAL_THREAD = threading.Thread
_REAL_EVENT = threading.Event

#: The active sanitizer while :meth:`RaceSanitizer.patched` is live.
_ACTIVE: Optional["RaceSanitizer"] = None


def enabled() -> bool:
    """Whether ``REPRO_SAN=1`` asks gated tests to run sanitized."""
    return os.environ.get(ENV_FLAG, "") == "1"


VectorClock = Dict[int, int]


def _join(into: VectorClock, other: VectorClock) -> None:
    """Pointwise max, in place: ``into = into ⊔ other``."""
    for tid, tick in other.items():
        if tick > into.get(tid, 0):
            into[tid] = tick


class _ThreadState:
    """Per-thread sanitizer bookkeeping: deterministic id + clock."""

    def __init__(self, tid: int, label: str,
                 clock: Optional[VectorClock] = None) -> None:
        self.tid = tid
        self.label = label
        self.clock: VectorClock = dict(clock or {})
        self.clock[tid] = self.clock.get(tid, 0) + 1


class SharedState:
    """One registered shared-state cell the sanitizer watches.

    ``read()`` / ``write()`` record the access (and run the race
    check); ``value`` is optional storage for tests that want the cell
    to actually hold data.
    """

    def __init__(self, san: "RaceSanitizer", name: str) -> None:
        self.san = san
        self.name = name
        self.value: Any = None
        # per-thread epoch of the last write / read: {tid: tick}
        self.last_write: Dict[int, int] = {}
        self.last_read: Dict[int, int] = {}

    def read(self) -> Any:
        """Record a read by the current thread; returns ``value``."""
        self.san._access(self, "read")
        return self.value

    def write(self, value: Any = None) -> None:
        """Record a write by the current thread; stores ``value``."""
        self.san._access(self, "write")
        self.value = value


class SanLock:
    """A ``Lock``/``RLock`` shim carrying a release clock."""

    def __init__(self, san: "RaceSanitizer", *,
                 reentrant: bool = False) -> None:
        self._san = san
        self._real = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._clock: VectorClock = {}

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        """Acquire the underlying lock; join its release clock."""
        got = self._real.acquire(blocking, timeout)
        if got:
            self._san._on_acquire(self)
        return got

    def release(self) -> None:
        """Publish the holder's clock into the lock, then release."""
        self._san._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held."""
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class SanCondition:
    """A ``Condition`` shim: wait edges flow through the lock clock."""

    def __init__(self, san: "RaceSanitizer",
                 lock: Optional[SanLock] = None) -> None:
        self._san = san
        self._lock = lock if lock is not None else SanLock(
            san, reentrant=True)
        self._real = _REAL_CONDITION(self._lock._real)

    def acquire(self, *args: Any) -> bool:
        """Acquire the condition's lock (with edge recording)."""
        return self._lock.acquire(*args)

    def release(self) -> None:
        """Release the condition's lock (with edge recording)."""
        self._lock.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Wait; models the implicit release/re-acquire as edges."""
        self._san._on_release(self._lock)
        ok = self._real.wait(timeout)
        self._san._on_acquire(self._lock)
        return ok

    def wait_for(self, predicate: Any,
                 timeout: Optional[float] = None) -> Any:
        """Wait until ``predicate()``; one release/acquire edge pair.

        The real condition may cycle the lock several times; modeling
        the outermost release and re-acquire is conservative (it
        records no edge the program did not have).  ``Barrier`` and
        ``Event`` internals rely on this method.
        """
        self._san._on_release(self._lock)
        result = self._real.wait_for(predicate, timeout)
        self._san._on_acquire(self._lock)
        return result

    def notify(self, n: int = 1) -> None:
        """Wake ``n`` waiters (the lock hand-off carries the edge)."""
        self._real.notify(n)

    def notify_all(self) -> None:
        """Wake every waiter."""
        self._real.notify_all()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class SanEvent(_REAL_EVENT):
    """An ``Event`` pinned to the *real* primitives while patched.

    ``threading.Event.__init__`` resolves ``Condition``/``Lock`` from
    the threading module's globals — i.e. the shims, once
    :meth:`RaceSanitizer.patched` is live.  That would route
    interpreter internals (``Thread._started.set()`` fires on the
    child thread *before* ``run()`` binds its deterministic id)
    through the sanitizer and perturb tid assignment.  Events are
    internally synchronized and carry no modeled edge (the lockset
    layer excludes them for the same reason), so they stay real.
    """

    def __init__(self) -> None:
        self._cond = _REAL_CONDITION(_REAL_LOCK())
        self._flag = False


class SanThread(_REAL_THREAD):
    """A ``Thread`` shim recording fork and join edges.

    The deterministic thread id is assigned in :meth:`start` — by the
    *parent*, so ids follow program order, never the scheduler.
    """

    def start(self) -> None:
        """Snapshot the parent clock (fork edge), then start."""
        san = _ACTIVE
        self._san = san
        if san is not None:
            self._san_tid, self._san_fork = san._fork(self.name)
        self._san_final: Optional[VectorClock] = None
        super().start()

    def run(self) -> None:
        """Bind this OS thread to its pre-assigned deterministic id."""
        san = getattr(self, "_san", None)
        if san is not None:
            san._bind(self._san_tid, self._san_fork)
        try:
            super().run()
        finally:
            if san is not None:
                self._san_final = san._final_clock()

    def join(self, timeout: Optional[float] = None) -> None:
        """Join; on completion the child's clock flows to the joiner."""
        super().join(timeout)
        san = getattr(self, "_san", None)
        if (san is not None and not self.is_alive()
                and getattr(self, "_san_final", None) is not None):
            san._on_join(self._san_final)


class SanDeque:
    """A deque shim: every hand-off carries the producer's clock.

    ``append``/``appendleft`` publish the producer's clock next to the
    item; ``pop``/``popleft`` join it into the consumer — so state
    written before an enqueue and read after the matching dequeue is
    correctly ordered, exactly like the stream bus's bounded queues.
    """

    def __init__(self, san: "RaceSanitizer",
                 maxlen: Optional[int] = None) -> None:
        self._san = san
        self._items: Deque[Any] = collections.deque(maxlen=maxlen)
        self._clocks: Deque[VectorClock] = collections.deque(
            maxlen=maxlen)

    def append(self, item: Any) -> None:
        """Enqueue right, publishing the producer clock."""
        self._items.append(item)
        self._clocks.append(self._san._snapshot())

    def appendleft(self, item: Any) -> None:
        """Enqueue left, publishing the producer clock."""
        self._items.appendleft(item)
        self._clocks.appendleft(self._san._snapshot())

    def pop(self) -> Any:
        """Dequeue right, joining the producer's clock."""
        item = self._items.pop()
        self._san._on_join(self._clocks.pop())
        return item

    def popleft(self) -> Any:
        """Dequeue left, joining the producer's clock."""
        item = self._items.popleft()
        self._san._on_join(self._clocks.popleft())
        return item

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class RaceSanitizer:
    """The happens-before engine: clocks, shims, states, findings."""

    def __init__(self) -> None:
        self._guard = _REAL_LOCK()
        self._states: Dict[str, SharedState] = {}
        self._threads: Dict[int, _ThreadState] = {}  # ident -> state
        self._next_tid = 0
        self._next_obj = 0
        self._findings: Set[Tuple[str, str, Tuple[str, str]]] = set()
        self._tid_labels: Dict[int, str] = {}
        self._register_current("main")

    # -- thread bookkeeping ------------------------------------------------
    def _register_current(self, label: str,
                          tid: Optional[int] = None,
                          clock: Optional[VectorClock] = None) -> None:
        with self._guard:
            if tid is None:
                tid, self._next_tid = self._next_tid, self._next_tid + 1
            ident = threading.get_ident()
            self._threads[ident] = _ThreadState(tid, label, clock)
            self._tid_labels[tid] = label

    def _current(self) -> _ThreadState:
        """The calling thread's state (registered lazily if foreign)."""
        ts = self._threads.get(threading.get_ident())
        if ts is None:
            with self._guard:
                tid = self._next_tid
                self._next_tid += 1
                label = f"T{tid}"
                ts = _ThreadState(tid, label)
                self._threads[threading.get_ident()] = ts
                self._tid_labels[tid] = label
        return ts

    def _fork(self, name: str) -> Tuple[int, VectorClock]:
        """Parent side of thread creation: allocate tid, snapshot."""
        parent = self._current()
        with self._guard:
            tid = self._next_tid
            self._next_tid += 1
            self._tid_labels[tid] = f"T{tid}"
            parent.clock[parent.tid] += 1
            return tid, dict(parent.clock)

    def _bind(self, tid: int, fork_clock: VectorClock) -> None:
        """Child side: bind the OS thread to its deterministic id."""
        with self._guard:
            ts = _ThreadState(tid, self._tid_labels[tid], fork_clock)
            self._threads[threading.get_ident()] = ts

    def _final_clock(self) -> VectorClock:
        """The exiting thread's clock, for the join edge."""
        ts = self._current()
        with self._guard:
            ts.clock[ts.tid] += 1
            return dict(ts.clock)

    def _snapshot(self) -> VectorClock:
        """Tick and snapshot the calling thread's clock (publish)."""
        ts = self._current()
        with self._guard:
            ts.clock[ts.tid] += 1
            return dict(ts.clock)

    def _on_join(self, other: VectorClock) -> None:
        """Join an acquired clock into the calling thread."""
        ts = self._current()
        with self._guard:
            _join(ts.clock, other)
            ts.clock[ts.tid] += 1

    def _on_acquire(self, lock: SanLock) -> None:
        ts = self._current()
        with self._guard:
            _join(ts.clock, lock._clock)
            ts.clock[ts.tid] += 1

    def _on_release(self, lock: SanLock) -> None:
        ts = self._current()
        with self._guard:
            ts.clock[ts.tid] += 1
            _join(lock._clock, ts.clock)

    # -- shared state ------------------------------------------------------
    def state(self, name: str) -> SharedState:
        """Register (or fetch) a named shared-state cell."""
        with self._guard:
            cell = self._states.get(name)
            if cell is None:
                cell = self._states[name] = SharedState(self, name)
            return cell

    def _access(self, cell: SharedState, kind: str) -> None:
        """Record one access and flag unordered conflicting pairs."""
        ts = self._current()
        with self._guard:
            ts.clock[ts.tid] += 1
            epoch = ts.clock[ts.tid]
            against = (dict(cell.last_write)
                       if kind == "read"
                       else {**cell.last_write, **{
                           t: max(e, cell.last_write.get(t, 0))
                           for t, e in cell.last_read.items()}})
            for tid, prior_epoch in against.items():
                if tid == ts.tid:
                    continue
                if prior_epoch > ts.clock.get(tid, 0):
                    prior_kind = ("write"
                                  if cell.last_write.get(tid, 0)
                                  >= prior_epoch else "read")
                    pair = "/".join(sorted((kind, prior_kind)))
                    labels = tuple(sorted((self._tid_labels[tid],
                                           ts.label)))
                    self._findings.add((cell.name, pair, labels))
            if kind == "write":
                cell.last_write[ts.tid] = epoch
            else:
                cell.last_read[ts.tid] = epoch

    def audited_class(self, cls: Type[Any],
                      *attrs: str) -> Type[Any]:
        """A subclass of ``cls`` whose ``attrs`` are watched state.

        Each listed attribute becomes a data-descriptor property that
        records a read/write on a per-instance registered state cell
        (``ClsName#<n>.attr``, ``n`` in construction order — so
        reports stay deterministic) and stores the actual value in the
        instance ``__dict__`` under a mangled key.
        """
        san = self

        def make_property(attr: str) -> property:
            slot = f"_san_value_{attr}"

            def _cell(inst: Any) -> SharedState:
                idx = inst.__dict__.get("_san_obj")
                if idx is None:
                    with san._guard:
                        idx = san._next_obj
                        san._next_obj += 1
                    inst.__dict__["_san_obj"] = idx
                return san.state(f"{cls.__name__}#{idx}.{attr}")

            def getter(inst: Any) -> Any:
                _cell(inst).read()
                return inst.__dict__[slot]

            def setter(inst: Any, value: Any) -> None:
                _cell(inst).write()
                inst.__dict__[slot] = value

            return property(getter, setter,
                            doc=f"sanitizer-audited {attr}")

        namespace: Dict[str, Any] = {
            "__doc__": f"{cls.__name__} with sanitizer-audited "
                       f"attributes: {', '.join(attrs)}.",
        }
        for attr in attrs:
            namespace[attr] = make_property(attr)
        return type(f"Audited{cls.__name__}", (cls,), namespace)

    # -- shim construction -------------------------------------------------
    def lock(self) -> SanLock:
        """A sanitized non-reentrant lock."""
        return SanLock(self)

    def rlock(self) -> SanLock:
        """A sanitized reentrant lock."""
        return SanLock(self, reentrant=True)

    def condition(self, lock: Optional[SanLock] = None) -> SanCondition:
        """A sanitized condition variable."""
        return SanCondition(self, lock)

    def deque(self, maxlen: Optional[int] = None) -> SanDeque:
        """A sanitized hand-off deque."""
        return SanDeque(self, maxlen=maxlen)

    def thread(self, **kwargs: Any) -> SanThread:
        """A sanitized thread (also what patched ``Thread()`` builds)."""
        return SanThread(**kwargs)

    @contextlib.contextmanager
    def patched(self) -> Iterator["RaceSanitizer"]:
        """Swap ``threading``'s primitives for the shims, scoped.

        Everything constructed inside the block — by product code that
        calls ``threading.Lock()`` / ``RLock()`` / ``Condition()`` /
        ``Thread(...)`` — records happens-before edges.  Only one
        sanitizer can be active per process.

        Raises:
            RuntimeError: when another sanitizer is already patched in.
        """
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another RaceSanitizer is already active")
        _ACTIVE = self
        saved = (threading.Lock, threading.RLock, threading.Condition,
                 threading.Thread, threading.Event)
        threading.Lock = self.lock  # type: ignore[assignment]
        threading.RLock = self.rlock  # type: ignore[assignment]
        threading.Condition = self.condition  # type: ignore[assignment]
        threading.Thread = SanThread  # type: ignore[misc]
        threading.Event = SanEvent  # type: ignore[misc]
        try:
            yield self
        finally:
            (threading.Lock, threading.RLock, threading.Condition,
             threading.Thread, threading.Event) = saved  # type: ignore[misc]
            _ACTIVE = None

    # -- reporting ---------------------------------------------------------
    def report(self) -> RaceReport:
        """The normalized, deterministic :class:`RaceReport`.

        Findings are sorted and deduplicated on
        ``(state, access pair, thread labels)``; thread labels are the
        registration-order ids (``main``, ``T1``, ...), so two runs of
        the same program produce byte-identical JSON no matter how the
        host interleaved them.
        """
        with self._guard:
            findings = [
                error("data_race",
                      f"{pair} on {name} between {labels[0]} and "
                      f"{labels[1]}: no happens-before edge orders "
                      f"the accesses",
                      subject=name)
                for name, pair, labels in sorted(self._findings)]
            targets = tuple(sorted(self._states))
            stats = {"threads": self._next_tid,
                     "states": len(self._states)}
        return RaceReport(layer="sanitizer", targets=targets,
                          findings=sort_findings(findings),
                          stats=stats)


@contextlib.contextmanager
def maybe_sanitized(
    require_clean: bool = True,
) -> Iterator[Optional[RaceSanitizer]]:
    """Run a test body sanitized iff ``REPRO_SAN=1``.

    Yields the active :class:`RaceSanitizer` (or ``None`` when the
    environment leaves the sanitizer off — the tier-1 default, which
    costs nothing).  With ``require_clean`` the block fails loudly if
    any registered state raced.

    Raises:
        AssertionError: when ``require_clean`` and races were found.
    """
    if not enabled():
        yield None
        return
    san = RaceSanitizer()
    with san.patched():
        yield san
    report = san.report()
    if require_clean and not report.ok:
        raise AssertionError(
            "sanitizer found races:\n" + report.format())
