"""Static lockset analysis: infer guarded attributes, flag bare access.

The classic lockset discipline (Eraser's invariant) applied with
``ast`` alone, in the :mod:`tools.simlint` engine's spirit: for every
class in a threaded module, work out which ``self._x`` attributes are
*guarded* — every write outside ``__init__`` happens lexically inside
``with self._lock:`` for some consistent lock — then flag any read or
write of a guarded attribute that does not hold that lock.

What counts, precisely:

* **Locks** are attributes assigned ``threading.Lock()`` / ``RLock()``
  / ``Condition()`` anywhere in the class, plus any ``with`` context
  expression rooted at ``self`` whose final attribute looks lock-ish
  (``lock`` / ``mutex`` / ``cond`` / ``cv`` in the name) — that covers
  borrowing another object's lock (``with self._stream._lock:``).
* **Writes** are attribute assignment / augmented assignment /
  deletion, subscript stores (``self._d[k] = v``), and calls of known
  container mutators (``.append()``, ``.popleft()``, ``.update()``,
  ``.move_to_end()``, ...).  Everything else that mentions the
  attribute is a **read**.
* ``__init__`` is excluded entirely: construction happens-before
  publication, so unlocked writes there are fine.
* Methods named ``*_locked`` are excluded too — the house convention
  (see :meth:`repro.stream.bus.StreamHub._evict_locked`) is that the
  caller already holds the class lock, and the static layer trusts the
  contract it names.

Findings (codes double as allowlist keys, format
``CODE path::Class.attr -- justification``):

* ``unguarded_read`` — a guarded attribute is read without the lock.
* ``unguarded_write`` — a guarded attribute is written without the
  lock (only reachable through subscript/mutator asymmetries; plain
  write asymmetry manifests as ``mixed_guard``).
* ``mixed_guard`` — some writes hold a lock, some hold none: the lock
  protects nothing (simlint's LOCK001 is the binding-level twin).

Known limits, on purpose: only ``self.<attr>`` accesses are tracked
(cross-object accesses like ``sub.dropped`` are invisible), nested
functions are analyzed with an empty lockset (conservative), and
thread-safe metric objects (``.inc()`` / ``.observe()``) count as
reads.  The dynamic sanitizer (:mod:`repro.races.sanitizer`) covers
what this layer cannot see.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..analyze.report import Issue, error
from .report import RaceError, RaceReport, sort_findings

#: threading factories whose result makes an attribute a declared lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: threading factories whose result is internally synchronized — the
#: attribute is a coordination primitive, not shared state, so calls on
#: it (``.set()`` / ``.wait()`` / ``.clear()``) are not tracked.
_SYNC_FACTORIES = {"Event", "Semaphore", "BoundedSemaphore", "Barrier"}

#: final-attribute fragments that mark a ``with self...:`` item a lock.
_LOCKISH_FRAGMENTS = ("lock", "mutex", "cond", "cv")

#: method calls that mutate the receiver container in place.
_MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "add", "update", "setdefault", "move_to_end", "sort", "reverse",
}

#: methods excluded from guard inference and findings.
_CONSTRUCTORS = {"__init__"}


@dataclass(frozen=True)
class Access:
    """One tracked ``self.<attr>`` access inside a class body.

    Attributes:
        attr: the attribute name (first component of the chain).
        kind: ``"read"`` or ``"write"``.
        method: dotted method name within the class.
        lineno: source line of the access.
        locks: lock names lexically held at the access site.
    """

    attr: str
    kind: str
    method: str
    lineno: int
    locks: FrozenSet[str]


@dataclass(frozen=True)
class ClassLockset:
    """The lockset analysis of one class.

    Attributes:
        file: posix path of the source file.
        name: class name.
        locks: declared lock attributes (``threading.Lock()`` & co).
        guarded: attribute → sorted tuple of locks every non-``__init__``
            write holds.
        accesses: every tracked attribute access, in source order.
        findings: this class's issues (unsorted; the report sorts).
    """

    file: str
    name: str
    locks: Tuple[str, ...]
    guarded: Dict[str, Tuple[str, ...]]
    accesses: Tuple[Access, ...]
    findings: Tuple[Issue, ...]

    def summary(self) -> Dict[str, object]:
        """The JSON row :class:`~repro.races.report.RaceReport` carries."""
        return {
            "file": self.file,
            "name": self.name,
            "locks": list(self.locks),
            "guarded": {a: list(ls)
                        for a, ls in sorted(self.guarded.items())},
            "accesses": len(self.accesses),
        }


def _self_chain(node: ast.expr) -> Optional[str]:
    """Dotted attribute chain rooted at ``self``, without the root.

    ``self._stream._lock`` → ``"_stream._lock"``; anything not rooted
    at a bare ``self`` name (or ``self`` itself) → None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _is_lockish(chain: str, declared: Set[str]) -> bool:
    """Whether a ``with self...:`` context chain names a lock."""
    if chain in declared:
        return True
    last = chain.split(".")[-1].lower()
    return any(frag in last for frag in _LOCKISH_FRAGMENTS)


def _declared_locks(cls: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
    """Attributes assigned a threading primitive, split two ways.

    Returns:
        ``(locks, sync)`` — lock attributes (``Lock``/``RLock``/
        ``Condition``) and internally-synchronized primitives
        (``Event``/``Semaphore``/``Barrier``); both sets are excluded
        from access tracking, only the first can guard other state.
    """
    locks: Set[str] = set()
    sync: Set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name not in _LOCK_FACTORIES | _SYNC_FACTORIES:
            continue
        for target in node.targets:
            chain = _self_chain(target)
            if chain and "." not in chain:
                (locks if name in _LOCK_FACTORIES else sync).add(chain)
    return locks, sync


class _MethodScanner:
    """Collects :class:`Access` records for one method body."""

    def __init__(self, class_name: str, method: str,
                 lock_attrs: Set[str],
                 sync_attrs: Optional[Set[str]] = None) -> None:
        self.class_name = class_name
        self.method = method
        self.lock_attrs = lock_attrs
        self.untracked = lock_attrs | (sync_attrs or set())
        self.accesses: List[Access] = []

    def scan(self, node: ast.AST,
             held: FrozenSet[str] = frozenset()) -> None:
        """Walk a statement/expression tree tracking held locks."""
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _record(self, chain: str, kind: str, node: ast.AST,
                held: FrozenSet[str]) -> None:
        attr = chain.split(".")[0]
        if attr in self.untracked:
            return  # locks and sync primitives are how locking works
        self.accesses.append(Access(
            attr=attr, kind=kind, method=self.method,
            lineno=getattr(node, "lineno", 0), locks=held))

    def _write_target(self, target: ast.expr, node: ast.AST,
                      held: FrozenSet[str]) -> None:
        """Classify one assignment/deletion target."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt, node, held)
        elif isinstance(target, ast.Attribute):
            chain = _self_chain(target)
            if chain:
                self._record(chain, "write", node, held)
            else:
                self._visit(target.value, held)
        elif isinstance(target, ast.Subscript):
            chain = _self_chain(target.value)
            if chain:
                self._record(chain, "write", node, held)
            else:
                self._visit(target.value, held)
            self._visit(target.slice, held)
        elif isinstance(target, ast.Starred):
            self._write_target(target.value, node, held)

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            now = set(held)
            for item in node.items:
                chain = _self_chain(item.context_expr)
                if chain and _is_lockish(chain, self.lock_attrs):
                    now.add(chain)
                else:
                    self._visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held)
            for stmt in node.body:
                self._visit(stmt, frozenset(now))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            # A nested def runs at some later time with unknown locks:
            # analyze its body with an empty (conservative) lockset.
            body = (node.body if isinstance(node.body, list)
                    else [node.body])
            for stmt in body:
                self._visit(stmt, frozenset())
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._write_target(target, node, held)
            self._visit(node.value, held)
        elif isinstance(node, ast.AugAssign):
            self._write_target(node.target, node, held)
            self._visit(node.value, held)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._write_target(node.target, node, held)
                self._visit(node.value, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._write_target(target, node, held)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                chain = _self_chain(func.value)
                if chain is not None:
                    kind = ("write" if func.attr in _MUTATOR_METHODS
                            else "read")
                    self._record(chain, kind, node, held)
                else:
                    self._visit(func, held)
            else:
                self._visit(func, held)
            for arg in node.args:
                self._visit(arg, held)
            for kw in node.keywords:
                self._visit(kw.value, held)
        elif isinstance(node, ast.Attribute):
            chain = _self_chain(node)
            if chain:
                self._record(chain, "read", node, held)
            else:
                self._visit(node.value, held)
        else:
            self.scan(node, held)


def _analyze_class(cls: ast.ClassDef, relpath: str) -> ClassLockset:
    """Run guard inference + findings over one class definition."""
    lock_attrs, sync_attrs = _declared_locks(cls)
    accesses: List[Access] = []
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in _CONSTRUCTORS or item.name.endswith("_locked"):
            continue
        scanner = _MethodScanner(cls.name, item.name, lock_attrs,
                                 sync_attrs)
        for stmt in item.body:
            scanner._visit(stmt, frozenset())
        accesses.extend(scanner.accesses)

    by_attr: Dict[str, List[Access]] = {}
    for access in accesses:
        by_attr.setdefault(access.attr, []).append(access)

    guarded: Dict[str, Tuple[str, ...]] = {}
    findings: List[Issue] = []
    for attr, recs in sorted(by_attr.items()):
        writes = [a for a in recs if a.kind == "write"]
        if not writes:
            continue  # read-only after construction: no discipline owed
        guards = frozenset.intersection(*(a.locks for a in writes))
        if guards:
            guarded[attr] = tuple(sorted(guards))
            for access in recs:
                if access.locks & guards:
                    continue
                findings.append(error(
                    f"unguarded_{access.kind}",
                    f"{cls.name}.{access.method} line {access.lineno} "
                    f"{access.kind}s self.{attr} without holding "
                    f"{'/'.join(sorted(guards))} (every write holds it)",
                    subject=f"{relpath}::{cls.name}.{attr}"))
        elif any(a.locks for a in writes):
            bare = [a for a in writes if not a.locks]
            locked = [a for a in writes if a.locks]
            findings.append(error(
                "mixed_guard",
                f"{cls.name}.self.{attr} is written both under a lock "
                f"(line {locked[0].lineno}) and bare "
                f"(line {bare[0].lineno} in {bare[0].method}): "
                f"the lock protects nothing",
                subject=f"{relpath}::{cls.name}.{attr}"))
    return ClassLockset(
        file=relpath, name=cls.name, locks=tuple(sorted(lock_attrs)),
        guarded=guarded, accesses=tuple(accesses),
        findings=tuple(findings))


def analyze_source(source: str,
                   filename: str = "<snippet>") -> List[ClassLockset]:
    """Lockset-analyze every class in a source string."""
    tree = ast.parse(source, filename=filename)
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            out.append(_analyze_class(node, filename))
    return out


def _relpath(path: pathlib.Path) -> str:
    """Posix path used in reports and allowlist keys (cwd-relative)."""
    try:
        return path.resolve().relative_to(
            pathlib.Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_file(path: pathlib.Path) -> List[ClassLockset]:
    """Lockset-analyze every class in one Python file."""
    return analyze_source(path.read_text(), filename=_relpath(path))


def load_allowlist(path: pathlib.Path) -> Dict[str, str]:
    """Parse ``CODE path::Class.attr -- justification`` lines.

    The same format (and the same mandatory-justification rule) as
    ``tools/simlint_allow.txt``; ``#`` comments and blanks ignored.

    Raises:
        RaceError: for entries without a justification.
    """
    entries: Dict[str, str] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            raise RaceError(
                f"{path}:{lineno}: allowlist entry needs a "
                f"' -- justification': {line!r}")
        key, justification = line.split(" -- ", 1)
        if not justification.strip():
            raise RaceError(
                f"{path}:{lineno}: empty justification: {line!r}")
        entries[" ".join(key.split())] = justification.strip()
    return entries


def lockset_report(
    paths: Sequence[str],
    allowlist: Optional[Dict[str, str]] = None,
) -> Tuple[RaceReport, List[str]]:
    """Analyze files/directories into one :class:`RaceReport`.

    Directories are walked recursively for ``*.py``.  Findings whose
    ``CODE subject`` key appears in ``allowlist`` move to the report's
    ``suppressed`` section (justification attached).

    Returns:
        ``(report, unused_keys)`` — the report, plus allowlist keys
        that suppressed nothing (stale entries a strict caller fails).
    """
    allow = dict(allowlist or {})
    files: List[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])

    classes: List[ClassLockset] = []
    for f in files:
        classes.extend(analyze_file(f))

    kept: List[Issue] = []
    suppressed: List[Dict[str, str]] = []
    used: Set[str] = set()
    for cls in classes:
        for issue in cls.findings:
            key = f"{issue.code} {issue.subject}"
            if key in allow:
                used.add(key)
                suppressed.append(
                    {"key": key, "justification": allow[key]})
            else:
                kept.append(issue)
    # One allowlist key may cover several access sites; report it once.
    seen: Set[str] = set()
    suppressed = [s for s in sorted(suppressed, key=lambda s: s["key"])
                  if not (s["key"] in seen or seen.add(s["key"]))]
    unused = sorted(set(allow) - used)

    interesting = [c for c in classes if c.locks or c.guarded
                   or c.findings]
    report = RaceReport(
        layer="lockset",
        targets=tuple(sorted({c.file for c in classes})),
        classes=tuple(c.summary() for c in sorted(
            interesting, key=lambda c: (c.file, c.name))),
        findings=sort_findings(kept),
        suppressed=tuple(suppressed),
        stats={"files": len(files), "classes": len(classes),
               "guarded_attrs": sum(len(c.guarded) for c in classes)},
    )
    return report, unused
