"""Race reports: the canonical-JSON envelope both detector layers emit.

:class:`RaceReport` is the :class:`repro.analyze.report.AnalysisReport`
house style applied to concurrency findings: typed :class:`Issue`
entries, a version stamp, canonical JSON (sorted keys, compact
separators) so reports are byte-comparable in tests, and a multi-line
``format()`` for the CLI.

One envelope serves both layers:

* ``layer="lockset"`` — the static analysis (:mod:`repro.races.lockset`)
  fills ``classes`` with per-class lockset summaries and ``targets``
  with the files analyzed.
* ``layer="sanitizer"`` — the dynamic happens-before sanitizer
  (:mod:`repro.races.sanitizer`) fills ``targets`` with the registered
  shared-state names; ``classes`` stays empty.

Findings suppressed by an allowlist entry are retained under
``suppressed`` with their mandatory justification, so an exit-0 report
still shows *what* was waved through and *why*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..analyze.report import Issue, Severity, canonical_dumps

#: Version stamp carried by every serialized race report; bump on
#: breaking changes to the field structure.
RACES_VERSION = 1


class RaceError(Exception):
    """Raised for malformed reports or allowlist entries."""


@dataclass(frozen=True)
class RaceReport:
    """Everything one detector layer concluded about its targets.

    Attributes:
        layer: ``"lockset"`` (static) or ``"sanitizer"`` (dynamic).
        targets: what was examined — file paths for the lockset layer,
            registered shared-state names for the sanitizer.
        classes: lockset layer only — one dict per analyzed class:
            ``file``, ``name``, ``locks`` (declared lock attributes),
            ``guarded`` (attribute → guarding lock names), ``accesses``
            (tracked attribute access count).
        findings: surviving :class:`~repro.analyze.report.Issue`
            entries, sorted by ``(subject, code, message)``.
        suppressed: allowlisted findings: dicts with ``key`` (the
            allowlist key that matched) and ``justification``.
        stats: small deterministic counters (thread/state counts for
            the sanitizer; file/class counts for the lockset layer).
    """

    layer: str
    targets: Tuple[str, ...] = ()
    classes: Tuple[Dict[str, Any], ...] = ()
    findings: Tuple[Issue, ...] = ()
    suppressed: Tuple[Dict[str, str], ...] = ()
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[Issue]:
        """Findings that make the code statically or dynamically racy."""
        return [i for i in self.findings
                if i.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """Whether the targets came out clean (no ERROR findings)."""
        return not self.errors

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form, stable field set, version-stamped."""
        return {
            "races_version": RACES_VERSION,
            "layer": self.layer,
            "targets": list(self.targets),
            "classes": [dict(c) for c in self.classes],
            "ok": self.ok,
            "findings": [i.to_dict() for i in self.findings],
            "suppressed": [dict(s) for s in self.suppressed],
            "stats": dict(self.stats),
        }

    def to_json(self) -> bytes:
        """Canonical JSON bytes of :meth:`to_dict` (byte-stable)."""
        return canonical_dumps(self.to_dict())

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RaceReport":
        """Rebuild a report from :meth:`to_dict` output.

        Raises:
            RaceError: on a version mismatch or missing fields.
        """
        version = d.get("races_version")
        if version != RACES_VERSION:
            raise RaceError(
                f"report version {version!r} != {RACES_VERSION}")
        try:
            findings = tuple(
                Issue(code=i["code"], severity=Severity(i["severity"]),
                      message=i["message"], subject=i.get("subject", ""))
                for i in d["findings"])
            return cls(
                layer=d["layer"], targets=tuple(d["targets"]),
                classes=tuple(dict(c) for c in d["classes"]),
                findings=findings,
                suppressed=tuple(dict(s) for s in d["suppressed"]),
                stats=dict(d["stats"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise RaceError(f"malformed report dict: {exc}") from exc

    def format(self) -> str:
        """Multi-line human-readable rendering (CLI text output)."""
        head = (f"racecheck [{self.layer}]: "
                f"{'clean' if self.ok else 'RACY'} "
                f"({len(self.targets)} target(s), "
                f"{len(self.findings)} finding(s), "
                f"{len(self.suppressed)} allowlisted)")
        lines = [head]
        for c in self.classes:
            guarded = ", ".join(
                f"{attr}<-{'/'.join(locks)}"
                for attr, locks in sorted(c["guarded"].items()))
            lines.append(f"  {c['file']}::{c['name']}: "
                         f"locks [{', '.join(c['locks'])}] "
                         f"guarded {{{guarded}}}")
        for issue in self.findings:
            lines.append(f"  [{issue.severity.value}] {issue.code} "
                         f"{issue.subject}: {issue.message}")
        for s in self.suppressed:
            lines.append(f"  [allowed] {s['key']} -- "
                         f"{s['justification']}")
        return "\n".join(lines)


def sort_findings(findings: List[Issue]) -> Tuple[Issue, ...]:
    """Deterministic finding order: by subject, then code, then text."""
    return tuple(sorted(findings,
                        key=lambda i: (i.subject, i.code, i.message)))
