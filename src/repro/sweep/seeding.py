"""The sweep layer's seed-derivation policy, in one place.

Every batch path in the library derives per-trial randomness the same
way, and this module is the single implementation of the rule:

**Policy.**  A batch is identified by a user seed (an int) and,
optionally, a *cell key* (the canonical string identity of one grid
point of a sweep).  Trial ``t`` of ``n`` draws from::

    SeedSequence([seed] (+ [entropy(cell_key)])).spawn(n)[t]

Never from ``seed + t``.  ``SeedSequence.spawn`` hashes the parent
entropy with a distinct spawn key per child, so:

- trial streams are statistically independent (additive seeds feed
  nearby integers to the bit generator, which numpy explicitly warns
  gives correlated PCG64 streams);
- batches with nearby seeds never share streams — with ``seed + t``,
  batch ``seed=0`` trial 5 and batch ``seed=5`` trial 0 are the *same*
  generator, silently duplicating "independent" replications;
- two different sweep cells never share streams even at the same user
  seed, because the cell key folds into the entropy;
- the stream of trial ``t`` depends only on ``(seed, cell_key, t)`` —
  not on grid ordering, worker count, or which other cells exist — so
  parallel execution is byte-identical to serial and cached results
  stay valid when the surrounding grid changes.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional

import numpy as np


def key_entropy(key: str) -> int:
    """A stable 128-bit integer derived from a cell-key string.

    SHA-256 based, so it is identical across processes and Python
    runs (unlike ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


def trial_seed_sequences(
    seed: int,
    n_trials: int,
    *,
    cell_key: Optional[str] = None,
) -> List[np.random.SeedSequence]:
    """The ``n_trials`` independent child sequences of a batch.

    Args:
        seed: the user-facing batch seed.
        n_trials: how many trials the batch runs.
        cell_key: canonical identity of the sweep cell, when the batch
            is one cell of a grid; ``None`` for standalone batches
            (``replay_many``).

    Raises:
        ValueError: on negative ``n_trials``.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    entropy = [seed] if cell_key is None else [seed, key_entropy(cell_key)]
    return np.random.SeedSequence(entropy).spawn(n_trials)


def trial_rngs(
    seed: int,
    n_trials: int,
    *,
    cell_key: Optional[str] = None,
) -> Iterator[np.random.Generator]:
    """Generators for each trial of a batch, in trial order."""
    for ss in trial_seed_sequences(seed, n_trials, cell_key=cell_key):
        yield np.random.default_rng(ss)
