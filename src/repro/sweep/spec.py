"""Declarative sweep specifications: the grid an experiment runs over.

A :class:`SweepSpec` names the axes every table and figure of the paper
aggregates over — flag, scenario (or the whole core activity), team
size, acquisition policy, fill style, duplicate-implement count, fault
plan — plus the trial count and batch seed.  :meth:`SweepSpec.cells`
expands the cross product into :class:`SweepCell` grid points, each
with a *canonical key*: a stable, human-readable string that both the
seeding policy (:mod:`repro.sweep.seeding`) and the result cache
(:mod:`repro.sweep.cache`) hash.  Two cells with the same key are the
same experiment; nothing about the key depends on grid ordering or on
which other cells the grid contains.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..agents.student import FillStyle
from ..faults.plan import (
    FaultPlan,
    ImplementFailure,
    LateArrival,
    StudentDropout,
    TransientStall,
)
from ..grid.palette import Color
from ..schedule.runner import AcquirePolicy

#: Scenario-axis sentinel: run the whole four-scenario core activity
#: (with the scenario-1 repeat) as one trial instead of a single scenario.
ACTIVITY = 0

_VALID_SCENARIOS = (ACTIVITY, 1, 2, 3, 4)


class SweepError(Exception):
    """Raised for invalid sweep specifications."""


def fault_to_dict(fault) -> Dict[str, object]:
    """One fault as a JSON-safe dict (stable field order)."""
    if isinstance(fault, StudentDropout):
        return {"kind": "student_dropout", "at": fault.at,
                "worker": fault.worker}
    if isinstance(fault, ImplementFailure):
        return {"kind": "implement_failure", "at": fault.at,
                "color": fault.color.name}
    if isinstance(fault, TransientStall):
        return {"kind": "transient_stall", "at": fault.at,
                "worker": fault.worker, "duration": fault.duration}
    if isinstance(fault, LateArrival):
        return {"kind": "late_arrival", "worker": fault.worker,
                "delay": fault.delay}
    raise SweepError(f"unknown fault type {type(fault).__name__}")


def fault_from_dict(d: Dict[str, object]):
    """Rebuild one fault from its dict form.

    Raises:
        SweepError: on unknown kinds or missing fields.
    """
    try:
        kind = d["kind"]
        if kind == "student_dropout":
            return StudentDropout(at=float(d["at"]), worker=int(d["worker"]))
        if kind == "implement_failure":
            return ImplementFailure(at=float(d["at"]),
                                    color=Color[str(d["color"])])
        if kind == "transient_stall":
            return TransientStall(at=float(d["at"]), worker=int(d["worker"]),
                                  duration=float(d["duration"]))
        if kind == "late_arrival":
            return LateArrival(worker=int(d["worker"]),
                               delay=float(d["delay"]))
    except (KeyError, ValueError) as exc:
        raise SweepError(f"bad fault record {d!r}: {exc}") from exc
    raise SweepError(f"unknown fault kind {d.get('kind')!r}")


def fault_plan_to_dicts(plan: FaultPlan) -> List[Dict[str, object]]:
    """A whole plan as a JSON-safe list, in plan order."""
    return [fault_to_dict(f) for f in plan.faults]


def fault_plan_from_dicts(dicts: Sequence[Dict[str, object]]) -> FaultPlan:
    """Rebuild a plan from :func:`fault_plan_to_dicts` output."""
    return FaultPlan.of(fault_from_dict(d) for d in dicts)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a fully specified experiment configuration.

    ``scenario`` is 1-4 for a single core scenario or :data:`ACTIVITY`
    (0) for the whole activity.  ``fault_label`` names the plan in the
    spec's ``fault_plans`` mapping (``"clean"`` means no plan).
    """

    flag: str
    scenario: int
    team_size: int
    policy: AcquirePolicy
    style: FillStyle
    copies: int = 1
    fault_label: str = "clean"
    fault_plan: Optional[FaultPlan] = None
    rows: Optional[int] = None
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scenario not in _VALID_SCENARIOS:
            raise SweepError(
                f"scenario must be one of {_VALID_SCENARIOS} "
                f"(0 = full activity), got {self.scenario}"
            )
        if self.team_size < 1:
            raise SweepError(f"team_size must be >= 1, got {self.team_size}")
        if self.copies < 1:
            raise SweepError(f"copies must be >= 1, got {self.copies}")

    def key_dict(self) -> Dict[str, object]:
        """The cell's identity as a plain dict (stable, JSON-safe)."""
        return {
            "flag": self.flag,
            "scenario": self.scenario,
            "team_size": self.team_size,
            "policy": self.policy.name,
            "style": self.style.name,
            "copies": self.copies,
            "fault_label": self.fault_label,
            "faults": (None if self.fault_plan is None
                       else fault_plan_to_dicts(self.fault_plan)),
            "rows": self.rows,
            "cols": self.cols,
        }

    def key(self) -> str:
        """Canonical string identity: what seeding and caching hash."""
        return json.dumps(self.key_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        """Short human-readable label for tables and logs."""
        what = ("activity" if self.scenario == ACTIVITY
                else f"s{self.scenario}")
        parts = [self.flag, what, f"n={self.team_size}",
                 self.policy.value, self.style.name.lower()]
        if self.copies != 1:
            parts.append(f"copies={self.copies}")
        if self.fault_label != "clean":
            parts.append(f"faults={self.fault_label}")
        return " ".join(parts)


def cell_from_key_dict(d: Dict[str, object]) -> SweepCell:
    """Rebuild a :class:`SweepCell` from its :meth:`~SweepCell.key_dict`.

    The inverse of ``key_dict()``: ``cell_from_key_dict(c.key_dict())``
    equals ``c`` for every valid cell, so a cell can round-trip through
    JSON — over the fabric's worker wire, through ``POST /task`` — and
    re-derive the *same* canonical key and cache address on the far
    side.  Nothing from the wire is trusted: every field is re-validated
    exactly as direct construction validates it.

    Raises:
        SweepError: on missing/extra fields, unknown policy/style/fault
            names, or any value direct construction would refuse.
    """
    expected = ("flag", "scenario", "team_size", "policy", "style",
                "copies", "fault_label", "faults", "rows", "cols")
    missing = [k for k in expected if k not in d]
    extra = sorted(set(d) - set(expected))
    if missing or extra:
        raise SweepError(
            f"bad cell dict: missing {missing or 'nothing'}, "
            f"unexpected {extra or 'nothing'}")
    try:
        policy = AcquirePolicy[str(d["policy"])]
        style = FillStyle[str(d["style"])]
    except KeyError as exc:
        raise SweepError(f"unknown policy/style name {exc}") from exc
    faults = d["faults"]
    if faults is not None and not isinstance(faults, (list, tuple)):
        raise SweepError(
            f"'faults' must be null or a list, got {type(faults).__name__}")
    for name in ("rows", "cols"):
        v = d[name]
        if v is not None and (isinstance(v, bool) or not isinstance(v, int)
                              or v < 1):
            raise SweepError(
                f"{name!r} must be null or a positive integer, got {v!r}")
    if not isinstance(d["flag"], str) or not d["flag"]:
        raise SweepError(f"'flag' must be a non-empty string, "
                         f"got {d['flag']!r}")
    try:
        return SweepCell(
            flag=d["flag"],
            scenario=int(d["scenario"]),  # type: ignore[arg-type]
            team_size=int(d["team_size"]),  # type: ignore[arg-type]
            policy=policy,
            style=style,
            copies=int(d["copies"]),  # type: ignore[arg-type]
            fault_label=str(d["fault_label"]),
            fault_plan=(None if faults is None
                        else fault_plan_from_dicts(faults)),
            rows=d["rows"], cols=d["cols"],  # type: ignore[arg-type]
        )
    except (TypeError, ValueError) as exc:
        raise SweepError(f"bad cell dict: {exc}") from exc


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of experiment configurations.

    Axes multiply: ``flags x scenarios x team_sizes x policies x styles
    x copies x fault_plans``; each resulting cell runs ``n_trials``
    trials seeded from ``seed`` per the policy in
    :mod:`repro.sweep.seeding`.

    Attributes:
        flags: flag names from the catalog.
        scenarios: 1-4 and/or :data:`ACTIVITY` (0, the whole activity).
        team_sizes: colorers per team.
        policies: implement acquisition policies.
        styles: cell fill styles.
        copies: duplicate implements issued per color.
        fault_plans: label -> plan; ``None`` plans mean clean runs.
        n_trials: independent trials per cell.
        seed: the batch seed all trial streams derive from.
        rows / cols: flag raster override (``None`` = the flag default).
    """

    flags: Tuple[str, ...] = ("mauritius",)
    scenarios: Tuple[int, ...] = (3,)
    team_sizes: Tuple[int, ...] = (4,)
    policies: Tuple[AcquirePolicy, ...] = (AcquirePolicy.HOLD_COLOR_RUN,)
    styles: Tuple[FillStyle, ...] = (FillStyle.SCRIBBLE,)
    copies: Tuple[int, ...] = (1,)
    fault_plans: Tuple[Tuple[str, Optional[FaultPlan]], ...] = (
        ("clean", None),
    )
    n_trials: int = 1
    seed: int = 0
    rows: Optional[int] = None
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise SweepError(f"n_trials must be >= 1, got {self.n_trials}")
        for axis in ("flags", "scenarios", "team_sizes", "policies",
                     "styles", "copies", "fault_plans"):
            if not getattr(self, axis):
                raise SweepError(f"sweep axis {axis!r} is empty")
        labels = [label for label, _ in self.fault_plans]
        if len(set(labels)) != len(labels):
            raise SweepError(f"duplicate fault plan labels: {labels}")

    @classmethod
    def single(cls, flag: str, scenario: int, *, n_trials: int = 1,
               seed: int = 0, **kwargs) -> "SweepSpec":
        """A one-cell spec (the common CLI and notebook case)."""
        return cls(flags=(flag,), scenarios=(scenario,), n_trials=n_trials,
                   seed=seed, **kwargs)

    def cells(self) -> List[SweepCell]:
        """Expand the cross product, in deterministic axis order."""
        out: List[SweepCell] = []
        for flag in self.flags:
            for scenario in self.scenarios:
                for n in self.team_sizes:
                    for policy in self.policies:
                        for style in self.styles:
                            for cp in self.copies:
                                for label, plan in self.fault_plans:
                                    out.append(SweepCell(
                                        flag=flag, scenario=scenario,
                                        team_size=n, policy=policy,
                                        style=style, copies=cp,
                                        fault_label=label, fault_plan=plan,
                                        rows=self.rows, cols=self.cols,
                                    ))
        return out

    @property
    def n_cells(self) -> int:
        """Grid size without expanding it."""
        return (len(self.flags) * len(self.scenarios) * len(self.team_sizes)
                * len(self.policies) * len(self.styles) * len(self.copies)
                * len(self.fault_plans))

    @property
    def total_trials(self) -> int:
        """Trials the whole sweep runs when nothing is cached."""
        return self.n_cells * self.n_trials
