"""Typed views over sweep payloads, plus per-cell metric roll-ups.

The executor moves *payloads* around — JSON-safe dicts that pickle
cheaply across the process pool and serialize verbatim into the result
cache.  This module wraps them in small dataclasses for analysis:
:class:`RunRecord` (one simulated run), :class:`TrialRecord` (one
trial — one run for scenario cells, five for activity cells),
:class:`CellResult` (all trials of one grid point, with median /
correctness / observability roll-ups), and :class:`SweepResult` (the
whole grid plus cache accounting).

Because payloads round-trip through JSON, a cache hit and a fresh
computation produce *identical* records — the determinism tests assert
this byte-for-byte on the serialized traces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spec import SweepCell, SweepSpec


@dataclass(frozen=True)
class RunRecord:
    """One simulated run inside a trial, rebuilt from its payload.

    ``trace`` is the run's full event log as JSON-lines text
    (:mod:`repro.sim.export` format) — byte-comparable across serial /
    parallel / cached executions, and importable via
    :func:`repro.sim.export.import_trace` for full trace analysis.
    Metric-only payloads (the vector backend's, see
    :mod:`repro.sim.backend`) carry no trace; ``trace`` is ``None``
    for those runs.  ``obs`` holds the deterministic slice of the
    run's :class:`~repro.obs.summary.ObsSummary` (event/span counts,
    counters, histograms; host-time profiling is excluded because wall
    time is not reproducible).
    """

    label: str
    strategy: str
    n_workers: int
    true_makespan: float
    measured_time: float
    correct: bool
    trace: Optional[str] = None
    faults: Optional[Dict[str, float]] = None
    obs: Optional[Dict[str, Any]] = None

    @classmethod
    def from_payload(cls, d: Dict[str, Any]) -> "RunRecord":
        """Rebuild from an executor/cache payload dict."""
        return cls(
            label=d["label"], strategy=d["strategy"],
            n_workers=int(d["n_workers"]),
            true_makespan=float(d["true_makespan"]),
            measured_time=float(d["measured_time"]),
            correct=bool(d["correct"]), trace=d.get("trace"),
            faults=d.get("faults"), obs=d.get("obs"),
        )


@dataclass(frozen=True)
class TrialRecord:
    """One trial of a cell: an ordered mapping of run label -> record."""

    trial: int
    runs: Dict[str, RunRecord]

    @classmethod
    def from_payload(cls, d: Dict[str, Any]) -> "TrialRecord":
        """Rebuild from an executor/cache payload dict."""
        return cls(trial=int(d["trial"]),
                   runs={label: RunRecord.from_payload(r)
                         for label, r in d["runs"].items()})

    @property
    def only_run(self) -> RunRecord:
        """The single run of a scenario-cell trial.

        Raises:
            ValueError: on activity trials, which hold several runs.
        """
        if len(self.runs) != 1:
            raise ValueError(
                f"trial holds {len(self.runs)} runs ({list(self.runs)}); "
                f"pick a label explicitly"
            )
        return next(iter(self.runs.values()))


@dataclass
class CellResult:
    """Every trial of one grid point, with roll-up helpers."""

    cell: SweepCell
    trials: List[TrialRecord]
    cached: bool = False

    def _records(self, label: Optional[str]) -> List[RunRecord]:
        if label is None:
            return [t.only_run for t in self.trials]
        return [t.runs[label] for t in self.trials]

    def labels(self) -> List[str]:
        """Run labels present in each trial, in run order."""
        return list(self.trials[0].runs) if self.trials else []

    def measured_times(self, label: Optional[str] = None) -> List[float]:
        """Stopwatch times across trials (for one label of activity cells)."""
        return [r.measured_time for r in self._records(label)]

    def median_time(self, label: Optional[str] = None) -> float:
        """Median stopwatch time across trials — the whiteboard number."""
        return float(statistics.median(self.measured_times(label)))

    def correct_fraction(self) -> float:
        """Fraction of runs (all labels) whose canvas matched the target."""
        records = [r for t in self.trials for r in t.runs.values()]
        if not records:
            return 0.0
        return sum(r.correct for r in records) / len(records)

    def counter_total(self, name: str, label: Optional[str] = None) -> float:
        """Sum one observability counter over trials (0.0 without obs)."""
        total = 0.0
        for rec in self._records(label):
            if rec.obs:
                total += sum(rec.obs.get("counters", {})
                             .get(name, {}).values())
        return total

    def obs_rollup(self, label: Optional[str] = None) -> Dict[str, float]:
        """Every observability counter summed across trials."""
        rolled: Dict[str, float] = {}
        for rec in self._records(label):
            if not rec.obs:
                continue
            for name, series in rec.obs.get("counters", {}).items():
                rolled[name] = rolled.get(name, 0.0) + sum(series.values())
        return rolled


@dataclass
class SweepResult:
    """The whole grid's outcome plus cache and wall-clock accounting."""

    spec: SweepSpec
    cells: List[CellResult]
    computed_trials: int = 0
    cached_trials: int = 0
    wall_seconds: float = 0.0
    workers: int = 1

    def cell(self, key: str) -> CellResult:
        """Look up one cell result by canonical key.

        Raises:
            KeyError: when the key names no cell of this sweep.
        """
        for c in self.cells:
            if c.cell.key() == key:
                return c
        raise KeyError(f"no cell with key {key}")

    @property
    def all_correct(self) -> bool:
        """Whether every run in every cell reproduced its target."""
        return all(c.correct_fraction() == 1.0 for c in self.cells)

    def table_rows(self) -> List[List[str]]:
        """One row per cell (per label for activity cells) for CLI output."""
        rows: List[List[str]] = []
        for c in self.cells:
            for label in (c.labels() or ["-"]):
                recs = [t.runs[label] for t in c.trials]
                times = [r.measured_time for r in recs]
                rows.append([
                    c.cell.describe(), label,
                    str(len(c.trials)),
                    f"{statistics.median(times):.0f}s" if times else "-",
                    f"{sum(r.correct for r in recs)}/{len(recs)}",
                    "warm" if c.cached else "cold",
                ])
        return rows
