"""Content-addressed on-disk result cache for experiment sweeps.

Results are stored one JSON file per cell under a cache root, named by
the SHA-256 of the cell's *full identity*: the canonical cell key, the
trial count, the batch seed, whether observability was on, and a cache
schema fingerprint that includes the library version.  Any knob that
can change the computed bytes is part of the address, so a hit is
always safe to reuse verbatim and any change — different grid point,
different seed, new library release — misses cleanly instead of
returning stale results.

The cache is deliberately dumb: no locking beyond atomic rename, no
eviction, no index.  ``repro sweep --cache-dir PATH`` and the
benchmark drivers point it at a scratch directory; deleting the
directory is the only invalidation anyone needs.

A generic :meth:`ResultCache.get_or_compute` is exposed for non-sweep
workloads (the Tables I-III driver caches its synthesized survey
medians through it) so every cached artifact in the repo shares one
addressing scheme.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Callable, Dict, Optional, Union

from .. import __version__

#: Bump when the payload layout changes; stale schema -> clean miss.
CACHE_SCHEMA = 1


class CacheError(Exception):
    """Raised on unreadable or corrupt cache entries."""


def content_address(key_obj: Any) -> str:
    """SHA-256 hex digest of a JSON-serializable identity object.

    The library version and cache schema are folded in, so upgrading
    either retires every old entry without touching the files.
    """
    material = json.dumps(
        {"schema": CACHE_SCHEMA, "version": __version__, "key": key_obj},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON payloads."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored payload for an address, or ``None`` on a miss.

        Raises:
            CacheError: when the entry exists but cannot be parsed
                (a truncated write from a crashed process, say).
        """
        path = self._path(digest)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CacheError(f"corrupt cache entry {path}: {exc}") from exc
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Store a payload atomically (write to temp file, rename)."""
        path = self._path(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(payload, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get_or_compute(
        self,
        key_obj: Any,
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Return the cached payload for ``key_obj`` or compute and store it.

        ``compute`` must return a JSON-serializable dict; what comes back
        on a later hit is exactly what JSON round-trips (tuples become
        lists, int dict keys become strings).
        """
        digest = content_address(key_obj)
        payload = self.get(digest)
        if payload is None:
            payload = compute()
            self.put(digest, payload)
        return payload

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
