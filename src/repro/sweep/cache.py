"""Content-addressed on-disk result cache for experiment sweeps.

Results are stored one JSON file per cell under a cache root, named by
the SHA-256 of the cell's *full identity*: the canonical cell key, the
trial count, the batch seed, whether observability was on, and a cache
schema fingerprint that includes the library version.  Any knob that
can change the computed bytes is part of the address, so a hit is
always safe to reuse verbatim and any change — different grid point,
different seed, new library release — misses cleanly instead of
returning stale results.

The cache is deliberately dumb: no locking beyond atomic rename, no
index.  ``repro sweep --cache-dir PATH`` and the benchmark drivers
point it at a scratch directory; deleting the directory is the only
invalidation anyone needs.  Eviction is opt-in: a long-lived process
(the :mod:`repro.serve` server) passes ``max_entries`` / ``max_bytes``
and the cache prunes least-recently-used entries after every write,
so the directory never grows without bound.

A generic :meth:`ResultCache.get_or_compute` is exposed for non-sweep
workloads (the Tables I-III driver caches its synthesized survey
medians through it) so every cached artifact in the repo shares one
addressing scheme.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Callable, Dict, Optional, Union

from .. import __version__

#: Bump when the payload layout changes; stale schema -> clean miss.
CACHE_SCHEMA = 1


class CacheError(Exception):
    """Raised for invalid cache configuration (bad eviction limits).

    Corrupt *entries* never raise: :meth:`ResultCache.get` quarantines
    them and reports a miss instead (see :attr:`ResultCache.corruptions`).
    """


def content_address(key_obj: Any) -> str:
    """SHA-256 hex digest of a JSON-serializable identity object.

    The library version and cache schema are folded in, so upgrading
    either retires every old entry without touching the files.
    """
    material = json.dumps(
        {"schema": CACHE_SCHEMA, "version": __version__, "key": key_obj},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON payloads.

    ``max_entries`` / ``max_bytes`` (both off by default) bound the
    directory: after every :meth:`put`, least-recently-used entries
    (by file mtime — reads refresh it) are deleted until both budgets
    hold.  The entry just written is the most recent, so it always
    survives a prune.

    Corrupt entries never raise out of :meth:`get`: a file that cannot
    be parsed (a torn write from a crashed process, a bad disk) is
    treated as a miss, renamed aside to ``<digest>.corrupt`` so later
    reads miss cleanly too, and counted in :attr:`corruptions`.  The
    payload is recomputed and re-stored by the caller exactly as for
    an ordinary miss.
    """

    def __init__(self, root: Union[str, pathlib.Path], *,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored payload for an address, or ``None`` on a miss.

        A hit refreshes the entry's mtime so LRU pruning sees it as
        recently used.  An entry that exists but cannot be parsed (a
        truncated write from a crashed process, say) or does not hold a
        JSON object is *quarantined* — renamed to ``<digest>.corrupt``,
        counted in :attr:`corruptions` — and reported as a miss, so one
        bad file costs a recompute instead of failing the sweep.  An
        entry that vanishes between the address lookup and the read (a
        concurrent prune in another process) is an ordinary miss, not a
        corruption.
        """
        path = self._path(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            # Absent, or pruned by a concurrent process between lookup
            # and read: either way the entry is simply gone — a plain
            # miss, never a corruption (there is no file to quarantine).
            self.misses += 1
            return None
        except OSError:
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError(
                    f"entry holds {type(payload).__name__}, not an object")
        except (json.JSONDecodeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass
        self.hits += 1
        return payload

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside so every later read misses cleanly."""
        self.corruptions += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - raced away; miss either way
            pass

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Store a payload atomically (write to temp file, rename)."""
        path = self._path(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(payload, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        if self.max_entries is not None or self.max_bytes is not None:
            self.prune()

    def _files(self):
        """Every file the cache owns: entries plus quarantined sidecars."""
        yield from self.root.glob("*.json")
        yield from self.root.glob("*.corrupt")

    def total_bytes(self) -> int:
        """Bytes currently stored, quarantined sidecars included.

        Sidecars occupy the same disk budget entries do, so they count
        against ``max_bytes`` — otherwise a bounded cache under
        recurring corruption would grow without bound.
        """
        total = 0
        for p in self._files():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total

    def prune(self) -> int:
        """Evict LRU files until ``max_entries``/``max_bytes`` hold.

        Returns the number of files deleted (0 when no limits are
        set or both budgets already hold).  Quarantined ``.corrupt``
        sidecars are swept alongside entries — oldest first, never the
        newest file — and their bytes count against ``max_bytes``, so a
        bounded cache stays bounded even under recurring corruption.
        Files that vanish midway (another process pruning the same
        directory) are skipped.
        """
        entries = []
        for p in self._files():
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime_ns, p.name, st.st_size, p))
        entries.sort()
        count = len(entries)
        size = sum(e[2] for e in entries)
        evicted = 0
        # The newest entry is never pruned, even when it alone exceeds
        # max_bytes — a cache that deletes what it just wrote would
        # silently disable itself.
        for _, _, nbytes, path in entries[:-1]:
            over_entries = (self.max_entries is not None
                            and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and size > self.max_bytes)
            if not over_entries and not over_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                continue
            count -= 1
            size -= nbytes
            evicted += 1
        self.evictions += evicted
        return evicted

    def get_or_compute(
        self,
        key_obj: Any,
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Return the cached payload for ``key_obj`` or compute and store it.

        ``compute`` must return a JSON-serializable dict; what comes back
        on a later hit is exactly what JSON round-trips (tuples become
        lists, int dict keys become strings).
        """
        digest = content_address(key_obj)
        payload = self.get(digest)
        if payload is None:
            payload = compute()
            self.put(digest, payload)
        return payload

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
