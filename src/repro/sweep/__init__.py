"""Parallel, cached experiment sweeps — the scaling layer.

Every table and figure of the paper aggregates over many independent
runs (teams x scenarios x trials x institutions).  This package is the
batch path those aggregations go through:

- :mod:`~repro.sweep.spec` — :class:`SweepSpec`, a declarative grid of
  configurations (flag, scenario or whole activity, team size, policy,
  style, duplicate implements, fault plan) with canonical cell keys.
- :mod:`~repro.sweep.seeding` — the one seed-derivation policy:
  per-trial streams spawned via ``numpy.random.SeedSequence``, never
  ``seed + t``, so trials are independent and batches never collide.
- :mod:`~repro.sweep.executor` — :func:`run_sweep`, a process-pool
  fan-out whose parallel runs are byte-identical to serial ones.
- :mod:`~repro.sweep.cache` — a content-addressed on-disk result
  cache: warm re-runs of a benchmark or notebook recompute nothing.
- :mod:`~repro.sweep.results` — typed records and per-cell metric /
  observability roll-ups.

Quickstart::

    from repro.sweep import SweepSpec, run_sweep
    spec = SweepSpec(flags=("mauritius",), scenarios=(3, 4),
                     n_trials=8, seed=0)
    res = run_sweep(spec, workers=4, cache_dir=".sweep-cache")
    for cell in res.cells:
        print(cell.cell.describe(), f"{cell.median_time():.0f}s")
"""

from .cache import CacheError, ResultCache, content_address
from .executor import cell_address, run_sweep, run_trial, validate_cells
from .results import CellResult, RunRecord, SweepResult, TrialRecord
from .seeding import key_entropy, trial_rngs, trial_seed_sequences
from .spec import (
    ACTIVITY,
    SweepCell,
    SweepError,
    SweepSpec,
    cell_from_key_dict,
    fault_plan_from_dicts,
    fault_plan_to_dicts,
)

__all__ = [
    "ACTIVITY",
    "CacheError",
    "CellResult",
    "ResultCache",
    "RunRecord",
    "SweepCell",
    "SweepError",
    "SweepSpec",
    "SweepResult",
    "TrialRecord",
    "cell_address",
    "cell_from_key_dict",
    "content_address",
    "fault_plan_from_dicts",
    "fault_plan_to_dicts",
    "key_entropy",
    "run_sweep",
    "run_trial",
    "trial_rngs",
    "trial_seed_sequences",
    "validate_cells",
]
