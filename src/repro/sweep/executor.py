"""The sweep executor: fan trials across a process pool, cache results.

Execution model
---------------

Each (cell, trial) pair is one *task*: a JSON-safe dict naming the
configuration and the trial index.  A task is a pure function of its
dict — the worker derives the trial's RNG stream from the batch seed
and the cell key per :mod:`repro.sweep.seeding`, builds a fresh team,
runs the scenario (or the whole core activity), and returns a payload
dict with the run's metrics and its full event trace serialized as
JSON lines.  Nothing about a task depends on which process runs it or
in what order, so:

- ``workers=1`` (in-process) and ``workers=N`` (process pool) produce
  **byte-identical** payloads, traces included;
- payloads go straight into the content-addressed cache
  (:mod:`repro.sweep.cache`), and a warm run returns the *same* bytes
  a cold run computed.

Results come back as :class:`~repro.sweep.results.SweepResult` /
:class:`~repro.sweep.results.CellResult` wrappers with per-cell metric
and observability roll-ups.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..sim.backend import get_backend, resolve_backend
from .cache import ResultCache, content_address
from .results import CellResult, SweepResult, TrialRecord
from .seeding import trial_seed_sequences
from .spec import ACTIVITY, SweepCell, SweepError, SweepSpec, \
    fault_plan_from_dicts


def _run_payload(result) -> Dict[str, Any]:
    """Flatten one RunResult into a JSON-safe payload dict.

    The trace is kept verbatim (JSON-lines text) so byte-identity can
    be asserted across serial / parallel / cached executions; the obs
    digest keeps only its deterministic slice (no host-time profile).
    """
    from ..sim.export import export_trace

    payload: Dict[str, Any] = {
        "label": result.label,
        "strategy": result.strategy,
        "n_workers": result.n_workers,
        "true_makespan": result.true_makespan,
        "measured_time": result.measured_time,
        "correct": result.correct,
        "trace": export_trace(result.trace),
    }
    if result.faults is not None:
        payload["faults"] = result.faults.summary()
    if result.obs is not None:
        payload["obs"] = {
            "makespan": result.obs.makespan,
            "n_events": result.obs.n_events,
            "n_spans": result.obs.n_spans,
            "counters": result.obs.counters,
            "histograms": result.obs.histograms,
        }
    return payload


def _tee_factory(first, second):
    """Compose two observer factories into one that tees their products."""
    def make():
        from ..obs import TeeObserver
        return TeeObserver(first(), second())
    return make


def run_trial(task: Dict[str, Any],
              observer_factory: Optional[Any] = None) -> Dict[str, Any]:
    """Execute one (cell, trial) task; pure function of the task dict.

    This is the unit the process pool ships across cores.  It must stay
    importable at module top level (pickle-by-reference) and must touch
    no process-global state, or parallel runs stop being byte-identical
    to serial ones.

    A task may carry a ``"backend"`` key naming a concrete engine (see
    :mod:`repro.sim.backend`); tasks without one run on the reference
    event-loop engine, whose path and payloads are byte-for-byte what
    they were before backends existed.

    ``observer_factory`` attaches an extra read-only tap to every run
    (one fresh observer per run, tee'd with the ``observe`` digest when
    both are requested).  Observers never perturb the engine, so the
    returned payload stays byte-identical with or without one — this is
    how :mod:`repro.stream` watches a trial live without forking the
    execution path.  In-process callers only: the pool path always
    ships bare tasks.
    """
    if task.get("backend", "reference") == "vector":
        from ..sim.vector import run_vector_trial
        return run_vector_trial(task)
    from ..agents import make_team
    from ..agents.student import FillStyle
    from ..flags import get_flag
    from ..schedule import (
        AcquirePolicy,
        get_scenario,
        run_core_activity,
        run_scenario,
    )

    cell = task["cell"]
    trial = task["trial"]
    ss = trial_seed_sequences(task["seed"], task["n_trials"],
                              cell_key=task["cell_key"])[trial]
    rng = np.random.default_rng(ss)

    spec = get_flag(cell["flag"])
    policy = AcquirePolicy[cell["policy"]]
    style = FillStyle[cell["style"]]
    fault_plan = (None if cell["faults"] is None
                  else fault_plan_from_dicts(cell["faults"]))
    observe = task.get("observe", False)

    team = make_team(f"trial{trial}", cell["team_size"], rng,
                     colors=list(spec.colors_used()), copies=cell["copies"])

    if cell["scenario"] == ACTIVITY:
        factory = None
        if observe:
            from ..obs import RunObserver
            factory = RunObserver
        if observer_factory is not None:
            factory = (observer_factory if factory is None
                       else _tee_factory(factory, observer_factory))
        results = run_core_activity(spec, team, rng, style=style,
                                    policy=policy, observer_factory=factory)
        runs = {label: _run_payload(r) for label, r in results.items()}
    else:
        observer = None
        if observe:
            from ..obs import RunObserver
            observer = RunObserver()
        if observer_factory is not None:
            extra = observer_factory()
            if observer is None:
                observer = extra
            else:
                from ..obs import TeeObserver
                observer = TeeObserver(observer, extra)
        r = run_scenario(get_scenario(cell["scenario"]), spec, team, rng,
                         rows=cell["rows"], cols=cell["cols"], style=style,
                         policy=policy, fault_plan=fault_plan,
                         observer=observer)
        runs = {r.label: _run_payload(r)}
    return {"trial": trial, "runs": runs}


def cell_address(cell: SweepCell, spec: SweepSpec, *,
                 observe: bool = False, backend: str = "reference") -> str:
    """The content address of one cell's full trial payload.

    The backend folds into the address only when it is not the
    reference engine: reference addresses are byte-identical to what
    they were before backends existed (warm caches stay warm), while
    vector payloads — which carry no traces — can never collide with
    reference ones.
    """
    key: Dict[str, Any] = {
        "cell": cell.key_dict(),
        "n_trials": spec.n_trials,
        "seed": spec.seed,
        "observe": observe,
    }
    if backend != "reference":
        key["backend"] = backend
    return content_address(key)


def _make_tasks(cell: SweepCell, spec: SweepSpec, observe: bool,
                backend: str = "reference") -> List[Dict[str, Any]]:
    key_dict = cell.key_dict()
    tasks = [
        {"cell": key_dict, "cell_key": cell.key(), "seed": spec.seed,
         "n_trials": spec.n_trials, "trial": t, "observe": observe}
        for t in range(spec.n_trials)
    ]
    if backend != "reference":
        # Reference task dicts stay byte-identical to the pre-backend
        # layout (serve pins this); only non-default engines are named.
        for task in tasks:
            task["backend"] = backend
    return tasks


def run_cell_tasks(tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute all trial tasks of one cell on its engine's batch path.

    The whole-cell unit the executor (and fabric workers) ship when a
    cell resolved to a batching backend: one call amortizes plan
    compilation and RNG batching across every trial of the cell.
    Importable at module top level for pickle-by-reference.
    """
    if not tasks:
        return []
    engine = get_backend(tasks[0].get("backend", "reference"))
    return engine.run_cell(tasks)


def validate_cells(cells: List[SweepCell]) -> None:
    """Refuse statically-invalid cells before any trial is dispatched.

    Shared by :func:`run_sweep` and the fabric coordinator so every
    execution path enforces the same gate: fault plans cannot target
    ACTIVITY cells, and any ERROR-severity pre-flight finding
    (undersized team, provable deadlock, fault plan naming a
    nonexistent target) is a refusal.

    Raises:
        SweepError: naming the offending cell and its findings.
    """
    # Deferred import: repro.analyze depends on repro.sweep.spec, so a
    # module-level import here would tangle package initialization.
    from ..analyze.preflight import check_cell
    from ..analyze.report import Severity, issues_summary

    for cell in cells:
        if cell.scenario == ACTIVITY and cell.fault_plan is not None:
            raise SweepError(
                f"cell {cell.describe()!r}: fault plans apply to single "
                f"scenarios, not ACTIVITY cells"
            )
        failed = [i for i in check_cell(cell)
                  if i.severity is Severity.ERROR]
        if failed:
            raise SweepError(
                f"cell {cell.describe()!r} failed static analysis: "
                f"{issues_summary(failed)}"
            )


def _pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    # Prefer fork where available: it inherits sys.path (no editable
    # install needed) and skips per-worker interpreter start-up.  The
    # tasks are start-method agnostic either way.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return concurrent.futures.ProcessPoolExecutor(max_workers=workers,
                                                  mp_context=ctx)


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[Union[str, "os.PathLike"]] = None,
    store: Optional[Any] = None,
    store_tenant: str = "public",
    observe: bool = False,
    backend: str = "reference",
) -> SweepResult:
    """Run a whole sweep: expand the grid, fan out trials, cache cells.

    Args:
        spec: the declarative grid.
        workers: processes to fan trials across; 1 runs in-process.
            Parallel and serial execution are byte-identical.
        cache: a :class:`~repro.sweep.cache.ResultCache` to consult and
            fill; cells whose address hits return their stored trials
            with zero recomputation.
        cache_dir: convenience — build a ``ResultCache`` at this path
            (ignored when ``cache`` is given).  No cache by default.
        store: a :class:`~repro.store.ResultStore` to persist through —
            the cache (if any) is wrapped in a read-through
            :class:`~repro.store.StoreTier`, so computed cells survive
            process restarts and cache-directory deletion, and a warm
            store back-fills a cold cache.
        store_tenant: tenant path the store reads/writes under
            (created if absent); ignored without ``store``.
        observe: attach a fresh :class:`~repro.obs.observer.RunObserver`
            to every run and keep its deterministic digest per trial
            (see :meth:`~repro.sweep.results.CellResult.obs_rollup`).
        backend: trial engine — ``"reference"``, ``"vector"``, or
            ``"auto"``, resolved per cell (see
            :mod:`repro.sim.backend`).  Vector cells execute
            whole-cell batches (all trials at once, one pool unit per
            cell) and their metric payloads are bit-identical to the
            reference engine's; reference cells run the unchanged
            per-trial path.

    Raises:
        SweepError: for fault plans on ACTIVITY cells (a plan targets a
            single run, not the five-run activity sequence), and for
            cells that fail static pre-flight analysis (undersized
            teams, provable deadlocks, fault plans naming nonexistent
            targets — see :mod:`repro.analyze.preflight`); invalid work
            is refused before any trial is dispatched.
        BackendError: for an unknown backend name, or an explicit
            ``"vector"`` request on a cell the vector engine cannot
            express (fault plan, observers attached).
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if store is not None:
        from ..store import StoreTier
        cache = StoreTier(store, cache=cache, tenant=store_tenant)

    cells = spec.cells()
    validate_cells(cells)
    engines = [resolve_backend(backend, cell.key_dict(), observe=observe)
               for cell in cells]

    started = time.perf_counter()
    cell_results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[tuple] = []  # (cell_index, task) — reference cells
    batches: List[tuple] = []  # (cell_index, [tasks]) — batching cells
    cached_trials = 0

    for i, cell in enumerate(cells):
        payload = None
        if cache is not None:
            payload = cache.get(cell_address(cell, spec, observe=observe,
                                             backend=engines[i]))
        if payload is not None:
            trials = [TrialRecord.from_payload(t) for t in payload["trials"]]
            cell_results[i] = CellResult(cell=cell, trials=trials,
                                         cached=True)
            cached_trials += spec.n_trials
        elif engines[i] == "reference":
            for task in _make_tasks(cell, spec, observe):
                pending.append((i, task))
        else:
            batches.append((i, _make_tasks(cell, spec, observe,
                                           backend=engines[i])))

    # Execute every uncached trial, then reassemble in task order so the
    # result never depends on completion order.  Reference cells fan
    # out per trial; batching backends ship one whole cell per unit.
    trial_payloads: Dict[tuple, Dict[str, Any]] = {}

    def _store_batch(i: int, payloads: List[Dict[str, Any]]) -> None:
        for p in payloads:
            trial_payloads[(i, p["trial"])] = p

    if pending or batches:
        if workers == 1 or len(pending) + len(batches) == 1:
            for i, task in pending:
                trial_payloads[(i, task["trial"])] = run_trial(task)
            for i, tasks in batches:
                _store_batch(i, run_cell_tasks(tasks))
        else:
            with _pool(workers) as pool:
                futures: Dict[concurrent.futures.Future, tuple] = {
                    pool.submit(run_trial, task): (i, task["trial"])
                    for i, task in pending
                }
                batch_futures = {
                    pool.submit(run_cell_tasks, tasks): i
                    for i, tasks in batches
                }
                for fut in concurrent.futures.as_completed(futures):
                    trial_payloads[futures[fut]] = fut.result()
                for fut in concurrent.futures.as_completed(batch_futures):
                    _store_batch(batch_futures[fut], fut.result())

    for i, cell in enumerate(cells):
        if cell_results[i] is not None:
            continue
        payloads = [trial_payloads[(i, t)] for t in range(spec.n_trials)]
        if cache is not None:
            cache.put(cell_address(cell, spec, observe=observe,
                                   backend=engines[i]),
                      {"cell": cell.key_dict(), "trials": payloads})
        cell_results[i] = CellResult(
            cell=cell,
            trials=[TrialRecord.from_payload(p) for p in payloads],
            cached=False,
        )

    return SweepResult(
        spec=spec,
        cells=[c for c in cell_results if c is not None],
        computed_trials=(len(pending)
                         + sum(len(tasks) for _, tasks in batches)),
        cached_trials=cached_trials,
        wall_seconds=time.perf_counter() - started,
        workers=workers,
    )
