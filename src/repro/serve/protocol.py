"""The serve wire protocol: versioned JSON schemas and their codec.

Every request and response body is a JSON object carrying a
``"protocol"`` version field.  This module owns the vocabulary —
:class:`RunRequest` / :class:`SweepRequest` parsing and validation,
response envelope builders, and the :class:`ProtocolError` hierarchy
that maps malformed input onto structured HTTP error bodies (a bad
request is *always* a typed JSON error with a 4xx status, never a 500
with a stack trace).

Determinism contract: :meth:`RunRequest.task` builds *exactly* the
task dict :func:`repro.sweep.executor.run_trial` receives from
:func:`repro.sweep.executor.run_sweep` for a one-trial sweep of the
same cell, and :meth:`RunRequest.address` is the same content address
:func:`repro.sweep.executor.cell_address` computes.  A served trial is
therefore byte-identical to the in-process one, and the server's cache
entries interoperate with ``repro sweep --cache-dir`` entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..agents.student import FillStyle
from ..schedule.runner import AcquirePolicy
from ..sim.backend import BACKEND_CHOICES
from ..sweep.cache import content_address
from ..sweep.spec import (
    ACTIVITY,
    SweepCell,
    SweepError,
    SweepSpec,
    cell_from_key_dict,
)

#: The wire-format version this server speaks.  Bump on breaking
#: changes to request/response shapes; requests carrying a different
#: version are rejected with 400 ``unsupported_protocol``.
PROTOCOL_VERSION = 1

#: Default cap on request body size (bytes); oversized bodies get 413.
DEFAULT_MAX_BODY_BYTES = 1 << 20


class ProtocolError(Exception):
    """A request the server refuses, mapped to an HTTP status.

    Attributes:
        status: the HTTP status code to respond with.
        code: a stable machine-readable error identifier.
        message: human-readable detail.
        retry_after: seconds to wait before retrying (429 responses).
    """

    def __init__(self, status: int, code: str, message: str, *,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


def dumps(body: Dict[str, Any]) -> bytes:
    """Canonical JSON encoding: sorted keys, compact separators.

    Canonical bytes make responses comparable in determinism tests —
    the same payload always serializes identically.
    """
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body into a JSON object.

    Raises:
        ProtocolError: 400 ``bad_json`` when the bytes are not valid
            JSON, or 400 ``bad_request`` when the top level is not an
            object; both carry the parser's detail message.
    """
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, "bad_json",
                            f"request body is not valid JSON: {exc}")
    if not isinstance(body, dict):
        raise ProtocolError(
            400, "bad_request",
            f"request body must be a JSON object, got "
            f"{type(body).__name__}")
    _check_version(body)
    return body


def _check_version(body: Dict[str, Any]) -> None:
    version = body.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            400, "unsupported_protocol",
            f"server speaks protocol {PROTOCOL_VERSION}, "
            f"request declared {version!r}")


def error_body(code: str, message: str) -> Dict[str, Any]:
    """The structured JSON body every error response carries."""
    return {"protocol": PROTOCOL_VERSION,
            "error": {"code": code, "message": message}}


def _reject_unknown(body: Dict[str, Any], allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(body) - set(allowed) - {"protocol"})
    if unknown:
        raise ProtocolError(
            400, "unknown_field",
            f"unknown field(s) {unknown}; allowed: {sorted(allowed)}")


def _as_int(body: Dict[str, Any], key: str, default: int, *,
            minimum: Optional[int] = None) -> int:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(400, "bad_field",
                            f"{key!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(400, "bad_field",
                            f"{key!r} must be >= {minimum}, got {value}")
    return value


def _as_bool(body: Dict[str, Any], key: str, default: bool) -> bool:
    value = body.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(400, "bad_field",
                            f"{key!r} must be a boolean, got {value!r}")
    return value


def _as_scenario(value: Any) -> int:
    if value == "activity":
        return ACTIVITY
    if isinstance(value, bool) or not isinstance(value, int) \
            or value not in (ACTIVITY, 1, 2, 3, 4):
        raise ProtocolError(
            400, "bad_field",
            f"scenario must be 1-4, 0, or 'activity', got {value!r}")
    return value


def _as_policy(value: Any) -> AcquirePolicy:
    try:
        return AcquirePolicy[str(value).upper()]
    except KeyError:
        raise ProtocolError(
            400, "bad_field",
            f"unknown policy {value!r}; one of "
            f"{sorted(p.name.lower() for p in AcquirePolicy)}") from None


def _as_style(value: Any) -> FillStyle:
    try:
        return FillStyle[str(value).upper()]
    except KeyError:
        raise ProtocolError(
            400, "bad_field",
            f"unknown style {value!r}; one of "
            f"{sorted(s.name.lower() for s in FillStyle)}") from None


def _as_backend(body: Dict[str, Any]) -> Optional[str]:
    value = body.get("backend")
    if value is None:
        return None
    if not isinstance(value, str) or value not in BACKEND_CHOICES:
        raise ProtocolError(
            400, "bad_field",
            f"'backend' must be one of {sorted(BACKEND_CHOICES)}, "
            f"got {value!r}")
    return value


def _as_timeout(body: Dict[str, Any]) -> Optional[float]:
    value = body.get("timeout_s")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise ProtocolError(
            400, "bad_field",
            f"'timeout_s' must be a positive number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class RunRequest:
    """One validated ``POST /run`` body: a single (cell, seed) trial.

    Field defaults mirror :class:`~repro.sweep.spec.SweepSpec` so a
    bare ``{"flag": "mauritius"}`` request means the same experiment
    the CLI default sweep runs.
    """

    flag: str
    scenario: int = 3
    seed: int = 0
    team_size: int = 4
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN
    style: FillStyle = FillStyle.SCRIBBLE
    copies: int = 1
    rows: Optional[int] = None
    cols: Optional[int] = None
    observe: bool = False
    backend: Optional[str] = None
    timeout_s: Optional[float] = None
    stream: bool = False

    _FIELDS = ("flag", "scenario", "seed", "team_size", "policy", "style",
               "copies", "rows", "cols", "observe", "backend", "timeout_s",
               "stream")

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "RunRequest":
        """Parse and validate a decoded request body.

        Raises:
            ProtocolError: 400 with a field-specific code and message
                on any invalid or unknown field.
        """
        _reject_unknown(body, cls._FIELDS)
        flag = body.get("flag")
        if not isinstance(flag, str) or not flag:
            raise ProtocolError(400, "bad_field",
                                f"'flag' must be a non-empty string, "
                                f"got {flag!r}")
        rows = body.get("rows")
        cols = body.get("cols")
        for name, value in (("rows", rows), ("cols", cols)):
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)
                                      or value < 1):
                raise ProtocolError(
                    400, "bad_field",
                    f"{name!r} must be a positive integer, got {value!r}")
        try:
            return cls(
                flag=flag,
                scenario=_as_scenario(body.get("scenario", 3)),
                seed=_as_int(body, "seed", 0),
                team_size=_as_int(body, "team_size", 4, minimum=1),
                policy=_as_policy(body.get("policy", "hold_color_run")),
                style=_as_style(body.get("style", "scribble")),
                copies=_as_int(body, "copies", 1, minimum=1),
                rows=rows, cols=cols,
                observe=_as_bool(body, "observe", False),
                backend=_as_backend(body),
                timeout_s=_as_timeout(body),
                stream=_as_bool(body, "stream", False),
            )
        except SweepError as exc:
            raise ProtocolError(400, "bad_field", str(exc)) from exc

    def cell(self) -> SweepCell:
        """The sweep-grid point this request names."""
        return SweepCell(flag=self.flag, scenario=self.scenario,
                         team_size=self.team_size, policy=self.policy,
                         style=self.style, copies=self.copies,
                         rows=self.rows, cols=self.cols)

    def task(self, *, backend: str = "reference") -> Dict[str, Any]:
        """The executor task dict: trial 0 of a one-trial batch.

        Matches :func:`repro.sweep.executor.run_sweep`'s internal task
        layout exactly (a regression test pins the two together), so
        the served payload is byte-identical to the in-process one.
        ``backend`` is the *resolved* engine name (the handler applies
        the server default and ``auto`` fallback first); reference
        tasks carry no ``"backend"`` key, mirroring the executor.
        """
        cell = self.cell()
        task = {"cell": cell.key_dict(), "cell_key": cell.key(),
                "seed": self.seed, "n_trials": 1, "trial": 0,
                "observe": self.observe}
        if backend != "reference":
            task["backend"] = backend
        return task

    def address(self, *, backend: str = "reference") -> str:
        """The cache address — identical to the sweep layer's.

        ``POST /run`` is defined as trial 0 of a one-trial sweep of
        this cell, so the server and ``repro sweep --cache-dir`` read
        and write the very same entries.  Like
        :func:`repro.sweep.executor.cell_address`, a non-reference
        ``backend`` folds into the address so metric-only vector
        payloads never collide with reference ones.
        """
        key: Dict[str, Any] = {"cell": self.cell().key_dict(),
                               "n_trials": 1, "seed": self.seed,
                               "observe": self.observe}
        if backend != "reference":
            key["backend"] = backend
        return content_address(key)


@dataclass(frozen=True)
class TaskRequest:
    """One validated ``POST /task`` body: a raw executor task.

    The worker-facing sibling of :class:`RunRequest`: instead of
    friendly per-axis fields it takes a whole
    :meth:`~repro.sweep.spec.SweepCell.key_dict` plus the batch seed,
    the cell's trial count, and *which* trial to run — exactly the
    coordinates :func:`repro.sweep.executor.run_trial` seeds from.
    This lets :mod:`repro.fabric` lease any cell of any sweep (fault
    plans included, which ``/run`` cannot express) to a remote worker
    and get back the byte-identical trial payload.

    No cache read-through happens for tasks: the fabric coordinator
    owns cell-level caching, and a worker that is asked to compute
    should compute.
    """

    cell: SweepCell
    seed: int
    n_trials: int
    trial: int
    observe: bool = False
    backend: Optional[str] = None
    timeout_s: Optional[float] = None

    _FIELDS = ("cell", "seed", "n_trials", "trial", "observe", "backend",
               "timeout_s")

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "TaskRequest":
        """Parse and validate a decoded request body.

        Raises:
            ProtocolError: 400 with a field-specific code and message
                on any invalid or unknown field, including every way a
                cell dict can be malformed.
        """
        _reject_unknown(body, cls._FIELDS)
        raw_cell = body.get("cell")
        if not isinstance(raw_cell, dict):
            raise ProtocolError(
                400, "bad_field",
                f"'cell' must be a cell key_dict object, got {raw_cell!r}")
        try:
            cell = cell_from_key_dict(raw_cell)
        except SweepError as exc:
            raise ProtocolError(400, "bad_field",
                                f"'cell' is invalid: {exc}") from exc
        n_trials = _as_int(body, "n_trials", 1, minimum=1)
        trial = _as_int(body, "trial", 0, minimum=0)
        if trial >= n_trials:
            raise ProtocolError(
                400, "bad_field",
                f"'trial' must be < n_trials ({n_trials}), got {trial}")
        return cls(cell=cell,
                   seed=_as_int(body, "seed", 0),
                   n_trials=n_trials,
                   trial=trial,
                   observe=_as_bool(body, "observe", False),
                   backend=_as_backend(body),
                   timeout_s=_as_timeout(body))

    def task(self, *, backend: str = "reference") -> Dict[str, Any]:
        """The executor task dict, identical to ``run_sweep``'s layout.

        The cell dict is re-canonicalized through the parsed
        :class:`~repro.sweep.spec.SweepCell` (not echoed from the
        wire), so key order or JSON quirks in the request cannot change
        the trial's seed stream or cache identity.  ``backend`` is the
        resolved engine; reference tasks carry no ``"backend"`` key.
        """
        task = {"cell": self.cell.key_dict(), "cell_key": self.cell.key(),
                "seed": self.seed, "n_trials": self.n_trials,
                "trial": self.trial, "observe": self.observe}
        if backend != "reference":
            task["backend"] = backend
        return task


def _as_tuple(body: Dict[str, Any], key: str, default: tuple,
              convert) -> tuple:
    value = body.get(key)
    if value is None:
        return default
    if not isinstance(value, list) or not value:
        raise ProtocolError(400, "bad_field",
                            f"{key!r} must be a non-empty list, "
                            f"got {value!r}")
    return tuple(convert(v) for v in value)


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /sweep`` body: a declarative cell grid."""

    spec: SweepSpec
    observe: bool = False
    backend: Optional[str] = None
    timeout_s: Optional[float] = None

    _FIELDS = ("flags", "scenarios", "team_sizes", "policies", "styles",
               "copies", "n_trials", "seed", "rows", "cols", "observe",
               "backend", "timeout_s")

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "SweepRequest":
        """Parse and validate a decoded request body.

        Raises:
            ProtocolError: 400 with a field-specific code and message
                on any invalid or unknown field.
        """
        _reject_unknown(body, cls._FIELDS)

        def _flag(v: Any) -> str:
            if not isinstance(v, str) or not v:
                raise ProtocolError(400, "bad_field",
                                    f"flag names must be non-empty "
                                    f"strings, got {v!r}")
            return v

        def _size(v: Any) -> int:
            if isinstance(v, bool) or not isinstance(v, int) or v < 1:
                raise ProtocolError(400, "bad_field",
                                    f"sizes must be positive integers, "
                                    f"got {v!r}")
            return v

        rows = body.get("rows")
        cols = body.get("cols")
        try:
            spec = SweepSpec(
                flags=_as_tuple(body, "flags", ("mauritius",), _flag),
                scenarios=_as_tuple(body, "scenarios", (3,), _as_scenario),
                team_sizes=_as_tuple(body, "team_sizes", (4,), _size),
                policies=_as_tuple(body, "policies",
                                   (AcquirePolicy.HOLD_COLOR_RUN,),
                                   _as_policy),
                styles=_as_tuple(body, "styles", (FillStyle.SCRIBBLE,),
                                 _as_style),
                copies=_as_tuple(body, "copies", (1,), _size),
                n_trials=_as_int(body, "n_trials", 1, minimum=1),
                seed=_as_int(body, "seed", 0),
                rows=rows, cols=cols,
            )
        except SweepError as exc:
            raise ProtocolError(400, "bad_field", str(exc)) from exc
        return cls(spec=spec,
                   observe=_as_bool(body, "observe", False),
                   backend=_as_backend(body),
                   timeout_s=_as_timeout(body))


def run_response(payload: Dict[str, Any], *, cached: bool,
                 batch_size: int) -> Dict[str, Any]:
    """The ``POST /run`` response envelope around one trial payload."""
    return {"protocol": PROTOCOL_VERSION, "cached": cached,
            "batch_size": batch_size, "trial": payload}


def stream_response(token: str, *, cached: bool,
                    runs: List[str]) -> Dict[str, Any]:
    """The ``POST /run`` (``stream=true``) envelope: a stream token.

    The token names a live feed on ``GET /stream?run=<token>``;
    ``runs`` lists the run labels the feed will carry, in order, and
    ``cached`` says whether the feed replays an archived payload
    (frame-identical to the live run it archives) or executes fresh.
    """
    return {"protocol": PROTOCOL_VERSION, "stream": token,
            "cached": cached, "runs": runs}


def task_response(payload: Dict[str, Any], *, trial: int,
                  batch_size: int) -> Dict[str, Any]:
    """The ``POST /task`` response envelope around one trial payload."""
    return {"protocol": PROTOCOL_VERSION, "trial_index": trial,
            "batch_size": batch_size, "trial": payload}


def sweep_response(rows: List[List[str]], *, computed_trials: int,
                   cached_trials: int, all_correct: bool,
                   wall_seconds: float) -> Dict[str, Any]:
    """The ``POST /sweep`` response envelope: per-cell summary rows."""
    return {"protocol": PROTOCOL_VERSION,
            "columns": ["cell", "run", "trials", "median",
                        "correct", "cache"],
            "rows": rows,
            "computed_trials": computed_trials,
            "cached_trials": cached_trials,
            "all_correct": all_correct,
            "wall_seconds": round(wall_seconds, 6)}
