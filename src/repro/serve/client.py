"""A small synchronous client for the serve API.

Stdlib ``http.client`` only — one connection per request (the server
answers ``Connection: close``), JSON in/out, and typed errors:
non-2xx responses raise :class:`ServeError` carrying the status, the
structured error body, and any ``Retry-After`` hint, so callers can
implement backoff without parsing anything themselves.

Used by the test suite, the throughput benchmark, the executable docs
examples, and anyone driving a server from a notebook::

    client = ServeClient("127.0.0.1", 8642)
    reply = client.run(flag="mauritius", scenario=3, seed=7)
    print(reply["cached"], reply["trial"]["runs"].keys())
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

from .protocol import PROTOCOL_VERSION


class ServeError(Exception):
    """A non-2xx response from the server.

    Attributes:
        status: the HTTP status code.
        code: the structured error code (``"too_many_requests"``, ...)
            or ``"unknown"`` when the body was not structured.
        body: the decoded JSON error body (may be empty).
        retry_after: seconds to back off, when the server said so.
    """

    def __init__(self, status: int, body: Dict[str, Any],
                 retry_after: Optional[float] = None) -> None:
        err = body.get("error", {}) if isinstance(body, dict) else {}
        self.status = status
        self.code = err.get("code", "unknown")
        self.body = body
        self.retry_after = retry_after
        super().__init__(
            f"HTTP {status} [{self.code}] "
            f"{err.get('message', '(no message)')}")


class ServeClient:
    """Synchronous JSON client for one serve endpoint address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, str], bytes]:
        """One raw exchange; returns ``(status, headers, body bytes)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    raw)
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        status, headers, raw = self.request(method, path, body)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {}
        if status >= 400:
            retry_after = headers.get("retry-after")
            raise ServeError(
                status, decoded,
                float(retry_after) if retry_after is not None else None)
        return decoded

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness plus queue depth/limit."""
        return self._json("GET", "/healthz")

    def flags(self) -> Dict[str, Any]:
        """``GET /flags`` — the servable flag catalog."""
        return self._json("GET", "/flags")

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition dump."""
        status, _, raw = self.request("GET", "/metrics")
        if status >= 400:
            raise ServeError(status, {})
        return raw.decode("utf-8")

    def run(self, **fields: Any) -> Dict[str, Any]:
        """``POST /run`` — one trial; kwargs become the request body.

        Raises:
            ServeError: on any non-2xx response (429 carries
                ``retry_after``; 504 means the deadline passed).
        """
        fields.setdefault("protocol", PROTOCOL_VERSION)
        return self._json("POST", "/run", fields)

    def sweep(self, **fields: Any) -> Dict[str, Any]:
        """``POST /sweep`` — a cell grid; kwargs become the body.

        Raises:
            ServeError: on any non-2xx response.
        """
        fields.setdefault("protocol", PROTOCOL_VERSION)
        return self._json("POST", "/sweep", fields)
