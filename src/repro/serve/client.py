"""A small synchronous client for the serve API.

Stdlib ``http.client`` only — one connection per request (the server
answers ``Connection: close``), JSON in/out, and typed errors:
non-2xx responses raise :class:`ServeError` carrying the status, the
structured error body, and any ``Retry-After`` hint.

Pass a :class:`~repro.serve.retry.RetryPolicy` and the client absorbs
transient failures itself — exponential backoff with full jitter,
``Retry-After`` honored as a floor on 429, the whole dance bounded by
a deadline — so callers stop hand-rolling retry loops.  Every request
here is safe to retry: the compute endpoints are pure functions of the
request body (at worst a duplicate recompute that the result cache
dedupes), and the read endpoints are read-only.

Used by the test suite, the throughput benchmark, the executable docs
examples, the sweep fabric's remote workers, and anyone driving a
server from a notebook::

    client = ServeClient("127.0.0.1", 8642, retry=RetryPolicy())
    reply = client.run(flag="mauritius", scenario=3, seed=7)
    print(reply["cached"], reply["trial"]["runs"].keys())
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Dict, Iterator, Optional, Tuple

from ..stream import StreamEvent, StreamProtocolError, decode_sse_lines
from .protocol import PROTOCOL_VERSION
from .retry import RetryExhausted, RetryPolicy, call_with_retry


class ServeError(Exception):
    """A non-2xx response from the server.

    Attributes:
        status: the HTTP status code.
        code: the structured error code (``"too_many_requests"``, ...)
            or ``"unknown"`` when the body was not structured.
        body: the decoded JSON error body (may be empty).
        retry_after: seconds to back off, when the server said so.
    """

    def __init__(self, status: int, body: Dict[str, Any],
                 retry_after: Optional[float] = None) -> None:
        err = body.get("error", {}) if isinstance(body, dict) else {}
        self.status = status
        self.code = err.get("code", "unknown")
        self.body = body
        self.retry_after = retry_after
        super().__init__(
            f"HTTP {status} [{self.code}] "
            f"{err.get('message', '(no message)')}")


class ServeClient:
    """Synchronous JSON client for one serve endpoint address.

    With ``retry`` set, every JSON call retries transient failures
    (connection errors and the policy's HTTP statuses — 429/503/504 by
    default) under exponential backoff with full jitter; a 429's
    ``Retry-After`` floors the sleep.  ``retry=None`` (the default)
    keeps the old fail-fast behavior.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout_s: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 token: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self.token = token

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, str], bytes]:
        """One raw exchange; returns ``(status, headers, body bytes)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    raw)
        finally:
            conn.close()

    def _json_once(self, method: str, path: str,
                   body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        status, headers, raw = self.request(method, path, body)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {}
        if status >= 400:
            retry_after = headers.get("retry-after")
            raise ServeError(
                status, decoded,
                float(retry_after) if retry_after is not None else None)
        return decoded

    def _classify(self, exc: BaseException):
        """(retryable?, Retry-After floor) for one failed attempt."""
        if isinstance(exc, ServeError):
            assert self.retry is not None
            return (self.retry.should_retry_status(exc.status),
                    exc.retry_after)
        if isinstance(exc, (OSError, http.client.HTTPException)):
            return True, None  # connection refused/reset/timeout
        return False, None

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if self.retry is None:
            return self._json_once(method, path, body)
        try:
            return call_with_retry(
                lambda: self._json_once(method, path, body),
                self.retry, classify=self._classify)
        except RetryExhausted as exc:
            raise exc.last from exc  # surface the familiar typed error

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness plus queue depth/limit."""
        return self._json("GET", "/healthz")

    def flags(self) -> Dict[str, Any]:
        """``GET /flags`` — the servable flag catalog."""
        return self._json("GET", "/flags")

    def tenants(self) -> Dict[str, Any]:
        """``GET /tenants`` — store tenants with usage and quotas.

        Raises:
            ServeError: 404 ``store_disabled`` on a server without a
                durable store; 401/403 under token auth.
        """
        return self._json("GET", "/tenants")

    def results(self, *, tenant: Optional[str] = None,
                limit: Optional[int] = None,
                digest: Optional[str] = None,
                after: Optional[str] = None) -> Dict[str, Any]:
        """``GET /results`` — durable result listings (or one payload).

        With ``digest`` set, returns that result's full stored payload
        (the byte-level interop hook); otherwise a newest-first listing,
        optionally scoped to ``tenant`` and capped at ``limit``.

        Pagination is cursor-based: pass ``after=<digest>`` (the
        ``"next"`` cursor of the previous page) to continue a listing
        past its last row; a reply without ``"next"`` is the final
        page.  Cursors are stable under concurrent inserts — new rows
        land on page one, never shift later pages.

        Raises:
            ServeError: 404 for a missing store, tenant, or digest;
                400 for an unknown ``after`` cursor; 401/403 under
                token auth.
        """
        params = {}
        if tenant is not None:
            params["tenant"] = tenant
        if limit is not None:
            params["limit"] = str(limit)
        if digest is not None:
            params["digest"] = digest
        if after is not None:
            params["after"] = after
        path = "/results"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._json("GET", path)

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition dump."""
        status, _, raw = self.request("GET", "/metrics")
        if status >= 400:
            raise ServeError(status, {})
        return raw.decode("utf-8")

    def run(self, **fields: Any) -> Dict[str, Any]:
        """``POST /run`` — one trial; kwargs become the request body.

        Pass ``stream=True`` and the reply carries a ``"stream"``
        token instead of a trial payload; feed it to :meth:`stream`
        to watch the run live.

        Raises:
            ServeError: on any non-2xx response (429 carries
                ``retry_after``; 504 means the deadline passed).
        """
        fields.setdefault("protocol", PROTOCOL_VERSION)
        return self._json("POST", "/run", fields)

    def _stream_once(self, token: str,
                     cursor: int) -> Iterator[StreamEvent]:
        """One SSE connection's worth of envelopes (until it drops)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            headers = {"Accept": "text/event-stream"}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            if cursor:
                headers["Last-Event-ID"] = str(cursor)
            conn.request("GET",
                         "/stream?" + urllib.parse.urlencode(
                             {"run": token}),
                         headers=headers)
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode("utf-8")) \
                        if raw else {}
                except json.JSONDecodeError:
                    decoded = {}
                raise ServeError(response.status, decoded)

            def lines() -> Iterator[str]:
                while True:
                    raw_line = response.readline()
                    if not raw_line:
                        return
                    yield raw_line.decode("utf-8")

            for event in decode_sse_lines(lines()):
                yield event
        finally:
            conn.close()

    def stream(self, token: str, *, after: int = 0,
               max_reconnects: int = 5) -> Iterator[StreamEvent]:
        """``GET /stream?run=<token>`` — yield a feed's typed envelopes.

        Generates :class:`~repro.stream.protocol.StreamEvent` frames
        live, ending after the feed's terminal frame (``end``,
        ``bye``, or ``error`` — inspect ``kind``/``data`` to tell a
        clean finish from a failure).  Heartbeat comments are consumed
        silently.

        A dropped connection resumes automatically: the client
        reconnects with ``Last-Event-ID`` set to the last seen cursor,
        and the server replays the missed frames from history, so the
        yielded sequence stays gap-free.  The same resume covers
        server-side drops — when this subscriber fell behind and its
        bounded queue shed frames (a hole in ``seq``), the client
        abandons the connection and re-reads the missed frames from
        history instead of yielding a gapped feed.  Up to
        ``max_reconnects`` consecutive *fruitless* attempts are
        absorbed; progress resets the budget.

        Raises:
            ServeError: on a non-2xx response (404
                ``stream_not_found`` once a finished feed ages out).
            OSError: when reconnecting stopped making progress.
        """
        cursor = after
        failures = 0
        while True:
            progressed = False
            try:
                source = self._stream_once(token, cursor)
                for event in source:
                    if event.seq <= cursor:
                        continue  # replayed overlap after a reconnect
                    if event.seq > cursor + 1:
                        # Our bounded queue overflowed server-side;
                        # resume from the cursor to fill the hole.
                        progressed = True
                        source.close()
                        break
                    cursor = event.seq
                    progressed = True
                    yield event
                    if event.terminal:
                        return
                else:
                    raise ConnectionError(
                        "stream closed before its terminal frame")
            except (OSError, http.client.HTTPException,
                    StreamProtocolError):
                failures = 0 if progressed else failures + 1
                if failures > max_reconnects:
                    raise

    def sweep(self, **fields: Any) -> Dict[str, Any]:
        """``POST /sweep`` — a cell grid; kwargs become the body.

        Raises:
            ServeError: on any non-2xx response.
        """
        fields.setdefault("protocol", PROTOCOL_VERSION)
        return self._json("POST", "/sweep", fields)

    def task(self, cell: Dict[str, Any], *, seed: int, n_trials: int,
             trial: int, observe: bool = False,
             backend: Optional[str] = None,
             timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """``POST /task`` — one raw executor task (the worker endpoint).

        ``cell`` is a :meth:`repro.sweep.spec.SweepCell.key_dict` —
        the same identity dict the sweep layer hashes — and the reply's
        ``"trial"`` payload is byte-identical to what an in-process
        :func:`repro.sweep.executor.run_trial` computes for the same
        task.  This is how :mod:`repro.fabric` remote workers execute
        leased cells trial by trial.

        Raises:
            ServeError: on any non-2xx response.
        """
        body: Dict[str, Any] = {"protocol": PROTOCOL_VERSION, "cell": cell,
                                "seed": seed, "n_trials": n_trials,
                                "trial": trial, "observe": observe}
        if backend is not None:
            body["backend"] = backend
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._json("POST", "/task", body)
