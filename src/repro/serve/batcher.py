"""The micro-batcher: coalesce trial requests into one dispatch.

Inference servers amortize per-request overhead by batching requests
that arrive close together; this module transfers the pattern onto the
simulator.  ``/run`` requests that miss the cache land on the
batcher's queue; a collector loop takes the first waiting task, keeps
collecting for a short window (``window_s``) or until ``max_batch``
tasks are in hand, then ships the whole batch through *one* executor
dispatch — one pickle round-trip to a pool worker instead of one per
request.

Every task is a pure function of its dict (see
:func:`repro.sweep.executor.run_trial`), so batching never changes a
result: a trial computed in a batch of 8 is byte-identical to the same
trial computed alone, and the determinism tests assert exactly that.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import BATCH_SIZE_BUCKETS, MetricsRegistry

#: Queue sentinel: drain what is already queued, then stop the loop.
_SHUTDOWN = object()


def run_batch(tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute one micro-batch of trial tasks, in order.

    Module-level so a process pool can pickle it by reference; the
    whole batch crosses the pool boundary as a single call.
    """
    from ..sweep.executor import run_trial
    return [run_trial(task) for task in tasks]


class MicroBatcher:
    """Coalesces submitted tasks and dispatches them in batches.

    Args:
        window_s: how long to wait for more tasks after the first one
            arrives before dispatching what is in hand.
        max_batch: dispatch immediately once this many tasks are
            collected.
        executor: a ``concurrent.futures`` executor for the actual
            compute; ``None`` uses the event loop's default thread
            pool (fine for tests and single-core boxes).
        registry: metrics registry for batch-size/batch-count series.
    """

    def __init__(self, *, window_s: float = 0.005, max_batch: int = 16,
                 executor=None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window_s = window_s
        self.max_batch = max_batch
        self._executor = executor
        self._queue: Optional[asyncio.Queue] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._closed = False
        self._registry = registry
        if registry is not None:
            self._batch_size = registry.histogram(
                "serve_batch_size",
                "Tasks coalesced into one executor dispatch",
                buckets=BATCH_SIZE_BUCKETS)
            self._batches = registry.counter(
                "serve_batches_total", "Executor dispatches")
            self._trials = registry.counter(
                "serve_batched_trials_total",
                "Trials computed through the batcher")

    def start(self) -> None:
        """Start the collector loop on the running event loop."""
        self._queue = asyncio.Queue()
        self._closed = False
        self._loop_task = asyncio.get_running_loop().create_task(
            self._collect_loop())

    async def stop(self) -> None:
        """Drain everything already queued, then stop the loop."""
        if self._queue is None:
            return
        self._closed = True
        await self._queue.put(_SHUTDOWN)
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None

    async def submit(self, task: Dict[str, Any]
                     ) -> Tuple[Dict[str, Any], int]:
        """Queue one task; returns ``(payload, batch_size)`` when done.

        ``batch_size`` is how many tasks shared the dispatch — the
        response surfaces it so clients (and tests) can see
        coalescing happen.

        Raises:
            RuntimeError: when the batcher is not started or already
                draining.
        """
        if self._queue is None or self._closed:
            raise RuntimeError("batcher is not accepting work")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((task, future))
        return await future

    async def _collect_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            shutdown = False
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  remaining)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(item)
            await self._dispatch(batch)
            if shutdown:
                return

    async def _dispatch(self, batch: List[Tuple[Dict[str, Any],
                                                asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        tasks = [task for task, _ in batch]
        if self._registry is not None:
            self._batch_size.observe(len(batch))
            self._batches.inc()
            self._trials.inc(len(batch))
        try:
            payloads = await loop.run_in_executor(
                self._executor, run_batch, tasks)
        except Exception as exc:  # compute failed: fail every waiter
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), payload in zip(batch, payloads):
            if not future.done():  # waiter may have hit its deadline
                future.set_result((payload, len(batch)))
