"""Client-side retry: exponential backoff, full jitter, deadlines.

One policy object replaces every hand-rolled retry loop around
:class:`~repro.serve.client.ServeClient` calls.  The shape follows the
standard full-jitter recipe: attempt ``k`` (0-based) may sleep up to
``base_s * 2**k`` seconds (capped at ``cap_s``), with the actual sleep
drawn uniformly from ``[0, ceiling]`` so a fleet of retrying clients
does not thunder back in lockstep.  A ``Retry-After`` hint on a 429
response is honored as a *floor* under the drawn sleep — the server
said when it wants us back; jitter only ever adds politeness on top.
Total time spent (attempts plus sleeps) is bounded by ``deadline_s``:
when the next sleep would cross the deadline, the last error is
raised instead of waiting out a retry that could never be submitted.

Determinism: the jitter stream comes from a seeded ``random.Random``
(house rule DET003 — no unseeded RNGs), so tests can pin exact sleep
sequences.  Pass a fresh ``jitter_seed`` per client if you want fleets
to spread out.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient failures.

    Attributes:
        max_attempts: total tries, including the first (>= 1).
        base_s: backoff ceiling for the first retry.
        cap_s: upper bound any single sleep can reach.
        deadline_s: budget for the whole call — attempts plus sleeps;
            once the next sleep would cross it, the last error wins.
        retry_statuses: HTTP statuses worth retrying (429 backpressure,
            503/504 transient server states).  Connection-level errors
            (refused, reset, timed out) are always retryable.
        jitter_seed: seed for the full-jitter stream.
    """

    max_attempts: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0
    deadline_s: float = 30.0
    retry_statuses: Tuple[int, ...] = (429, 503, 504)
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_s <= 0 or self.cap_s <= 0:
            raise ValueError(
                f"base_s/cap_s must be > 0, got {self.base_s}/{self.cap_s}")
        if self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}")

    def backoff_ceiling(self, attempt: int) -> float:
        """The exponential ceiling for 0-based retry ``attempt``."""
        return min(self.cap_s, self.base_s * (2 ** attempt))

    def should_retry_status(self, status: int) -> bool:
        """Whether an HTTP status is worth another attempt."""
        return status in self.retry_statuses


class RetryExhausted(Exception):
    """Every attempt failed; carries the last underlying error.

    Attributes:
        attempts: how many attempts were made.
        last: the final exception (also the ``__cause__``).
    """

    def __init__(self, attempts: int, last: BaseException) -> None:
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"gave up after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}")


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    *,
    classify: Callable[[BaseException], Tuple[bool, Optional[float]]],
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    rng: Optional[random.Random] = None,
) -> T:
    """Run ``fn`` under a retry policy; return its first success.

    Args:
        fn: the zero-argument call to protect.
        policy: backoff/deadline configuration.
        classify: maps a raised exception to ``(retryable,
            retry_after_hint)``; the hint (seconds, or ``None``) floors
            the jittered sleep — how :class:`ServeClient` forwards a
            429's ``Retry-After`` header.
        sleep / clock: injectable for tests (virtual time).
        rng: jitter source; defaults to a fresh seeded stream from
            ``policy.jitter_seed``.

    Raises:
        RetryExhausted: when attempts run out, a non-retryable error
            arrives (``attempts`` then counts the tries so far), or the
            next sleep would cross the deadline; the last underlying
            error is chained as ``__cause__``.
    """
    rng = rng or random.Random(policy.jitter_seed)
    started = clock()
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as exc:
            last = exc
            retryable, hint = classify(exc)
            if not retryable or attempt == policy.max_attempts - 1:
                raise RetryExhausted(attempt + 1, exc) from exc
            delay = rng.uniform(0.0, policy.backoff_ceiling(attempt))
            if hint is not None:
                delay = max(delay, hint)
            elapsed = clock() - started
            if elapsed + delay > policy.deadline_s:
                raise RetryExhausted(attempt + 1, exc) from exc
            sleep(delay)
    raise RetryExhausted(policy.max_attempts,
                         last or RuntimeError("no attempts made"))
