"""The simulation service: async HTTP serving for flagsim workloads.

Where :mod:`repro.sweep` made experiments *batchable*, this package
makes them *servable*: an asyncio HTTP/JSON server (stdlib only) that
exposes the core workloads to many concurrent clients the way
always-on classroom tools are deployed, built from inference-serving
patterns:

- :mod:`~repro.serve.protocol` — versioned JSON request/response
  schemas with structured, typed errors (never a 500 stack trace);
- :mod:`~repro.serve.admission` — a bounded admission queue: at
  capacity, new requests get ``429`` + ``Retry-After`` instead of
  unbounded queueing;
- :mod:`~repro.serve.batcher` — a micro-batcher that coalesces
  ``/run`` requests arriving within a window into one executor
  dispatch;
- :mod:`~repro.serve.handlers` — endpoint logic with read-through
  :class:`~repro.sweep.cache.ResultCache` integration and
  per-request deadlines;
- :mod:`~repro.serve.server` — HTTP framing, lifecycle, graceful
  drain on SIGTERM, and :class:`BackgroundServer` for in-process use;
- :mod:`~repro.serve.client` — a small synchronous client.

``POST /run`` with ``stream: true`` returns a stream token instead of
a payload, and ``GET /stream?run=<token>`` follows the trial live over
Server-Sent Events (see :mod:`repro.stream`) — heartbeats while quiet,
``Last-Event-ID`` resume after a drop, and a terminal frame on every
path, graceful drain included.

Served results are byte-identical to in-process
:func:`repro.sweep.executor.run_sweep` results — cold, batched, or
cached — and the server's cache interoperates with
``repro sweep --cache-dir``.

Quickstart::

    from repro.serve import BackgroundServer, ServeConfig
    with BackgroundServer(ServeConfig(cache_dir=".serve-cache")) as bg:
        client = bg.client()
        reply = client.run(flag="mauritius", scenario=3, seed=7)
        print(reply["cached"], reply["trial"]["runs"].keys())
"""

from .admission import AdmissionFull, AdmissionQueue
from .batcher import MicroBatcher, run_batch
from .client import ServeClient, ServeError
from .handlers import ServeHandlers, StreamHandle
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RunRequest,
    SweepRequest,
    TaskRequest,
    error_body,
    parse_body,
)
from .retry import RetryExhausted, RetryPolicy, call_with_retry
from .server import BackgroundServer, ServeConfig, ServeServer

__all__ = [
    "AdmissionFull",
    "AdmissionQueue",
    "BackgroundServer",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RetryExhausted",
    "RetryPolicy",
    "RunRequest",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeHandlers",
    "ServeServer",
    "StreamHandle",
    "SweepRequest",
    "TaskRequest",
    "call_with_retry",
    "error_body",
    "parse_body",
    "run_batch",
]
