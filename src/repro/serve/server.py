"""The asyncio HTTP/JSON server: framing, lifecycle, graceful drain.

Stdlib-only serving: ``asyncio.start_server`` plus hand-rolled
HTTP/1.1 framing (request line, headers, ``Content-Length`` body —
the subset the protocol needs; no chunked encoding, one request per
connection).  Endpoint logic lives in :mod:`repro.serve.handlers`;
this module owns sockets, the metrics around them (request counts and
latency histograms), and the lifecycle:

- :meth:`ServeServer.start` binds (port 0 picks an ephemeral port),
  starts the micro-batcher and, when ``workers > 0``, a process pool;
- :meth:`ServeServer.serve_forever` runs until :meth:`shutdown`;
- :meth:`ServeServer.shutdown` is the graceful drain: stop accepting,
  let admitted requests finish, stop the batcher, release the pool.
  The CLI wires it to ``SIGTERM``/``SIGINT``.

:class:`BackgroundServer` runs the whole thing on a daemon thread —
the harness tests, benchmarks, and executable docs examples all use
it to get a live server inside one ordinary Python process.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from ..stream import (
    DEFAULT_QUEUE_FRAMES,
    StreamEvent,
    encode_sse,
    heartbeat_comment,
)
from ..sweep.cache import ResultCache
from .admission import AdmissionQueue
from .batcher import MicroBatcher
from .handlers import ServeHandlers, StreamHandle
from .protocol import (
    DEFAULT_MAX_BODY_BYTES,
    ProtocolError,
    dumps,
    error_body,
)

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized",
    403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one server instance.

    Attributes:
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`ServeServer.port`).
        max_pending: admission limit — requests admitted (queued +
            in flight) before new ones get 429.
        retry_after_s: the ``Retry-After`` hint on 429 responses.
        batch_window_s: micro-batch coalescing window.
        batch_max: dispatch a batch at this size even mid-window.
        workers: executor processes for trial compute; 0 runs trials
            on the event loop's thread pool (right for tests and
            single-core boxes — a process pool there is pure
            overhead, the same reasoning as ``test_sweep_scaling``).
        default_timeout_s: per-request deadline when the request
            body carries no ``timeout_s``.
        max_body_bytes: request bodies above this get 413.
        cache_dir: read-through result cache directory (``None``
            disables caching).
        cache_max_entries / cache_max_bytes: LRU bounds for the
            cache, so a long-lived server cannot fill the disk.
        backend: the trial engine used when a request body carries no
            ``"backend"`` field — ``"reference"``, ``"vector"``, or
            ``"auto"`` (see :mod:`repro.sim.backend`).
        store_path: SQLite database of a :class:`~repro.store.ResultStore`
            to persist results through (``None`` disables the store).
            With both a store and a cache the server reads through the
            two-level :class:`~repro.store.StoreTier`.
        store_tenant: tenant path unauthenticated requests act as.
        require_token: refuse tokenless requests on the protected
            endpoints (``/run``, ``/sweep``, ``/task``, ``/results``,
            ``/tenants``) with 401; needs ``store_path``.
        stream_queue: bound on one SSE subscriber's undelivered live
            frames; a lagging consumer loses its oldest frames
            (counted, resumable from history) instead of slowing the
            engine.
        stream_heartbeat_s: idle seconds between SSE keepalive
            comments, so proxies and clients can tell a quiet feed
            from a dead connection.
        stream_keep: finished feeds kept around for late or resumed
            subscribers before the oldest are dropped.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64
    retry_after_s: float = 1.0
    batch_window_s: float = 0.005
    batch_max: int = 16
    workers: int = 0
    default_timeout_s: float = 30.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    cache_dir: Optional[str] = None
    cache_max_entries: Optional[int] = None
    cache_max_bytes: Optional[int] = None
    backend: str = "reference"
    store_path: Optional[str] = None
    store_tenant: str = "public"
    require_token: bool = False
    stream_queue: int = DEFAULT_QUEUE_FRAMES
    stream_heartbeat_s: float = 10.0
    stream_keep: int = 64


class ServeServer:
    """One serving instance: sockets, scheduler, metrics, lifecycle."""

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 registry: Optional[MetricsRegistry] = None,
                 cache: Optional[ResultCache] = None,
                 store: Optional["ResultStore"] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        if cache is None and self.config.cache_dir is not None:
            cache = ResultCache(self.config.cache_dir,
                                max_entries=self.config.cache_max_entries,
                                max_bytes=self.config.cache_max_bytes)
        self.cache = cache
        self._own_store = False
        if store is None and self.config.store_path is not None:
            from ..store import ResultStore
            store = ResultStore(self.config.store_path)
            self._own_store = True
        self.store = store
        self.admission = AdmissionQueue(self.config.max_pending,
                                        retry_after_s=self.config.retry_after_s,
                                        registry=self.registry)
        self._pool: Optional[concurrent.futures.Executor] = None
        if self.config.workers > 0:
            from ..sweep.executor import _pool
            self._pool = _pool(self.config.workers)
        self.batcher = MicroBatcher(window_s=self.config.batch_window_s,
                                    max_batch=self.config.batch_max,
                                    executor=self._pool,
                                    registry=self.registry)
        self.handlers = ServeHandlers(
            batcher=self.batcher, admission=self.admission,
            registry=self.registry, cache=self.cache,
            store=self.store,
            default_tenant=self.config.store_tenant,
            require_token=self.config.require_token,
            default_timeout_s=self.config.default_timeout_s,
            default_backend=self.config.backend,
            stream_queue=self.config.stream_queue,
            stream_keep=self.config.stream_keep)
        self._requests = self.registry.counter(
            "serve_requests_total", "Requests answered, by endpoint/status")
        self._latency = self.registry.histogram(
            "serve_request_latency_seconds",
            "Wall-clock request latency by endpoint",
            buckets=LATENCY_BUCKETS)
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        self._stream_wakers: set = set()  # active SSE writers' wake events
        self._draining = False
        self.interrupted = False

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the batcher; returns when live."""
        self._stopped = asyncio.Event()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        if self._server is None or self._stopped is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._stopped.wait()

    async def shutdown(self, *, interrupted: bool = False) -> None:
        """Graceful drain: stop accepting, finish admitted work, stop.

        Safe to call more than once; later calls are no-ops.  Pass
        ``interrupted=True`` from signal handlers so the CLI can exit
        nonzero after an operator interrupt.
        """
        if self._server is None or self._stopped is None \
                or self._stopped.is_set():
            return
        self.interrupted = self.interrupted or interrupted
        self._server.close()
        await self._server.wait_closed()
        while self.admission.depth > 0:  # admitted work drains out
            await asyncio.sleep(0.01)
        # Streamed runs held admission slots, so every feed now carries
        # its terminal frame; wake any still-attached SSE writers so
        # they flush it (or say ``bye``) and let them finish.
        self._draining = True
        for waker in list(self._stream_wakers):
            waker.set()
        for _ in range(500):  # bounded: writers exit promptly after bye
            if not self._stream_wakers:
                break
            await asyncio.sleep(0.01)
        await self.batcher.stop()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._own_store and self.store is not None:
            self.store.close()  # the server opened it; the server closes it
        self._stopped.set()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status = 400
            endpoint = "?"
            started = time.perf_counter()
            try:
                parsed = await self._read_request(reader)
                if parsed is None:  # client connected and went away
                    return
                method, path, body, req_headers = parsed
                endpoint = path.split("?", 1)[0]
                status, payload, headers = await self.handlers.dispatch(
                    method, path, body, req_headers)
            except ProtocolError as exc:
                status, payload, headers = (
                    exc.status, error_body(exc.code, exc.message), {})
            self._requests.inc(endpoint=endpoint, status=str(status))
            self._latency.observe(time.perf_counter() - started,
                                  endpoint=endpoint)
            if isinstance(payload, StreamHandle):
                await self._write_stream(writer, payload)
                return
            writer.write(_response_bytes(status, payload, headers))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client hung up mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - race on close
                pass

    async def _write_stream(self, writer: asyncio.StreamWriter,
                            handle: StreamHandle) -> None:
        """Pump one SSE subscription down its socket until terminal.

        The loop: flush everything deliverable, then sleep on an
        asyncio event the bus wakes from the engine thread (via
        ``call_soon_threadsafe``); an idle ``stream_heartbeat_s``
        window emits a keepalive comment instead.  A terminal frame
        ends the feed; a server drain ends it with a synthetic ``bye``
        frame (its ``seq`` continues the cursor, so reassembly on the
        client stays gap-free).  SSE connections hold no admission
        slot — drain never waits on a watcher, only on work.
        """
        sub = handle.subscription
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        sub.add_waker(lambda: loop.call_soon_threadsafe(wake.set))
        self._stream_wakers.add(wake)
        heartbeats = 0
        last_seq = 0
        try:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Cache-Control: no-cache\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            while True:
                wake.clear()
                frames = sub.pop_ready()
                while frames:
                    for frame in frames:
                        writer.write(encode_sse(frame))
                        last_seq = frame.seq
                    await writer.drain()
                    if frames[-1].terminal:
                        return
                    frames = sub.pop_ready()
                if self._draining:
                    bye = StreamEvent(seq=last_seq + 1, time=0.0,
                                      kind="bye", run=None,
                                      data={"reason": "server draining"})
                    writer.write(encode_sse(bye))
                    await writer.drain()
                    return
                try:
                    await asyncio.wait_for(
                        wake.wait(), self.config.stream_heartbeat_s)
                except asyncio.TimeoutError:
                    writer.write(heartbeat_comment(heartbeats))
                    heartbeats += 1
                    await writer.drain()
        finally:
            self._stream_wakers.discard(wake)
            sub.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            raise ProtocolError(400, "bad_request",
                                "request line too long") from None
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ProtocolError(400, "bad_request",
                                f"malformed request line "
                                f"{request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            if "content-length" not in headers:
                raise ProtocolError(411, "length_required",
                                    "POST requires Content-Length")
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise ProtocolError(400, "bad_request",
                                    "unparseable Content-Length") from None
            if length > self.config.max_body_bytes:
                raise ProtocolError(
                    413, "payload_too_large",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit")
            body = await reader.readexactly(length)
        return method, path, body, headers


def _response_bytes(status: int, payload: Any,
                    headers: Dict[str, str]) -> bytes:
    """Serialize one HTTP/1.1 response (JSON or Prometheus text)."""
    if isinstance(payload, (dict, list)):
        body = dumps(payload)
        content_type = "application/json"
    else:
        body = str(payload).encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class BackgroundServer:
    """A live :class:`ServeServer` on a daemon thread.

    Context manager used by tests, the throughput benchmark, the docs
    examples, and the CI smoke job::

        with BackgroundServer(ServeConfig(cache_dir="cache")) as bg:
            client = bg.client()
            client.healthz()

    Exit triggers the same graceful drain as SIGTERM on the CLI
    server.
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 registry: Optional[MetricsRegistry] = None,
                 cache: Optional[ResultCache] = None,
                 store: Optional["ResultStore"] = None,
                 startup_timeout_s: float = 10.0) -> None:
        self.server = ServeServer(config, registry=registry, cache=cache,
                                  store=store)
        self.startup_timeout_s = startup_timeout_s
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        """The server's bound port (valid once the context is entered)."""
        return self.server.port

    def client(self, **kwargs) -> "ServeClient":
        """A sync client pointed at this server."""
        from .client import ServeClient
        return ServeClient(self.server.config.host, self.port, **kwargs)

    def __enter__(self) -> "BackgroundServer":
        """Start the thread; returns once the socket is bound.

        Raises:
            RuntimeError: when the server fails to come up in time
                (the underlying exception is chained).
        """
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(self.startup_timeout_s):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        """Drain gracefully and join the server thread."""
        if self._loop is not None:
            def _request_shutdown() -> None:
                asyncio.ensure_future(self.server.shutdown())
            self._loop.call_soon_threadsafe(_request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=self.startup_timeout_s)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface start-up failures
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()
