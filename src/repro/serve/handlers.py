"""Endpoint handlers: routing, cache read-through, deadlines.

Pure request→response logic, separated from the socket layer in
:mod:`repro.serve.server` so tests can drive endpoints without a
network.  The flow for ``POST /run``:

1. parse + validate (:mod:`repro.serve.protocol`) — 400s;
2. resolve the flag against the catalog — 404 ``flag_not_found``;
3. static pre-flight (:mod:`repro.analyze.preflight`) — 422
   ``static_analysis_failed`` for configurations that cannot execute
   correctly (undersized team, provable deadlock, bad fault target);
4. take an admission slot — or 429 + ``Retry-After``;
5. read-through the :class:`~repro.sweep.cache.ResultCache` — a hit
   answers without touching the executor;
6. miss: submit to the :class:`~repro.serve.batcher.MicroBatcher`
   under the request deadline — 504 ``deadline_exceeded`` on timeout;
7. write the computed payload back to the cache (same address scheme
   as ``repro sweep --cache-dir``, so the two interoperate).

``POST /analyze`` runs only step 1-2 plus the static analyzer and
returns the full report — the inspection companion to the gate.

With a :class:`~repro.store.ResultStore` configured the cache step
becomes a two-level read-through (:class:`~repro.store.StoreTier`):
store hits warm the disk cache, computed payloads persist through
both, and quota refusals surface as 429 + ``Retry-After``.  Bearer
tokens (``Authorization: Bearer <token>``) scope requests to their
tenant; ``require_token`` servers refuse tokenless requests on the
protected endpoints with 401, revoked tokens with 403.  ``GET
/tenants`` and ``GET /results`` expose the store's contents — scoped:
a request reads only its own tenant subtree (the token's tenant when
authenticated, the server default otherwise), and naming any other
tenant is a 403 ``tenant_forbidden``.

``POST /run`` with ``stream: true`` forks the flow at step 5: instead
of a buffered trial payload the response carries an unguessable
*stream token*, the trial executes (or cache-replays) in the
background publishing onto a :class:`~repro.stream.bus.RunStream`,
and ``GET /stream?run=<token>`` subscribes to the live SSE feed —
capability-authorized by the token itself.  Vector-backend requests
cannot stream (no event traces) and get 422 ``stream_unsupported``.
"""

from __future__ import annotations

import asyncio
import secrets
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..flags import available_flags, get_flag
from ..obs.metrics import MetricsRegistry
from ..sim.backend import BackendError, resolve_backend
from ..store import AuthError, QuotaExceeded, ResultStore, StoreError, \
    StoreTier, UnknownCursor
from ..stream import (
    DEFAULT_QUEUE_FRAMES,
    StreamHub,
    StreamUnsupported,
    Subscription,
    check_streamable,
    expected_run_labels,
    fail_stream,
    finish_stream,
    replay_payload,
    run_streamed_trial,
)
from ..sweep.cache import ResultCache
from .admission import AdmissionFull, AdmissionQueue
from .batcher import MicroBatcher
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RunRequest,
    SweepRequest,
    TaskRequest,
    error_body,
    parse_body,
    run_response,
    stream_response,
    sweep_response,
    task_response,
)

#: (status, JSON body or text, extra headers)
Response = Tuple[int, Any, Dict[str, str]]

#: Endpoints that demand a Bearer token when ``require_token`` is on.
PROTECTED_PATHS = frozenset(
    {"/run", "/sweep", "/task", "/results", "/tenants"})


@dataclass(frozen=True)
class RequestContext:
    """Per-request state the router resolves before a handler runs.

    Attributes:
        tenant: the tenant path this request acts as — the token's
            tenant when one authenticated, else the server default.
        authenticated: whether a Bearer token established the tenant.
        query: decoded query-string parameters (last value wins).
        headers: the request headers, lower-cased names.
    """

    tenant: str
    authenticated: bool = False
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class StreamHandle:
    """A live SSE subscription the socket layer must finish writing.

    ``GET /stream`` returns one of these as its response payload in
    place of a JSON body; :class:`~repro.serve.server.ServeServer`
    recognizes it and switches the connection into a
    ``text/event-stream`` write loop (frames, heartbeats, graceful
    ``bye`` on drain).  Handlers stay socket-free.
    """

    subscription: Subscription


class ServeHandlers:
    """Routes parsed HTTP requests onto the scheduler, cache, and store."""

    def __init__(self, *, batcher: MicroBatcher,
                 admission: AdmissionQueue,
                 registry: MetricsRegistry,
                 cache: Optional[ResultCache] = None,
                 store: Optional[ResultStore] = None,
                 default_tenant: str = "public",
                 require_token: bool = False,
                 default_timeout_s: float = 30.0,
                 sweep_workers: int = 1,
                 default_backend: str = "reference",
                 stream_queue: int = DEFAULT_QUEUE_FRAMES,
                 stream_keep: int = 64) -> None:
        self.batcher = batcher
        self.admission = admission
        self.registry = registry
        self.cache = cache
        self.store = store
        self.default_tenant = default_tenant
        self.require_token = require_token and store is not None
        self._tiers: Dict[str, StoreTier] = {}
        self.default_timeout_s = default_timeout_s
        self.sweep_workers = sweep_workers
        self.default_backend = default_backend
        self.hub = StreamHub(keep_finished=stream_keep,
                             max_queue=stream_queue, registry=registry)
        self._drives: set = set()  # in-flight background stream tasks
        self._hits = registry.counter(
            "serve_cache_hits_total", "/run answers served from cache")
        self._misses = registry.counter(
            "serve_cache_misses_total", "/run answers that were computed")
        self._hit_ratio = registry.gauge(
            "serve_cache_hit_ratio",
            "Lifetime cache hit fraction of /run lookups")
        self._timeouts = registry.counter(
            "serve_deadline_timeouts_total",
            "Requests that hit their deadline before a result")
        self._streams = registry.counter(
            "serve_streams_total",
            "Streamed /run feeds started, by cache state")

    async def dispatch(self, method: str, path: str, body: bytes,
                       headers: Optional[Dict[str, str]] = None
                       ) -> Response:
        """Answer one request; never raises for client-caused errors."""
        try:
            return await self._route(method, path, body, headers or {})
        except AdmissionFull as exc:
            return (429,
                    error_body("too_many_requests", str(exc)),
                    {"Retry-After": f"{exc.retry_after:g}"})
        except QuotaExceeded as exc:
            return (429,
                    error_body("quota_exceeded", str(exc)),
                    {"Retry-After": f"{exc.retry_after_s:g}"})
        except ProtocolError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:g}"
            if exc.status == 401:
                extra["WWW-Authenticate"] = "Bearer"
            return exc.status, error_body(exc.code, exc.message), extra
        except Exception as exc:  # structured 500, never a stack trace
            return (500,
                    error_body("internal",
                               f"{type(exc).__name__}: {exc}"),
                    {})

    def _authenticate(self, path: str,
                      headers: Dict[str, str]) -> RequestContext:
        """Resolve the request's tenant from its (optional) Bearer token.

        Without a store every request acts as the default tenant.  With
        one, a presented token must authenticate — 401
        ``token_unknown`` for a token the store never issued, 401
        ``token_expired`` for one past its deadline (distinct, so the
        client knows to renew rather than re-check the secret), 403
        ``token_revoked`` for a dead one — and when the server requires
        tokens, protected endpoints refuse tokenless requests with 401
        ``token_missing``.
        """
        token = None
        auth = headers.get("authorization", "")
        scheme, _, value = auth.partition(" ")
        if scheme.lower() == "bearer" and value.strip():
            token = value.strip()
        if self.store is None:
            return RequestContext(tenant=self.default_tenant)
        if token is None:
            if self.require_token and path in PROTECTED_PATHS:
                raise ProtocolError(
                    401, "token_missing",
                    f"{path} requires `Authorization: Bearer <token>` "
                    f"on this server")
            return RequestContext(tenant=self.default_tenant)
        try:
            tenant = self.store.authenticate(token)
        except AuthError as exc:
            if exc.reason == "revoked":
                raise ProtocolError(403, "token_revoked",
                                    "token has been revoked") from exc
            if exc.reason == "expired":
                raise ProtocolError(
                    401, "token_expired",
                    "token has expired; ask for a fresh one") from exc
            raise ProtocolError(401, "token_unknown",
                                "unknown token") from exc
        return RequestContext(tenant=tenant.path, authenticated=True)

    async def _offload(self, fn):
        """Run a store-touching callable off the event loop.

        Store calls serialize on the ``ResultStore``'s process-wide
        lock, which ``/sweep`` holds from executor threads during bulk
        persists; calling into the store inline would stall every
        connection on the loop behind that lock.  Without a store the
        tier is the plain in-memory-indexed disk cache and runs inline.
        """
        if self.store is None:
            return fn()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn)

    def _scope(self, ctx: RequestContext) -> str:
        """The tenant subtree this request may read.

        The token's tenant when one authenticated, else the server's
        default tenant — an unauthenticated caller never sees other
        tenants' data, even on a server that does not require tokens.
        """
        return ctx.tenant if ctx.authenticated else self.default_tenant

    @staticmethod
    def _in_scope(path: str, scope: str) -> bool:
        """Whether a tenant path is ``scope`` itself or a descendant."""
        return path == scope or path.startswith(scope + "/")

    def _scoped_tenant(self, ctx: RequestContext) -> str:
        """The tenant a read acts on, holding ``?tenant=`` to scope.

        Raises:
            ProtocolError: 403 ``tenant_forbidden`` when the query
                names a tenant outside the request's subtree.
        """
        scope = self._scope(ctx)
        requested = ctx.query.get("tenant")
        if requested is None:
            return scope
        if not self._in_scope(requested, scope):
            raise ProtocolError(
                403, "tenant_forbidden",
                f"this request may only read tenant {scope!r} and its "
                f"sub-tenants, not {requested!r}")
        return requested

    def _tier(self, tenant: str) -> Optional[Any]:
        """The result tier for one tenant: cache alone, or store+cache.

        Tiers are memoized per tenant path so their hit counters
        accumulate across requests.
        """
        if self.store is None:
            return self.cache
        tier = self._tiers.get(tenant)
        if tier is None:
            tier = StoreTier(self.store, cache=self.cache, tenant=tenant)
            self._tiers[tenant] = tier
        return tier

    async def _route(self, method: str, path: str, body: bytes,
                     headers: Dict[str, str]) -> Response:
        path, _, query_string = path.partition("?")
        routes = {
            "/healthz": ("GET", self._healthz),
            "/flags": ("GET", self._flags),
            "/metrics": ("GET", self._metrics),
            "/run": ("POST", self._run),
            "/task": ("POST", self._task),
            "/sweep": ("POST", self._sweep),
            "/analyze": ("POST", self._analyze),
            "/tenants": ("GET", self._tenants),
            "/results": ("GET", self._results),
            "/stream": ("GET", self._stream),
        }
        entry = routes.get(path)
        if entry is None:
            raise ProtocolError(404, "unknown_endpoint",
                                f"no endpoint {path!r}; one of "
                                f"{sorted(routes)}")
        expected, handler = entry
        if method != expected:
            raise ProtocolError(405, "method_not_allowed",
                                f"{path} expects {expected}, got {method}")
        ctx = self._authenticate(path, headers)
        query: Dict[str, str] = {}
        if query_string:
            query = {k: vs[-1] for k, vs in
                     urllib.parse.parse_qs(query_string).items()}
        ctx = RequestContext(tenant=ctx.tenant,
                             authenticated=ctx.authenticated,
                             query=query, headers=headers)
        return await handler(body, ctx)

    async def _healthz(self, body: bytes, ctx: RequestContext) -> Response:
        return (200,
                {"protocol": PROTOCOL_VERSION, "status": "ok",
                 "queue_depth": self.admission.depth,
                 "queue_limit": self.admission.limit},
                {})

    async def _flags(self, body: bytes, ctx: RequestContext) -> Response:
        catalog = {}
        for name, desc in sorted(available_flags().items()):
            spec = get_flag(name)
            catalog[name] = {"description": desc,
                            "rows": spec.default_rows,
                            "cols": spec.default_cols,
                            "layered": spec.is_layered()}
        return 200, {"protocol": PROTOCOL_VERSION, "flags": catalog}, {}

    async def _metrics(self, body: bytes, ctx: RequestContext) -> Response:
        return 200, self.registry.render_prometheus(), {}

    def _resolve_flag(self, name: str) -> None:
        try:
            get_flag(name)
        except KeyError:
            raise ProtocolError(
                404, "flag_not_found",
                f"flag {name!r} is not in the catalog; "
                f"one of {sorted(available_flags())}") from None

    def _preflight(self, cell) -> None:
        """Refuse statically-invalid work before it takes a slot.

        Runs :func:`repro.analyze.preflight.check_cell` on the resolved
        cell; any ERROR-severity finding (undersized team, provable
        deadlock, fault plan naming a nonexistent target) becomes a 422
        ``static_analysis_failed`` with the findings in the message, so
        clients learn *why* before any executor time is spent.
        """
        from ..analyze.preflight import check_cell
        from ..analyze.report import Severity, issues_summary
        failed = [i for i in check_cell(cell)
                  if i.severity is Severity.ERROR]
        if failed:
            raise ProtocolError(
                422, "static_analysis_failed",
                f"cell {cell.describe()!r} is statically invalid: "
                f"{issues_summary(failed)}")

    def _backend(self, requested: Optional[str], cell, *,
                 observe: bool) -> str:
        """Resolve the request's engine, mapping refusals onto 422.

        ``None`` (no ``"backend"`` field on the wire) means the
        server's configured default; ``auto`` falls back to reference
        for cells the vector engine cannot express, and an *explicit*
        ``vector`` on such a cell is a client error — 422
        ``backend_unsupported`` with the reason.
        """
        try:
            return resolve_backend(requested or self.default_backend,
                                   cell.key_dict(), observe=observe)
        except BackendError as exc:
            raise ProtocolError(422, "backend_unsupported",
                                str(exc)) from exc

    def _record_lookup(self, hit: bool) -> None:
        (self._hits if hit else self._misses).inc()
        total = self._hits.value() + self._misses.value()
        self._hit_ratio.set(self._hits.value() / total if total else 0.0)

    async def _run(self, body: bytes, ctx: RequestContext) -> Response:
        request = RunRequest.from_body(parse_body(body))
        self._resolve_flag(request.flag)
        self._preflight(request.cell())
        if request.stream:
            return await self._run_streamed(request, ctx)
        engine = self._backend(request.backend, request.cell(),
                               observe=request.observe)
        timeout = request.timeout_s or self.default_timeout_s
        with self.admission.slot():
            address = request.address(backend=engine)
            tier = await self._offload(lambda: self._tier(ctx.tenant))
            if tier is not None:
                stored = await self._offload(lambda: tier.get(address))
                if stored is not None:
                    self._record_lookup(hit=True)
                    return (200,
                            run_response(stored["trials"][0], cached=True,
                                         batch_size=0),
                            {})
            self._record_lookup(hit=False)
            try:
                payload, batch_size = await asyncio.wait_for(
                    self.batcher.submit(request.task(backend=engine)),
                    timeout)
            except asyncio.TimeoutError:
                self._timeouts.inc()
                raise ProtocolError(
                    504, "deadline_exceeded",
                    f"no result within {timeout:g}s (the trial keeps "
                    f"computing; a retry may hit the cache)") from None
            if tier is not None:
                await self._offload(lambda: tier.put(
                    address, {"cell": request.cell().key_dict(),
                              "trials": [payload]}))
            return (200,
                    run_response(payload, cached=False,
                                 batch_size=batch_size),
                    {})

    async def _run_streamed(self, request: RunRequest,
                            ctx: RequestContext) -> Response:
        """``POST /run`` with ``stream: true`` — start a feed, hand back
        its token.

        The response returns immediately; the trial executes (cache
        miss) or replays its archived payload (hit — frame-identical
        to the live feed it archives) in the background, publishing
        onto a :class:`~repro.stream.bus.RunStream` that ``GET
        /stream?run=<token>`` subscribes to.  The feed holds one
        admission slot until its terminal frame, so graceful drain
        waits for streamed runs exactly like buffered ones.
        ``timeout_s`` does not bound the feed: a streaming client
        watches progress live and can simply disconnect.

        Streaming needs the reference engine's event traces.  A bare
        request streams on reference regardless of the server's
        default backend; an *explicit* non-reference backend is a 422
        ``stream_unsupported``.
        """
        engine = "reference"
        if request.backend is not None:
            engine = self._backend(request.backend, request.cell(),
                                   observe=request.observe)
        task = request.task(backend=engine)
        try:
            check_streamable(task)
        except StreamUnsupported as exc:
            raise ProtocolError(422, "stream_unsupported",
                                str(exc)) from exc
        address = request.address(backend=engine)
        self.admission.acquire()  # released when the feed terminates
        try:
            tier = await self._offload(lambda: self._tier(ctx.tenant))
            stored = None
            if tier is not None:
                stored = await self._offload(lambda: tier.get(address))
            self._record_lookup(hit=stored is not None)
            cached = stored is not None
            self._streams.inc(cached=str(cached).lower())
            token = secrets.token_hex(16)
            stream = self.hub.create(token)
        except BaseException:
            self.admission.release()
            raise
        drive = asyncio.get_running_loop().create_task(
            self._drive_stream(
                stream, task, address, tier,
                stored["trials"][0] if cached else None,
                cell_key_dict=request.cell().key_dict()))
        self._drives.add(drive)
        drive.add_done_callback(self._drives.discard)
        return (200,
                stream_response(token, cached=cached,
                                runs=expected_run_labels(task["cell"])),
                {})

    async def _drive_stream(self, stream, task: Dict[str, Any],
                            address: str, tier: Optional[Any],
                            cached_payload: Optional[Dict[str, Any]], *,
                            cell_key_dict: Dict[str, Any]) -> None:
        """Feed one stream to its terminal frame off the event loop.

        Success ends the feed with ``end``; any failure with ``error``
        (subscribers always see a terminal frame).  The admission slot
        taken by :meth:`_run_streamed` is released here, whatever
        happens, so drain accounting stays balanced.
        """
        loop = asyncio.get_running_loop()
        try:
            if cached_payload is not None:
                await loop.run_in_executor(
                    None, lambda: replay_payload(cached_payload, stream))
                finish_stream(stream, cached=True,
                              runs=list(cached_payload["runs"]))
            else:
                payload = await loop.run_in_executor(
                    None, lambda: run_streamed_trial(task, stream))
                if tier is not None:
                    await self._offload(lambda: tier.put(
                        address, {"cell": cell_key_dict,
                                  "trials": [payload]}))
                finish_stream(stream, cached=False,
                              runs=list(payload["runs"]))
        except Exception as exc:
            fail_stream(stream, f"{type(exc).__name__}: {exc}")
        finally:
            self.admission.release()

    async def _stream(self, body: bytes, ctx: RequestContext) -> Response:
        """``GET /stream?run=<token>`` — subscribe to a feed over SSE.

        Authorization is capability-style: the unguessable token
        minted by the streamed ``/run`` *is* the credential (tokens
        never appear in listings), so tutors without Bearer tokens can
        still watch feeds their teacher's server started for them.

        Resume: a ``Last-Event-ID: <seq>`` header (what an SSE client
        sends automatically on reconnect) or ``?after=<seq>`` replays
        history past the cursor — gap-free — before splicing onto the
        live feed.  The socket layer turns the returned
        :class:`StreamHandle` into the actual ``text/event-stream``
        response; this handler never touches the socket.
        """
        token = ctx.query.get("run")
        if not token:
            raise ProtocolError(400, "bad_request",
                                "GET /stream requires ?run=<stream token>")
        stream = self.hub.get(token)
        if stream is None:
            raise ProtocolError(
                404, "stream_not_found",
                "no live or recently finished stream under that token")
        raw = ctx.headers.get("last-event-id", ctx.query.get("after"))
        after = 0
        if raw is not None:
            try:
                after = int(raw)
                if after < 0:
                    raise ValueError
            except ValueError:
                raise ProtocolError(
                    400, "bad_request",
                    f"resume cursor must be a non-negative integer, "
                    f"got {raw!r}") from None
        return 200, StreamHandle(stream.subscribe(after=after)), {}

    async def _task(self, body: bytes, ctx: RequestContext) -> Response:
        """One raw executor task — the fabric's remote-worker endpoint.

        Same gate sequence as ``/run`` (validate, resolve, preflight,
        admission, batcher, deadline) but *no* cache read-through or
        write-back: the task names one trial of an n-trial cell, and
        cell-level caching belongs to whoever assembles all n trials —
        the fabric coordinator or ``run_sweep`` — not to the worker.
        """
        request = TaskRequest.from_body(parse_body(body))
        self._resolve_flag(request.cell.flag)
        self._preflight(request.cell)
        engine = self._backend(request.backend, request.cell,
                               observe=request.observe)
        timeout = request.timeout_s or self.default_timeout_s
        with self.admission.slot():
            try:
                payload, batch_size = await asyncio.wait_for(
                    self.batcher.submit(request.task(backend=engine)),
                    timeout)
            except asyncio.TimeoutError:
                self._timeouts.inc()
                raise ProtocolError(
                    504, "deadline_exceeded",
                    f"no result within {timeout:g}s") from None
            return (200,
                    task_response(payload, trial=request.trial,
                                  batch_size=batch_size),
                    {})

    async def _sweep(self, body: bytes, ctx: RequestContext) -> Response:
        request = SweepRequest.from_body(parse_body(body))
        for flag in request.spec.flags:
            self._resolve_flag(flag)
        backend = request.backend or self.default_backend
        for cell in request.spec.cells():
            self._preflight(cell)
            # Refuse an unservable explicit backend before taking a
            # slot; run_sweep repeats the same per-cell resolution.
            self._backend(backend, cell, observe=request.observe)
        timeout = request.timeout_s or self.default_timeout_s
        with self.admission.slot():
            from ..sweep.executor import run_sweep
            tier = await self._offload(lambda: self._tier(ctx.tenant))
            loop = asyncio.get_running_loop()
            try:
                result = await asyncio.wait_for(
                    loop.run_in_executor(
                        None, lambda: run_sweep(
                            request.spec, workers=self.sweep_workers,
                            cache=tier,
                            observe=request.observe,
                            backend=backend)),
                    timeout)
            except asyncio.TimeoutError:
                self._timeouts.inc()
                raise ProtocolError(
                    504, "deadline_exceeded",
                    f"sweep did not finish within {timeout:g}s") from None
            return (200,
                    sweep_response(result.table_rows(),
                                   computed_trials=result.computed_trials,
                                   cached_trials=result.cached_trials,
                                   all_correct=result.all_correct,
                                   wall_seconds=result.wall_seconds),
                    {})

    async def _analyze(self, body: bytes, ctx: RequestContext) -> Response:
        """Static analysis as a service: the report, no simulation.

        Accepts the same body as ``POST /run`` (seed/observe/timeout_s
        are accepted and ignored — analysis is deterministic and
        cheap).  Always 200 with the full report(s); an invalid
        configuration is a *successful analysis* here, reported via
        ``ok: false`` and the issue list — only the execution endpoints
        refuse it.
        """
        from ..analyze.preflight import cell_reports

        request = RunRequest.from_body(parse_body(body))
        self._resolve_flag(request.flag)
        failures = []
        reports = cell_reports(request.cell(), failures)
        return (200,
                {"protocol": PROTOCOL_VERSION,
                 "ok": (not failures
                        and all(r.ok for r in reports)),
                 "failures": [i.to_dict() for i in failures],
                 "reports": [r.to_dict() for r in reports]},
                {})

    def _require_store(self) -> ResultStore:
        """The configured store, or 404 ``store_disabled`` without one."""
        if self.store is None:
            raise ProtocolError(
                404, "store_disabled",
                "this server has no durable store; start it with "
                "--store PATH")
        return self.store

    async def _tenants(self, body: bytes, ctx: RequestContext) -> Response:
        """``GET /tenants`` — usage and quota, scoped to the caller.

        Authenticated requests see the token's tenant and its
        descendants; unauthenticated requests see only the server's
        default tenant.  Nobody enumerates anyone else's tenants.
        """
        store = self._require_store()
        scope = self._scope(ctx)
        tenants = await self._offload(store.tenants)
        return (200,
                {"protocol": PROTOCOL_VERSION,
                 "tenants": [t for t in tenants
                             if self._in_scope(t["path"], scope)]},
                {})

    async def _results(self, body: bytes, ctx: RequestContext) -> Response:
        """``GET /results`` — durable result listings and payloads.

        Reads are scoped: the request acts as its token's tenant (or
        the server default without one), and ``?tenant=`` may only
        narrow *within* that subtree — anything else is a 403
        ``tenant_forbidden``.

        Query parameters:

        - ``tenant``: restrict to one tenant path inside the caller's
          subtree.  Defaults to the caller's own tenant.
        - ``limit``: cap the listing length (positive integer).
        - ``after``: cursor pagination — the ``"next"`` digest of the
          previous page; the listing resumes strictly past it.  A
          stale cursor is a 400 ``bad_cursor``.  When a full page came
          back the reply carries ``"next"`` (the last row's digest);
          its absence marks the final page.
        - ``digest``: return that single result's full stored payload —
          the byte-level interop hook (404 ``result_not_found`` when
          the digest is not stored for the tenant).
        """
        store = self._require_store()
        tenant = self._scoped_tenant(ctx)
        digest = ctx.query.get("digest")
        if digest is not None:
            payload = await self._offload(
                lambda: store.get_result(digest, tenant=tenant))
            if payload is None:
                raise ProtocolError(
                    404, "result_not_found",
                    f"no stored result {digest!r} for tenant "
                    f"{tenant!r}")
            return (200,
                    {"protocol": PROTOCOL_VERSION, "digest": digest,
                     "tenant": tenant,
                     "payload": payload},
                    {})
        limit = None
        if "limit" in ctx.query:
            try:
                limit = int(ctx.query["limit"])
                if limit < 1:
                    raise ValueError
            except ValueError:
                raise ProtocolError(
                    400, "bad_request",
                    f"limit must be a positive integer, got "
                    f"{ctx.query['limit']!r}") from None
        after = ctx.query.get("after")
        try:
            rows = await self._offload(
                lambda: store.results(tenant=tenant, limit=limit,
                                      after=after))
        except UnknownCursor as exc:
            raise ProtocolError(400, "bad_cursor", str(exc)) from exc
        except StoreError as exc:
            if "tenant" in ctx.query:  # unknown path named -> 404
                raise ProtocolError(404, "tenant_not_found",
                                    str(exc)) from exc
            rows = []  # caller's own tenant has no rows yet
        body_out = {"protocol": PROTOCOL_VERSION,
                    "results": rows,
                    "count": len(rows)}
        if limit is not None and len(rows) == limit:
            body_out["next"] = rows[-1]["digest"]
        return 200, body_out, {}
