"""Admission control: a bounded slot pool with backpressure.

The server admits at most ``limit`` requests at a time (queued in the
micro-batcher plus in flight on the executor).  When every slot is
taken, new work is *rejected immediately* with :class:`AdmissionFull`
— which the HTTP layer maps to ``429 Too Many Requests`` plus a
``Retry-After`` header — instead of queueing unboundedly and letting
latency blow up for everyone (the standard inference-serving
trade-off: shed load early, keep the queue short).

Health and metrics endpoints bypass admission so the service stays
observable exactly when it is saturated.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from ..obs.metrics import MetricsRegistry


class AdmissionFull(Exception):
    """Raised when every admission slot is taken.

    Attributes:
        retry_after: seconds the client should wait before retrying.
    """

    def __init__(self, limit: int, retry_after: float) -> None:
        super().__init__(
            f"admission queue full ({limit} requests pending); "
            f"retry after {retry_after:g}s")
        self.limit = limit
        self.retry_after = retry_after


class AdmissionQueue:
    """A fixed pool of request slots with fail-fast acquisition.

    Not a queue in the FIFO sense — rejected requests never wait —
    but it bounds the *logical* queue: everything admitted and not yet
    answered holds one slot.
    """

    def __init__(self, limit: int, *, retry_after_s: float = 1.0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._depth = 0
        self._registry = registry
        if registry is not None:
            self._gauge = registry.gauge(
                "serve_queue_depth",
                "Admitted requests currently queued or in flight")
            self._gauge.set(0)
            self._rejects = registry.counter(
                "serve_admission_rejects_total",
                "Requests rejected with 429 because every slot was taken")

    @property
    def depth(self) -> int:
        """Admitted requests currently holding a slot."""
        return self._depth

    def acquire(self) -> None:
        """Take one slot, or fail fast.

        Raises:
            AdmissionFull: when all ``limit`` slots are taken.
        """
        if self._depth >= self.limit:
            if self._registry is not None:
                self._rejects.inc()
            raise AdmissionFull(self.limit, self.retry_after_s)
        self._depth += 1
        if self._registry is not None:
            self._gauge.set(self._depth)

    def release(self) -> None:
        """Give one slot back.

        Raises:
            RuntimeError: on release without a matching acquire.
        """
        if self._depth <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._depth -= 1
        if self._registry is not None:
            self._gauge.set(self._depth)

    @contextlib.contextmanager
    def slot(self) -> Iterator[None]:
        """Hold one slot for the duration of a ``with`` block."""
        self.acquire()
        try:
            yield
        finally:
            self.release()
