"""Read-through tiering between the durable store and the disk cache.

:class:`StoreTier` quacks like :class:`repro.sweep.cache.ResultCache` —
``get(digest)`` / ``put(digest, payload)`` — so every call-site that
already takes a cache (``run_sweep``, the fabric coordinator, the serve
handlers) gains durable persistence without changing shape:

- **get**: the fast on-disk cache answers first; on a cache miss the
  store is consulted, and a store hit *warms the cache* on the way out
  so the next read is local.
- **put**: the payload lands in the store (quota-enforced) and the
  cache both, so a fresh compute is immediately durable *and* fast.

The tier never hides quota refusals on explicit ``put`` — the caller
(serve) needs the :exc:`~repro.store.core.QuotaExceeded` to surface a
429 — but a missing or read-only cache never blocks the store, and
vice versa on reads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from .core import DEFAULT_TENANT, ResultStore


class StoreTier:
    """A two-level result tier: durable store under an on-disk cache.

    Drop-in for :class:`~repro.sweep.cache.ResultCache` wherever one is
    accepted.  ``cache`` may be ``None`` (store-only operation — the
    restart-and-delete-the-cache-directory case the acceptance test
    pins); ``store`` is required.

    Attributes:
        store_hits: reads the cache missed but the store answered.
        store_puts: payloads persisted to the store by :meth:`put`.

    Both counters are incremented under a private lock: a tier is
    shared by serve's batcher threads, so lost updates would skew the
    hit-rate arithmetic the smoke tests pin.
    """

    def __init__(self, store: ResultStore, *,
                 cache: Optional[Any] = None,
                 tenant: str = DEFAULT_TENANT,
                 kind: str = "sweep_cell") -> None:
        self.store = store
        self.cache = cache
        self.tenant = tenant
        self.kind = kind
        self._stats_lock = threading.Lock()
        self.store_hits = 0
        self.store_puts = 0
        store.ensure_tenant(tenant)

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """Cache first, then store; a store hit warms the cache."""
        if self.cache is not None:
            payload = self.cache.get(digest)
            if payload is not None:
                return payload
        payload = self.store.get_result(digest, tenant=self.tenant)
        if payload is None:
            return None
        with self._stats_lock:
            self.store_hits += 1
        if self.cache is not None:
            self.cache.put(digest, payload)
        return payload

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Persist to the store (quota-enforced), then warm the cache.

        Raises:
            repro.store.QuotaExceeded: when the tenant's budget refuses
                the write; the cache is *not* written either, so a
                throttled tenant cannot sneak results in locally.
        """
        self.store.put_result(digest, payload, tenant=self.tenant,
                              kind=self.kind)
        with self._stats_lock:
            self.store_puts += 1
        if self.cache is not None:
            self.cache.put(digest, payload)
