"""Versioned schema migrations for the durable result store.

The store's schema is owned by plain SQL, not an ORM: every version is
a :class:`Migration` — an ordered list of DDL statements — and the
store database records which versions have been applied in a
``schema_migrations`` table.  :func:`migrate` applies whatever is
pending, in order, each version inside one transaction, so a database
at any historical version (or empty) converges on the head schema and
a re-run is a no-op.

The SQL sticks to the portable core both SQLite and Postgres accept —
``TEXT`` / ``INTEGER`` / ``DOUBLE PRECISION`` columns, ``CHECK`` and
``FOREIGN KEY`` constraints, ``ALTER TABLE ... ADD COLUMN`` — so the
same migration list ports to Postgres by swapping the connection and
the ``?`` placeholder style.  The one deliberate SQLite-ism is
``id INTEGER PRIMARY KEY`` (the rowid alias) where Postgres would
declare ``BIGSERIAL``; it is confined to this module.

Version history:

1. ``core`` — tenants (institution → class → cohort hierarchy) and
   content-addressed results.
2. ``auth_quotas`` — per-tenant auth tokens (hashes only, never the
   plaintext) and result-count/byte quotas.
3. ``sessions_access`` — durable classroom session reports, plus
   access stamps (``accessed_at``/``hits``) on results so ``gc`` can
   reason about recency.
4. ``token_expiry`` — an optional ``expires_at`` deadline on tokens,
   so classroom credentials can be issued for the term instead of
   forever (``NULL`` keeps the pre-4 never-expires behavior).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import List, Optional, Tuple


class MigrationError(Exception):
    """Raised for unknown targets or out-of-order version history."""


@dataclass(frozen=True)
class Migration:
    """One schema version: an ordinal, a name, and its DDL statements."""

    version: int
    name: str
    statements: Tuple[str, ...]


MIGRATIONS: Tuple[Migration, ...] = (
    Migration(
        version=1,
        name="core",
        statements=(
            """
            CREATE TABLE tenants (
                id INTEGER PRIMARY KEY,
                name TEXT NOT NULL,
                kind TEXT NOT NULL,
                parent_id INTEGER,
                created_at DOUBLE PRECISION NOT NULL,
                CHECK (kind IN ('institution', 'class', 'cohort')),
                FOREIGN KEY (parent_id) REFERENCES tenants (id),
                UNIQUE (parent_id, name)
            )
            """,
            """
            CREATE TABLE results (
                digest TEXT NOT NULL,
                tenant_id INTEGER NOT NULL,
                kind TEXT NOT NULL,
                payload TEXT NOT NULL,
                nbytes INTEGER NOT NULL,
                created_at DOUBLE PRECISION NOT NULL,
                PRIMARY KEY (tenant_id, digest),
                FOREIGN KEY (tenant_id) REFERENCES tenants (id)
            )
            """,
            """
            CREATE INDEX idx_results_tenant_created
                ON results (tenant_id, created_at)
            """,
        ),
    ),
    Migration(
        version=2,
        name="auth_quotas",
        statements=(
            """
            CREATE TABLE tokens (
                token_hash TEXT PRIMARY KEY,
                tenant_id INTEGER NOT NULL,
                label TEXT,
                revoked INTEGER NOT NULL DEFAULT 0,
                created_at DOUBLE PRECISION NOT NULL,
                FOREIGN KEY (tenant_id) REFERENCES tenants (id)
            )
            """,
            """
            CREATE TABLE quotas (
                tenant_id INTEGER PRIMARY KEY,
                max_results INTEGER,
                max_bytes INTEGER,
                retry_after_s DOUBLE PRECISION NOT NULL DEFAULT 60.0,
                FOREIGN KEY (tenant_id) REFERENCES tenants (id)
            )
            """,
        ),
    ),
    Migration(
        version=3,
        name="sessions_access",
        statements=(
            """
            CREATE TABLE sessions (
                id INTEGER PRIMARY KEY,
                tenant_id INTEGER NOT NULL,
                institution TEXT NOT NULL,
                flag TEXT NOT NULL,
                payload TEXT NOT NULL,
                created_at DOUBLE PRECISION NOT NULL,
                FOREIGN KEY (tenant_id) REFERENCES tenants (id)
            )
            """,
            "ALTER TABLE results ADD COLUMN accessed_at DOUBLE PRECISION",
            "ALTER TABLE results ADD COLUMN hits INTEGER NOT NULL DEFAULT 0",
        ),
    ),
    Migration(
        version=4,
        name="token_expiry",
        statements=(
            "ALTER TABLE tokens ADD COLUMN expires_at DOUBLE PRECISION",
        ),
    ),
)

#: The schema version a fully-migrated database reports.
HEAD_VERSION = MIGRATIONS[-1].version


def _ensure_ledger(conn: sqlite3.Connection) -> None:
    """Create the ``schema_migrations`` ledger if it does not exist."""
    conn.execute(
        """
        CREATE TABLE IF NOT EXISTS schema_migrations (
            version INTEGER PRIMARY KEY,
            name TEXT NOT NULL,
            applied_at DOUBLE PRECISION NOT NULL
        )
        """
    )


def schema_version(conn: sqlite3.Connection) -> int:
    """The highest applied migration version; 0 for an empty database."""
    _ensure_ledger(conn)
    row = conn.execute(
        "SELECT MAX(version) FROM schema_migrations").fetchone()
    return int(row[0]) if row and row[0] is not None else 0


def pending(conn: sqlite3.Connection,
            target: Optional[int] = None) -> List[Migration]:
    """The migrations :func:`migrate` would apply, in order.

    Raises:
        MigrationError: when ``target`` is not a known version, or is
            below the database's current version (downgrades are not
            supported — restore from backup instead).
    """
    current = schema_version(conn)
    goal = HEAD_VERSION if target is None else target
    known = {m.version for m in MIGRATIONS}
    if goal not in known and goal != 0:
        raise MigrationError(
            f"unknown target version {goal}; known: {sorted(known)}")
    if goal < current:
        raise MigrationError(
            f"database is at version {current}, cannot migrate down "
            f"to {goal}; downgrades are not supported")
    return [m for m in MIGRATIONS if current < m.version <= goal]


def migrate(conn: sqlite3.Connection, *, target: Optional[int] = None,
            clock=None) -> List[Migration]:
    """Apply every pending migration up to ``target`` (default: head).

    Each version runs inside one transaction: either all of its
    statements land and the ledger records it, or none do.  Applying
    to an already-migrated database is a no-op.

    Args:
        conn: an open SQLite connection to the store database.
        target: stop at this version (default: the head version).
        clock: a ``() -> float`` unix-seconds source for the ledger's
            ``applied_at`` stamp; defaults to the host clock.

    Returns:
        The migrations that were applied (empty when up to date).

    Raises:
        MigrationError: for unknown or backward targets.
    """
    if clock is None:
        import time
        clock = time.time
    todo = pending(conn, target)
    for migration in todo:
        with conn:  # one transaction per version
            for statement in migration.statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_migrations (version, name, applied_at) "
                "VALUES (?, ?, ?)",
                (migration.version, migration.name, clock()))
    return todo
