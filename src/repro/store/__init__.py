"""Durable multi-tenant result store: SQLite now, Postgres-ready SQL.

The persistence layer under sweeps, serving, the fabric, and classroom
sessions.  :class:`ResultStore` owns the database (tenants, tokens,
quotas, content-addressed results, session reports);
:class:`StoreTier` makes it a drop-in for the on-disk
:class:`~repro.sweep.cache.ResultCache` so existing call-sites gain
durability without changing shape; :mod:`repro.store.migrations` owns
the schema as versioned plain-SQL migrations.

See ``docs/storage.md`` for the schema, the tenancy model, and the
token flow.
"""

from .core import (
    DEFAULT_TENANT,
    TENANT_KINDS,
    AuthError,
    Quota,
    QuotaExceeded,
    ResultStore,
    StoreError,
    Tenant,
    UnknownCursor,
    canonical_json,
    token_hash,
)
from .migrations import (
    HEAD_VERSION,
    MIGRATIONS,
    Migration,
    MigrationError,
    migrate,
    pending,
    schema_version,
)
from .tier import StoreTier

__all__ = [
    "AuthError",
    "DEFAULT_TENANT",
    "HEAD_VERSION",
    "MIGRATIONS",
    "Migration",
    "MigrationError",
    "Quota",
    "QuotaExceeded",
    "ResultStore",
    "StoreError",
    "StoreTier",
    "TENANT_KINDS",
    "Tenant",
    "UnknownCursor",
    "canonical_json",
    "migrate",
    "pending",
    "schema_version",
    "token_hash",
]
