"""The durable multi-tenant result store: SQLite behind plain SQL.

:class:`ResultStore` is the persistence layer under every artifact the
system produces: sweep results and cell payloads (keyed by the same
``content_address`` digests :mod:`repro.sweep.cache` uses, so the two
interoperate), classroom session reports, and the tenancy structure
the paper's activity actually runs in — institution → class → cohort,
addressed by slash paths like ``"usi/cs1/spring26"``.

Design commitments:

- **Plain SQL, no ORM.**  Every query is a literal statement over the
  schema :mod:`repro.store.migrations` owns; porting to Postgres means
  swapping the connection factory and placeholder style, nothing else.
- **Content addresses are the interchange key.**  A result persisted
  here under a digest is byte-for-byte the payload the on-disk
  :class:`~repro.sweep.cache.ResultCache` would hold under the same
  digest — the read-through tier (:mod:`repro.store.tier`) moves
  payloads between the two without transformation.
- **Tokens are stored hashed.**  :meth:`ResultStore.issue_token`
  returns the plaintext exactly once; the database keeps only its
  SHA-256, so a leaked database does not leak credentials.
- **Quotas fail loud.**  :exc:`QuotaExceeded` carries the tenant's
  ``retry_after_s`` hint so the serve layer can surface a 429 with a
  ``Retry-After`` header.

The store serializes access with one process-wide lock per instance
(SQLite connections are cheap to share, and the serve layer calls in
from an event loop plus executor threads), and commits after every
write — restart the process and nothing is lost.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from .migrations import HEAD_VERSION, migrate as apply_migrations, \
    schema_version

#: The tenant hierarchy, outermost first; a tenant path's depth picks
#: its kind (``"usi"`` is an institution, ``"usi/cs1/spring26"`` a
#: cohort).
TENANT_KINDS = ("institution", "class", "cohort")

#: Tenant used when no one names one (anonymous CLI sweeps, serve
#: without token auth).
DEFAULT_TENANT = "public"


class StoreError(Exception):
    """Base error for store misuse (missing tenants, stale schema)."""


class AuthError(StoreError):
    """A token the store refuses.

    Attributes:
        reason: ``"unknown"`` (no such token), ``"revoked"``, or
            ``"expired"`` (its ``expires_at`` deadline passed).
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class UnknownCursor(StoreError):
    """A results-listing cursor that names no stored digest."""


class QuotaExceeded(StoreError):
    """A write the tenant's quota refuses.

    Attributes:
        tenant: the tenant path that is over budget.
        retry_after_s: the tenant's configured back-off hint.
    """

    def __init__(self, message: str, *, tenant: str,
                 retry_after_s: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class Tenant:
    """One node of the institution → class → cohort hierarchy."""

    id: int
    name: str
    kind: str
    parent_id: Optional[int]
    path: str


@dataclass(frozen=True)
class Quota:
    """Per-tenant result budgets; ``None`` limits are unlimited."""

    max_results: Optional[int]
    max_bytes: Optional[int]
    retry_after_s: float = 60.0


def canonical_json(payload: Any) -> str:
    """The store's one serialization: sorted keys, compact separators.

    The same canonical form :mod:`repro.serve.protocol` responds with,
    so a payload's stored bytes and served bytes agree.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def token_hash(token: str) -> str:
    """SHA-256 hex digest of a plaintext token (what the DB stores)."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class ResultStore:
    """A durable, multi-tenant store on one SQLite database file.

    Opening a store migrates it to the head schema by default; pass
    ``migrate=False`` to manage versions explicitly (the CLI's
    ``repro store migrate`` path, and the migration tests).

    All methods are safe to call from any thread; payload reads and
    writes serialize on an internal lock.
    """

    def __init__(self, path: Union[str, pathlib.Path], *,
                 migrate: bool = True,
                 clock: Callable[[], float] = time.time) -> None:
        self.path = pathlib.Path(path)
        if self.path.parent != pathlib.Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path),
                                     check_same_thread=False)
        self._conn.execute("PRAGMA foreign_keys = ON")
        if migrate:
            self.migrate()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (further calls will fail)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- schema ----------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The database's current migration version (0 when empty)."""
        with self._lock:
            return schema_version(self._conn)

    def migrate(self, *, target: Optional[int] = None) -> List[str]:
        """Apply pending migrations; returns the applied names."""
        with self._lock:
            applied = apply_migrations(self._conn, target=target,
                                       clock=self._clock)
        return [f"{m.version}:{m.name}" for m in applied]

    def _require_head(self) -> None:
        version = schema_version(self._conn)
        if version < HEAD_VERSION:
            raise StoreError(
                f"store schema is at version {version}, head is "
                f"{HEAD_VERSION}; run `repro store migrate` first")

    # -- tenants ---------------------------------------------------------

    def _tenant_row(self, name: str,
                    parent_id: Optional[int]) -> Optional[sqlite3.Row]:
        if parent_id is None:
            return self._conn.execute(
                "SELECT id, name, kind, parent_id FROM tenants "
                "WHERE name = ? AND parent_id IS NULL",
                (name,)).fetchone()
        return self._conn.execute(
            "SELECT id, name, kind, parent_id FROM tenants "
            "WHERE name = ? AND parent_id = ?",
            (name, parent_id)).fetchone()

    def ensure_tenant(self, path: str) -> Tenant:
        """The tenant at a slash path, creating the chain as needed.

        ``"usi/cs1/spring26"`` names (and if absent creates) the
        institution ``usi``, its class ``cs1``, and that class's cohort
        ``spring26``, returning the leaf.

        Raises:
            StoreError: for empty paths or paths deeper than the
                three-level hierarchy.
        """
        parts = [p for p in path.split("/") if p]
        if not parts or len(parts) > len(TENANT_KINDS):
            raise StoreError(
                f"tenant path {path!r} must have 1-{len(TENANT_KINDS)} "
                f"segments ({' > '.join(TENANT_KINDS)})")
        with self._lock:
            self._require_head()
            parent_id: Optional[int] = None
            tenant_id = -1
            for depth, name in enumerate(parts):
                row = self._tenant_row(name, parent_id)
                if row is None:
                    with self._conn:
                        cursor = self._conn.execute(
                            "INSERT INTO tenants "
                            "(name, kind, parent_id, created_at) "
                            "VALUES (?, ?, ?, ?)",
                            (name, TENANT_KINDS[depth], parent_id,
                             self._clock()))
                    tenant_id = int(cursor.lastrowid)
                else:
                    tenant_id = int(row[0])
                parent_id = tenant_id
            leaf = parts[-1]
            return Tenant(id=tenant_id, name=leaf,
                          kind=TENANT_KINDS[len(parts) - 1],
                          parent_id=None if len(parts) == 1
                          else self._tenant_id("/".join(parts[:-1])),
                          path="/".join(parts))

    def _tenant_id(self, path: str) -> int:
        parent_id: Optional[int] = None
        tenant_id: Optional[int] = None
        for name in [p for p in path.split("/") if p]:
            row = self._tenant_row(name, parent_id)
            if row is None:
                raise StoreError(f"no tenant at path {path!r}; create it "
                                 f"with ensure_tenant() or "
                                 f"`repro store tenants --add`")
            tenant_id = int(row[0])
            parent_id = tenant_id
        if tenant_id is None:
            raise StoreError(f"empty tenant path {path!r}")
        return tenant_id

    def _tenant_path(self, tenant_id: int) -> str:
        parts: List[str] = []
        current: Optional[int] = tenant_id
        while current is not None:
            row = self._conn.execute(
                "SELECT name, parent_id FROM tenants WHERE id = ?",
                (current,)).fetchone()
            if row is None:  # pragma: no cover - FK keeps this impossible
                break
            parts.append(str(row[0]))
            current = row[1] if row[1] is None else int(row[1])
        return "/".join(reversed(parts))

    def tenants(self) -> List[Dict[str, Any]]:
        """Every tenant with its usage and quota, sorted by path.

        Each entry carries ``path``, ``kind``, ``n_results``,
        ``bytes``, ``n_sessions``, and a ``quota`` sub-dict (or
        ``None`` when the tenant is unlimited).
        """
        with self._lock:
            self._require_head()
            out = []
            for row in self._conn.execute(
                    "SELECT id, kind FROM tenants").fetchall():
                tenant_id, kind = int(row[0]), str(row[1])
                usage = self._conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) "
                    "FROM results WHERE tenant_id = ?",
                    (tenant_id,)).fetchone()
                sessions = self._conn.execute(
                    "SELECT COUNT(*) FROM sessions WHERE tenant_id = ?",
                    (tenant_id,)).fetchone()
                quota = self._quota(tenant_id)
                out.append({
                    "path": self._tenant_path(tenant_id),
                    "kind": kind,
                    "n_results": int(usage[0]),
                    "bytes": int(usage[1]),
                    "n_sessions": int(sessions[0]),
                    "quota": None if quota is None else {
                        "max_results": quota.max_results,
                        "max_bytes": quota.max_bytes,
                        "retry_after_s": quota.retry_after_s,
                    },
                })
            out.sort(key=lambda t: t["path"])
            return out

    # -- tokens ----------------------------------------------------------

    def issue_token(self, tenant: str, *, label: Optional[str] = None,
                    token: Optional[str] = None,
                    expires_days: Optional[float] = None,
                    expires_at: Optional[float] = None) -> str:
        """Mint an auth token for a tenant; returns the plaintext once.

        The database stores only the token's SHA-256.  Pass ``token``
        to install a caller-chosen plaintext (tests, provisioning
        scripts); by default a 32-hex-char secret is generated.

        Tokens live forever by default; ``expires_days`` sets a
        deadline that many days out on the store's clock (the idiom
        for term-length classroom credentials), and ``expires_at``
        pins an absolute unix-seconds deadline instead.  Expired
        tokens authenticate as ``reason="expired"`` refusals — kept
        distinct from ``"unknown"`` so a student sees "renew your
        token", not "no such token".

        A plaintext the store already knows — live *or* revoked — is
        refused: re-issuing must never rebind a credential to another
        tenant or resurrect one that was revoked.

        Raises:
            StoreError: when the token hash is already on file, or
                both expiry forms are given.
        """
        if expires_days is not None and expires_at is not None:
            raise StoreError(
                "pass expires_days or expires_at, not both")
        if expires_days is not None:
            if expires_days <= 0:
                raise StoreError(
                    f"expires_days must be positive, got {expires_days}")
            expires_at = self._clock() + expires_days * 86400.0
        if token is None:
            import secrets
            token = secrets.token_hex(16)
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO tokens "
                        "(token_hash, tenant_id, label, revoked, "
                        " created_at, expires_at) VALUES (?, ?, ?, 0, ?, ?)",
                        (token_hash(token), tenant_id, label,
                         self._clock(), expires_at))
            except sqlite3.IntegrityError:
                raise StoreError(
                    "refusing to re-issue an already-known token "
                    "(live or revoked); mint a fresh secret instead"
                ) from None
        return token

    def revoke_token(self, token: str) -> bool:
        """Revoke a token by plaintext; returns whether it existed."""
        with self._lock:
            with self._conn:
                cursor = self._conn.execute(
                    "UPDATE tokens SET revoked = 1 WHERE token_hash = ?",
                    (token_hash(token),))
            return cursor.rowcount > 0

    def authenticate(self, token: str) -> Tenant:
        """The tenant a plaintext token authenticates as.

        Raises:
            AuthError: ``reason="unknown"`` for a token the store never
                issued, ``reason="revoked"`` for one that was revoked,
                ``reason="expired"`` for one past its ``expires_at``
                deadline.
        """
        with self._lock:
            self._require_head()
            row = self._conn.execute(
                "SELECT tenant_id, revoked, expires_at FROM tokens "
                "WHERE token_hash = ?", (token_hash(token),)).fetchone()
            if row is None:
                raise AuthError("unknown token", reason="unknown")
            if int(row[1]):
                raise AuthError("token has been revoked",
                                reason="revoked")
            if row[2] is not None and self._clock() >= float(row[2]):
                raise AuthError("token has expired", reason="expired")
            tenant_id = int(row[0])
            trow = self._conn.execute(
                "SELECT name, kind, parent_id FROM tenants WHERE id = ?",
                (tenant_id,)).fetchone()
            return Tenant(id=tenant_id, name=str(trow[0]),
                          kind=str(trow[1]),
                          parent_id=None if trow[2] is None
                          else int(trow[2]),
                          path=self._tenant_path(tenant_id))

    # -- quotas ----------------------------------------------------------

    def set_quota(self, tenant: str, *,
                  max_results: Optional[int] = None,
                  max_bytes: Optional[int] = None,
                  retry_after_s: float = 60.0) -> None:
        """Install (or replace) a tenant's result budgets."""
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO quotas "
                    "(tenant_id, max_results, max_bytes, retry_after_s) "
                    "VALUES (?, ?, ?, ?)",
                    (tenant_id, max_results, max_bytes, retry_after_s))

    def _quota(self, tenant_id: int) -> Optional[Quota]:
        row = self._conn.execute(
            "SELECT max_results, max_bytes, retry_after_s FROM quotas "
            "WHERE tenant_id = ?", (tenant_id,)).fetchone()
        if row is None:
            return None
        return Quota(
            max_results=None if row[0] is None else int(row[0]),
            max_bytes=None if row[1] is None else int(row[1]),
            retry_after_s=float(row[2]))

    def quota(self, tenant: str) -> Optional[Quota]:
        """The tenant's quota, or ``None`` when unlimited."""
        with self._lock:
            return self._quota(self._tenant_id(tenant))

    def check_quota(self, tenant: str, *, add_results: int = 0,
                    add_bytes: int = 0) -> None:
        """Refuse a prospective write that would bust the budget.

        Raises:
            QuotaExceeded: when current usage plus the addition exceeds
                ``max_results`` or ``max_bytes``; carries the tenant's
                ``retry_after_s`` hint.
        """
        with self._lock:
            self._check_quota_row(self._tenant_id(tenant), tenant,
                                  add_results=add_results,
                                  add_bytes=add_bytes)

    def _check_quota_row(self, tenant_id: int, tenant: str, *,
                         add_results: int, add_bytes: int) -> None:
        """The quota gate itself: no locking, no transaction management.

        ``put_result`` calls this inside its ``BEGIN IMMEDIATE``
        transaction so the usage read and the subsequent insert are one
        atomic unit even when another *process* shares the database.
        """
        quota = self._quota(tenant_id)
        if quota is None:
            return
        usage = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) "
            "FROM results WHERE tenant_id = ?",
            (tenant_id,)).fetchone()
        n_results, n_bytes = int(usage[0]), int(usage[1])
        if (quota.max_results is not None
                and n_results + add_results > quota.max_results):
            raise QuotaExceeded(
                f"tenant {tenant!r} is at {n_results} of "
                f"{quota.max_results} results",
                tenant=tenant, retry_after_s=quota.retry_after_s)
        if (quota.max_bytes is not None
                and n_bytes + add_bytes > quota.max_bytes):
            raise QuotaExceeded(
                f"tenant {tenant!r} is at {n_bytes} of "
                f"{quota.max_bytes} bytes",
                tenant=tenant, retry_after_s=quota.retry_after_s)

    # -- results ---------------------------------------------------------

    def put_result(self, digest: str, payload: Dict[str, Any], *,
                   tenant: str = DEFAULT_TENANT,
                   kind: str = "sweep_cell",
                   enforce_quota: bool = True) -> None:
        """Persist one content-addressed payload under a tenant.

        Re-putting an existing digest replaces its payload but keeps
        the row's ``created_at``/``accessed_at``/``hits`` — a re-put
        must not jump the queue in :meth:`gc`'s oldest-first eviction
        or erase its access history.  The quota check and the insert
        run in one ``BEGIN IMMEDIATE`` transaction, so concurrent
        writers — including other *processes* sharing the database
        file — cannot interleave past the gate.

        Raises:
            QuotaExceeded: when the write would bust the tenant's
                quota (replacements of an existing digest never do).
            StoreError: when the tenant does not exist.
        """
        text = canonical_json(payload)
        with self._lock:
            self._require_head()
            tenant_id = self._tenant_id(tenant)
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                exists = self._conn.execute(
                    "SELECT 1 FROM results "
                    "WHERE tenant_id = ? AND digest = ?",
                    (tenant_id, digest)).fetchone()
                if exists is not None:
                    self._conn.execute(
                        "UPDATE results SET kind = ?, payload = ?, "
                        "nbytes = ? WHERE tenant_id = ? AND digest = ?",
                        (kind, text, len(text), tenant_id, digest))
                else:
                    if enforce_quota:
                        self._check_quota_row(tenant_id, tenant,
                                              add_results=1,
                                              add_bytes=len(text))
                    self._conn.execute(
                        "INSERT INTO results "
                        "(digest, tenant_id, kind, payload, nbytes, "
                        " created_at, accessed_at, hits) "
                        "VALUES (?, ?, ?, ?, ?, ?, NULL, 0)",
                        (digest, tenant_id, kind, text, len(text),
                         self._clock()))
            except BaseException:
                self._conn.rollback()
                raise
            self._conn.commit()

    def get_result(self, digest: str, *,
                   tenant: str = DEFAULT_TENANT) -> Optional[Dict[str, Any]]:
        """The payload stored for a digest, or ``None`` on a miss.

        A hit stamps ``accessed_at`` and bumps ``hits`` so ``gc`` and
        operators can see what is live.
        """
        with self._lock:
            self._require_head()
            try:
                tenant_id = self._tenant_id(tenant)
            except StoreError:
                return None  # no tenant, no results
            row = self._conn.execute(
                "SELECT payload FROM results "
                "WHERE tenant_id = ? AND digest = ?",
                (tenant_id, digest)).fetchone()
            if row is None:
                return None
            with self._conn:
                self._conn.execute(
                    "UPDATE results SET accessed_at = ?, hits = hits + 1 "
                    "WHERE tenant_id = ? AND digest = ?",
                    (self._clock(), tenant_id, digest))
            return json.loads(row[0])

    def results(self, *, tenant: Optional[str] = None,
                limit: Optional[int] = None,
                after: Optional[str] = None) -> List[Dict[str, Any]]:
        """Result summaries (no payloads), newest first.

        Pagination is keyset-based on the listing order
        ``(created_at DESC, digest ASC)``: pass the last digest of the
        previous page as ``after`` and the next page starts strictly
        past that row.  Unlike OFFSET paging, the cursor is stable
        under concurrent inserts — new rows land on page one and never
        shift or duplicate later pages.

        Args:
            tenant: restrict to one tenant path (default: all tenants).
            limit: cap the listing length (page size when paginating).
            after: digest of the last row already seen; the listing
                resumes after it.

        Raises:
            UnknownCursor: when ``after`` names no stored digest in
                scope — a caller holding a stale cursor should restart
                from the first page.
        """
        with self._lock:
            self._require_head()
            where: List[str] = []
            params: List[Any] = []
            if tenant is not None:
                where.append("tenant_id = ?")
                params.append(self._tenant_id(tenant))
            if after is not None:
                cursor_query = ("SELECT created_at, digest FROM results "
                                "WHERE digest = ?")
                cursor_params: List[Any] = [after]
                if tenant is not None:
                    cursor_query += " AND tenant_id = ?"
                    cursor_params.append(params[0])
                cursor_query += " ORDER BY created_at DESC, digest LIMIT 1"
                cursor = self._conn.execute(
                    cursor_query, cursor_params).fetchone()
                if cursor is None:
                    raise UnknownCursor(
                        f"cursor {after!r} names no stored result; "
                        f"restart the listing from its first page")
                where.append("(created_at < ? OR "
                             "(created_at = ? AND digest > ?))")
                params.extend([float(cursor[0]), float(cursor[0]),
                               str(cursor[1])])
            query = ("SELECT digest, tenant_id, kind, nbytes, created_at, "
                     "hits FROM results")
            if where:
                query += " WHERE " + " AND ".join(where)
            query += " ORDER BY created_at DESC, digest"
            if limit is not None:
                query += " LIMIT ?"
                params.append(limit)
            return [
                {"digest": str(r[0]),
                 "tenant": self._tenant_path(int(r[1])),
                 "kind": str(r[2]),
                 "nbytes": int(r[3]),
                 "created_at": float(r[4]),
                 "hits": int(r[5])}
                for r in self._conn.execute(query, params).fetchall()
            ]

    def gc(self, *, older_than_s: Optional[float] = None,
           tenant: Optional[str] = None) -> int:
        """Delete stale results; returns how many rows went.

        Two passes: results older than ``older_than_s`` (by creation
        stamp, against the store's clock) are dropped, then any tenant
        still over its quota loses oldest results until the budget
        holds.  Sessions are never collected — they are the durable
        record of record.
        """
        deleted = 0
        with self._lock:
            self._require_head()
            tenant_ids: List[int]
            if tenant is not None:
                tenant_ids = [self._tenant_id(tenant)]
            else:
                tenant_ids = [int(r[0]) for r in self._conn.execute(
                    "SELECT id FROM tenants").fetchall()]
            if older_than_s is not None:
                cutoff = self._clock() - older_than_s
                for tenant_id in tenant_ids:
                    with self._conn:
                        cursor = self._conn.execute(
                            "DELETE FROM results WHERE tenant_id = ? "
                            "AND created_at < ?", (tenant_id, cutoff))
                    deleted += cursor.rowcount
            for tenant_id in tenant_ids:
                quota = self._quota(tenant_id)
                if quota is None:
                    continue
                while True:
                    usage = self._conn.execute(
                        "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) "
                        "FROM results WHERE tenant_id = ?",
                        (tenant_id,)).fetchone()
                    n_results, n_bytes = int(usage[0]), int(usage[1])
                    over = ((quota.max_results is not None
                             and n_results > quota.max_results)
                            or (quota.max_bytes is not None
                                and n_bytes > quota.max_bytes))
                    if not over or n_results == 0:
                        break
                    with self._conn:
                        self._conn.execute(
                            "DELETE FROM results WHERE tenant_id = ? "
                            "AND digest = (SELECT digest FROM results "
                            "  WHERE tenant_id = ? "
                            "  ORDER BY created_at, digest LIMIT 1)",
                            (tenant_id, tenant_id))
                    deleted += 1
        return deleted

    # -- sessions --------------------------------------------------------

    def put_session(self, report: Any, *,
                    tenant: str = DEFAULT_TENANT) -> int:
        """Persist a classroom session report; returns its row id.

        ``report`` is anything with ``institution``/``flag`` attributes
        and a ``to_payload()`` method — in practice a
        :class:`repro.classroom.SessionReport` (duck-typed here so the
        store never imports the classroom layer).
        """
        payload = canonical_json(report.to_payload())
        with self._lock:
            self._require_head()
            tenant_id = self._tenant_id(tenant)
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO sessions "
                    "(tenant_id, institution, flag, payload, created_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (tenant_id, report.institution, report.flag,
                     payload, self._clock()))
            return int(cursor.lastrowid)

    def get_session(self, session_id: int) -> Optional[Dict[str, Any]]:
        """One stored session: metadata plus the report payload dict.

        Feed the ``"payload"`` value to
        :meth:`repro.classroom.SessionReport.from_payload` to get a
        whiteboard-complete report object back.
        """
        with self._lock:
            self._require_head()
            row = self._conn.execute(
                "SELECT id, tenant_id, institution, flag, payload, "
                "created_at FROM sessions WHERE id = ?",
                (session_id,)).fetchone()
            if row is None:
                return None
            return {"id": int(row[0]),
                    "tenant": self._tenant_path(int(row[1])),
                    "institution": str(row[2]),
                    "flag": str(row[3]),
                    "payload": json.loads(row[4]),
                    "created_at": float(row[5])}

    def sessions(self, *, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Session summaries (no payloads), newest first."""
        with self._lock:
            self._require_head()
            query = ("SELECT id, tenant_id, institution, flag, created_at "
                     "FROM sessions")
            params: List[Any] = []
            if tenant is not None:
                query += " WHERE tenant_id = ?"
                params.append(self._tenant_id(tenant))
            query += " ORDER BY created_at DESC, id DESC"
            return [
                {"id": int(r[0]),
                 "tenant": self._tenant_path(int(r[1])),
                 "institution": str(r[2]),
                 "flag": str(r[3]),
                 "created_at": float(r[4])}
                for r in self._conn.execute(query, params).fetchall()
            ]
