"""Text visualization: bar charts, tables, Gantt charts, flag art."""

from .animate import (
    AnimationError,
    Frame,
    ascii_frames,
    canvas_at,
    frames,
    progress_curve,
    svg_filmstrip,
)
from .bars import grouped_bar_chart, hbar_chart, sparkline
from .tables import format_table, paper_vs_measured
from .gantt import render_agent_loads, render_gantt
from ..grid.render import to_ansi, to_ascii

__all__ = [
    "grouped_bar_chart",
    "hbar_chart",
    "sparkline",
    "format_table",
    "paper_vs_measured",
    "render_agent_loads",
    "render_gantt",
    "to_ansi",
    "to_ascii",
    "AnimationError",
    "Frame",
    "ascii_frames",
    "canvas_at",
    "frames",
    "progress_curve",
    "svg_filmstrip",
]
