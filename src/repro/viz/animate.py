"""Schedule animations: the Webster multimedia resource, recreated.

The Webster instructor showed "custom-created animations to visualize
schedules with different numbers of processors ... showing the efficiency
gains and potential bottlenecks when multiple processors work together"
[34].  This module rebuilds that artifact from a simulation trace:

- :func:`canvas_at` — reconstruct the sheet's color state at any time;
- :func:`ascii_frames` — a frame sequence (ASCII art + per-agent status
  line) suitable for terminal playback;
- :func:`svg_filmstrip` — a single SVG laying the frames side by side,
  the printable version of the animation.

Everything derives from STROKE_END events, so any trace the engine
produced — any strategy, any flag — animates for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..grid.palette import Color
from ..grid.render import to_ascii, to_svg
from ..sim.events import EventKind
from ..sim.trace import Trace


class AnimationError(Exception):
    """Raised for empty traces or invalid frame requests."""


def _stroke_end_events(trace: Trace):
    return [e for e in trace.events if e.kind == EventKind.STROKE_END]


def canvas_at(trace: Trace, t: float, rows: int, cols: int) -> np.ndarray:
    """The color-code plane as of simulated time ``t``.

    Strokes are applied at their END events (a cell isn't colored until
    the student finishes it), in event order so later layers win.
    """
    img = np.zeros((rows, cols), dtype=np.int8)
    for e in _stroke_end_events(trace):
        if e.time > t:
            break
        cell = e.data.get("cell")
        color = e.data.get("color")
        if cell is None or color is None:
            continue
        r, c = int(cell[0]), int(cell[1])
        if 0 <= r < rows and 0 <= c < cols:
            img[r, c] = int(Color[color])
    return img


@dataclass(frozen=True)
class Frame:
    """One animation frame: time, canvas state, who is doing what."""

    time: float
    codes: np.ndarray
    active: Dict[str, str]  # agent -> "coloring red" / "waiting for red"

    @property
    def fraction_done(self) -> float:
        """Colored cells / total cells."""
        return float((self.codes != 0).mean())


def _agent_states(trace: Trace, t: float) -> Dict[str, str]:
    """What each agent is doing at time t (coloring / waiting / idle)."""
    states: Dict[str, str] = {}
    for iv in trace.stroke_intervals():
        if iv.start <= t < iv.end:
            states[iv.agent] = f"coloring {iv.label}"
    for iv in trace.wait_intervals():
        if iv.duration > 0 and iv.start <= t < iv.end:
            states.setdefault(iv.agent, f"waiting for {iv.label}")
    for agent in trace.agents():
        states.setdefault(agent, "idle")
    return states


def frames(trace: Trace, rows: int, cols: int,
           n_frames: int = 10) -> List[Frame]:
    """Evenly spaced frames over the run's makespan (inclusive of the end).

    Raises:
        AnimationError: on an empty trace or a non-positive frame count.
    """
    if n_frames < 1:
        raise AnimationError(f"need at least one frame, got {n_frames}")
    span = trace.makespan()
    if span <= 0:
        raise AnimationError("trace has no events to animate")
    times = [span * i / max(n_frames - 1, 1) for i in range(n_frames)]
    out: List[Frame] = []
    for t in times:
        out.append(Frame(
            time=t,
            codes=canvas_at(trace, t, rows, cols),
            active=_agent_states(trace, t),
        ))
    return out


def ascii_frames(trace: Trace, rows: int, cols: int,
                 n_frames: int = 8) -> List[str]:
    """Printable frames: a header, the sheet, and one status line per
    student — paging through them is the terminal animation."""
    out: List[str] = []
    for fr in frames(trace, rows, cols, n_frames):
        lines = [f"t={fr.time:7.1f}s   {fr.fraction_done:4.0%} colored"]
        lines.append(to_ascii(fr.codes))
        for agent in sorted(fr.active):
            lines.append(f"  {agent}: {fr.active[agent]}")
        out.append("\n".join(lines))
    return out


def svg_filmstrip(trace: Trace, rows: int, cols: int,
                  n_frames: int = 6, *, cell: int = 10,
                  gap: int = 12) -> str:
    """All frames side by side in one SVG — the handout version.

    Each frame is the flag at that instant with its timestamp below.
    """
    frs = frames(trace, rows, cols, n_frames)
    frame_w = cols * cell
    frame_h = rows * cell
    total_w = n_frames * frame_w + (n_frames - 1) * gap
    total_h = frame_h + 18
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{total_h}">'
    ]
    for i, fr in enumerate(frs):
        x0 = i * (frame_w + gap)
        inner = to_svg(fr.codes, cell=cell, grid_lines=False)
        # Embed by shifting with a group transform; strip the outer tag.
        body = inner[inner.index(">") + 1: inner.rindex("</svg>")]
        parts.append(f'<g transform="translate({x0},0)">{body}</g>')
        parts.append(
            f'<text x="{x0 + frame_w / 2}" y="{frame_h + 14}" '
            f'font-size="10" text-anchor="middle">t={fr.time:.0f}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def progress_curve(trace: Trace, rows: int, cols: int,
                   n_points: int = 40) -> List[Tuple[float, float]]:
    """(time, fraction colored) samples — the S-curve of the run.

    Sequential runs rise linearly; contended runs show the pipeline-fill
    lag at the start; the curve's knee locates the bottleneck visually.
    """
    span = trace.makespan()
    if span <= 0:
        raise AnimationError("trace has no events to animate")
    ends = _stroke_end_events(trace)
    total = rows * cols
    out: List[Tuple[float, float]] = []
    done = 0
    idx = 0
    seen = set()
    for i in range(n_points + 1):
        t = span * i / n_points
        while idx < len(ends) and ends[idx].time <= t:
            cell = ends[idx].data.get("cell")
            if cell is not None:
                seen.add((int(cell[0]), int(cell[1])))
            idx += 1
        out.append((t, len(seen) / total))
    return out
