"""Unicode bar charts for terminal output (Figure 6 and friends).

No plotting dependency: horizontal bars built from block characters, with
labels and values.  Grouped mode renders one bar per (group, series) pair —
the layout of Figure 6's per-question, per-institution medians.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A horizontal bar of ``value/vmax`` scaled to ``width`` characters."""
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    rem = cells - full
    partial = _BLOCKS[int(rem * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * full + partial


def hbar_chart(
    data: Mapping[str, float],
    *,
    width: int = 40,
    vmax: Optional[float] = None,
    fmt: str = "{:.1f}",
    title: Optional[str] = None,
) -> str:
    """A labeled horizontal bar chart.

    Args:
        data: label -> value (insertion order preserved).
        width: bar area width in characters.
        vmax: scale maximum (defaults to the data max).
        fmt: value format.
        title: optional heading line.
    """
    if not data:
        return title or ""
    vmax = vmax if vmax is not None else max(data.values())
    label_w = max(len(str(k)) for k in data)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in data.items():
        bar = _bar(value, vmax, width)
        lines.append(f"{str(label):<{label_w}} |{bar:<{width}}| "
                     + fmt.format(value))
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, Optional[float]]],
    *,
    width: int = 30,
    vmax: float = 5.0,
    fmt: str = "{:.1f}",
    na: str = "NA",
) -> str:
    """Grouped bars: one block per group, one bar per series within it.

    ``groups`` maps group label (e.g. a survey question) to series label
    (e.g. institution) to value; None renders as NA without a bar — the
    shape of Figure 6.
    """
    lines: List[str] = []
    series_w = max(
        (len(str(s)) for g in groups.values() for s in g), default=0
    )
    for gi, (group, series) in enumerate(groups.items()):
        if gi:
            lines.append("")
        lines.append(str(group))
        for s, v in series.items():
            if v is None:
                lines.append(f"  {str(s):<{series_w}} |{'':<{width}}| {na}")
            else:
                bar = _bar(v, vmax, width)
                lines.append(f"  {str(s):<{series_w}} |{bar:<{width}}| "
                             + fmt.format(v))
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, vmax: Optional[float] = None) -> str:
    """A one-line mini-chart (used for occupancy curves)."""
    if not values:
        return ""
    glyphs = "▁▂▃▄▅▆▇█"
    vmax = vmax if vmax is not None else max(values)
    if vmax <= 0:
        return glyphs[0] * len(values)
    out = []
    for v in values:
        frac = max(0.0, min(1.0, v / vmax))
        out.append(glyphs[round(frac * (len(glyphs) - 1))])
    return "".join(out)
