"""ASCII / markdown table formatting for benchmark output.

The benchmark harness prints paper-vs-measured tables; these helpers keep
that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    markdown: bool = False,
) -> str:
    """Render rows as an aligned text (or markdown) table.

    Cells are str()-ed; None renders as "NA".
    """
    def cell(x: object) -> str:
        if x is None:
            return "NA"
        if isinstance(x, float):
            return f"{x:.2f}".rstrip("0").rstrip(".")
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        body = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {body} |" if markdown else body

    out: List[str] = [line(list(headers))]
    if markdown:
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def paper_vs_measured(
    row_labels: Sequence[str],
    paper: Mapping[str, Optional[float]],
    measured: Mapping[str, Optional[float]],
    *,
    value_fmt: str = "{:.2f}",
) -> str:
    """Three-column comparison: label, paper value, measured value, match.

    A row matches when both are None (NA) or the values agree to the
    format's precision.
    """
    rows: List[List[object]] = []
    for label in row_labels:
        p = paper.get(label)
        m = measured.get(label)
        if p is None and m is None:
            ok = "ok"
        elif p is None or m is None:
            ok = "MISMATCH"
        else:
            ok = "ok" if value_fmt.format(p) == value_fmt.format(m) else "DIFF"
        rows.append([
            label,
            None if p is None else value_fmt.format(p),
            None if m is None else value_fmt.format(m),
            ok,
        ])
    return format_table(["metric", "paper", "measured", ""], rows)
