"""Text Gantt charts of simulation traces.

One row per agent; each stroke interval is drawn with the first letter of
its color, waits with ``.``, idle with space.  These render the schedule
visualizations the Webster instructor showed as animations [34] — the
per-processor timelines with bottlenecks visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.trace import Interval, Trace


def render_gantt(
    trace: Trace,
    *,
    width: int = 80,
    show_waits: bool = True,
    legend: bool = True,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    Args:
        width: number of time columns.
        show_waits: draw implement-queue time as ``.``.
        legend: append a legend line.
    """
    span = trace.makespan()
    strokes = trace.stroke_intervals()
    waits = trace.wait_intervals() if show_waits else []
    agents = sorted({iv.agent for iv in strokes} | {iv.agent for iv in waits})
    if not agents or span <= 0:
        return "(empty trace)"

    def col(t: float) -> int:
        return min(width - 1, int(t / span * width))

    rows: Dict[str, List[str]] = {a: [" "] * width for a in agents}
    for iv in waits:
        if iv.duration <= 0:
            continue
        for c in range(col(iv.start), col(iv.end) + 1):
            rows[iv.agent][c] = "."
    for iv in strokes:
        glyph = iv.label[0].upper() if iv.label else "#"
        for c in range(col(iv.start), col(iv.end) + 1):
            rows[iv.agent][c] = glyph

    label_w = max(len(a) for a in agents)
    lines = [f"{a:<{label_w}} |{''.join(rows[a])}|" for a in agents]
    axis = (f"{'':<{label_w}} 0{'':<{max(0, width - len(f'{span:.0f}s') - 1)}}"
            f"{span:.0f}s")
    lines.append(axis)
    if legend:
        colors = sorted({iv.label for iv in strokes})
        lines.append(
            "legend: " + ", ".join(f"{c[0].upper()}={c}" for c in colors)
            + (", .=waiting" if show_waits else "")
        )
    return "\n".join(lines)


def render_agent_loads(trace: Trace, *, width: int = 40) -> str:
    """Busy/wait/idle stacked per agent as proportional character bars."""
    summaries = trace.summaries()
    if not summaries:
        return "(no working agents)"
    span = trace.makespan()
    label_w = max(len(s.agent) for s in summaries)
    lines = []
    for s in summaries:
        if span <= 0:
            lines.append(f"{s.agent:<{label_w}} (empty)")
            continue
        b = round(s.busy / span * width)
        w = round(s.waiting / span * width)
        i = max(0, width - b - w)
        lines.append(
            f"{s.agent:<{label_w}} |{'#' * b}{'.' * w}{' ' * i}| "
            f"busy={s.busy:.0f}s wait={s.waiting:.0f}s util={s.utilization:.0%}"
        )
    lines.append("legend: #=coloring, .=waiting for implement")
    return "\n".join(lines)
