"""Deterministic fault injection and recovery for classroom runs.

Declare what goes wrong (:class:`FaultPlan`), pick how the team responds
(:class:`RecoveryPolicy`), and the injector compiles the plan into engine
interrupts so the whole faulty run replays byte-for-byte from one seed.
"""

from .plan import (
    Fault,
    FaultError,
    FaultKind,
    FaultPlan,
    ImplementFailure,
    LateArrival,
    StudentDropout,
    TransientStall,
    sample_plan,
)
from .recovery import (
    FaultAccounting,
    RecoveryConfig,
    RecoveryError,
    RecoveryPolicy,
)
from .injector import FaultInjector, resilient_worker

__all__ = [
    "Fault",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "ImplementFailure",
    "LateArrival",
    "StudentDropout",
    "TransientStall",
    "sample_plan",
    "FaultAccounting",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryPolicy",
    "FaultInjector",
    "resilient_worker",
]
