"""Recovery policies: what the team does when something breaks.

The classroom debrief question — "what does the team do when a colorer
leaves?" — has three honest answers, and each is a real fault-tolerance
strategy:

- :attr:`RecoveryPolicy.ABANDON` — graceful degradation.  Survivors
  finish their own work; the dropped student's cells stay blank and a
  permanently failed implement's cells are skipped.  The canvas comes
  back incomplete but the team *finishes*, and the coverage loss is the
  measured cost.
- :attr:`RecoveryPolicy.REDISTRIBUTE` — work redistribution.  A dropped
  student's remaining strokes go to the least-loaded survivor (who pays a
  pickup pause walking over).  Full coverage, longer makespan.
- :attr:`RecoveryPolicy.SPARE_WITH_DELAY` — retry with backoff.  A failed
  implement is replaced after a fetch delay (someone runs to the supply
  closet); acquires queue up and resume when the spare arrives.  Dropouts
  under this policy fall back to REDISTRIBUTE handling so every fault
  kind has a defined outcome.

Which policy handles which fault:

===================  =========  ============  ================
fault                ABANDON    REDISTRIBUTE  SPARE_WITH_DELAY
===================  =========  ============  ================
student dropout      ops lost   reassigned    reassigned
implement failure    ops lost   ops lost      repaired
transient stall      ride out   ride out      ride out
late arrival         start late start late    start late
===================  =========  ============  ================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class RecoveryError(Exception):
    """Raised for invalid recovery configurations."""


class RecoveryPolicy(enum.Enum):
    """How the team responds to permanent faults."""

    ABANDON = "abandon"
    REDISTRIBUTE = "redistribute"
    SPARE_WITH_DELAY = "spare_with_delay"


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunable recovery behavior for one run.

    Attributes:
        policy: the strategy (see module docstring for the fault matrix).
        spare_fetch_delay: seconds to fetch a replacement implement
            (SPARE_WITH_DELAY only).
        redistribute_overhead: one-time pause charged to the survivor who
            inherits a dropped student's strokes (walking over, reading
            the remaining cells).
    """

    policy: RecoveryPolicy = RecoveryPolicy.REDISTRIBUTE
    spare_fetch_delay: float = 12.0
    redistribute_overhead: float = 3.0

    def __post_init__(self) -> None:
        if self.spare_fetch_delay <= 0:
            raise RecoveryError(
                f"spare_fetch_delay must be > 0, got {self.spare_fetch_delay}"
            )
        if self.redistribute_overhead < 0:
            raise RecoveryError(
                f"redistribute_overhead must be >= 0, "
                f"got {self.redistribute_overhead}"
            )

    @property
    def reassigns_dropout_work(self) -> bool:
        """Whether a dropped worker's remaining ops find a new owner."""
        return self.policy in (RecoveryPolicy.REDISTRIBUTE,
                               RecoveryPolicy.SPARE_WITH_DELAY)

    @property
    def repairs_implements(self) -> bool:
        """Whether failed implements get a scheduled replacement."""
        return self.policy is RecoveryPolicy.SPARE_WITH_DELAY


@dataclass
class FaultAccounting:
    """What actually happened: faults fired and what recovery cost.

    Filled in by the injector and the resilient workers during a run and
    attached to the :class:`~repro.schedule.runner.RunResult` as
    ``result.faults``.

    Attributes:
        faults_fired: injected faults that actually took effect.
        dropouts / implement_failures / stalls / late_arrivals: per-kind
            fired counts.
        ops_reassigned: strokes moved to a survivor after a dropout.
        ops_abandoned: strokes never painted (dropout under ABANDON, or
            any op needing a permanently failed implement).
        recovery_latencies: seconds each recovery action took (spare
            fetch delays, redistribution pickup pauses).
    """

    faults_fired: int = 0
    dropouts: int = 0
    implement_failures: int = 0
    stalls: int = 0
    late_arrivals: int = 0
    ops_reassigned: int = 0
    ops_abandoned: int = 0
    recovery_latencies: List[float] = field(default_factory=list)

    @property
    def mean_recovery_latency(self) -> float:
        """Average recovery action latency (0.0 when nothing recovered)."""
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    @property
    def max_recovery_latency(self) -> float:
        """Worst single recovery latency (0.0 when nothing recovered)."""
        return max(self.recovery_latencies, default=0.0)

    def summary(self) -> Dict[str, float]:
        """Flat numbers for reports and JSON export."""
        return {
            "faults_fired": self.faults_fired,
            "dropouts": self.dropouts,
            "implement_failures": self.implement_failures,
            "stalls": self.stalls,
            "late_arrivals": self.late_arrivals,
            "ops_reassigned": self.ops_reassigned,
            "ops_abandoned": self.ops_abandoned,
            "mean_recovery_latency": self.mean_recovery_latency,
            "max_recovery_latency": self.max_recovery_latency,
        }
