"""Compile a fault plan into engine interrupts, plus the workers that
survive them.

Two halves:

- :class:`FaultInjector` turns each :class:`~repro.faults.plan.FaultPlan`
  entry into kernel-level scheduled calls — dropout kills, implement
  failures (permanent or with a scheduled spare), stall interrupts — and
  performs the recovery bookkeeping (redistribution, abandonment
  accounting) the moment a fault fires.
- :func:`resilient_worker` is the fault-aware counterpart of
  :func:`~repro.schedule.runner.paint_worker`: it pulls strokes from a
  shared per-worker deque (so a survivor can inherit a dropped
  teammate's work mid-run), rides out stall interrupts wherever they
  land, survives permanent implement failures by abandoning the dead
  color, and hands its in-flight stroke back on a kill so redistribution
  never loses an op.

With an empty plan the worker yields exactly the command sequence
``paint_worker`` yields, which is what makes a fault-free plan's trace
byte-identical to a no-plan run (a property test pins this).
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional, Set

import numpy as np

from ..agents.student import FillStyle, StudentProcessor
from ..agents.team import Team
from ..grid.canvas import Canvas
from ..grid.palette import Color
from ..sim.engine import (
    Acquire,
    KillInterrupt,
    ProcessGen,
    Release,
    ResourceFailure,
    ResourceHandle,
    Simulator,
    StallInterrupt,
    Timeout,
)
from ..sim.events import EventKind
from .plan import (
    FaultError,
    FaultPlan,
    ImplementFailure,
    LateArrival,
    StudentDropout,
    TransientStall,
)
from .recovery import FaultAccounting, RecoveryConfig


def _sleep(sim: Simulator, agent: str, delay: float):
    """Sleep ``delay`` simulated seconds, riding out stall interrupts.

    The first yield passes ``delay`` through untouched so a fault-free
    run reproduces ``Timeout(delay)`` bit for bit; only after a stall do
    we recompute the remaining time (stall duration + what was left).
    Kill interrupts are not caught — they propagate to the worker's
    handler.
    """
    end: Optional[float] = None
    while True:
        start = sim.now
        try:
            yield Timeout(delay)
            return
        except StallInterrupt as s:
            if end is None:
                end = start + delay
            sim.log(EventKind.STALL, agent=agent, duration=s.duration,
                    reason=s.reason)
            remaining = max(0.0, end - sim.now)
            delay = s.duration + remaining
            end = sim.now + delay


def _acquire(sim: Simulator, agent: str, res: ResourceHandle):
    """Acquire a resource, riding out stalls; False on permanent failure.

    A stall delivered while parked in the queue drops our queue slot, so
    after sleeping it out we re-request — unless the grant had already
    landed (granted-but-not-yet-woken), in which case we simply proceed.
    """
    while True:
        try:
            yield Acquire(res)
            return True
        except ResourceFailure:
            return False
        except StallInterrupt as s:
            sim.log(EventKind.STALL, agent=agent, duration=s.duration,
                    reason=s.reason)
            yield from _sleep(sim, agent, s.duration)
            if res.held_by(agent):
                return True


def resilient_worker(
    sim: Simulator,
    student: StudentProcessor,
    queue: Deque,
    team: Team,
    canvas: Canvas,
    resources: Dict[Color, ResourceHandle],
    rng: np.random.Generator,
    *,
    style: FillStyle = FillStyle.SCRIBBLE,
    release_per_stroke: bool = False,
    last_holder: Optional[Dict[str, str]] = None,
    accounting: Optional[FaultAccounting] = None,
    dead_colors: Optional[Set[Color]] = None,
) -> ProcessGen:
    """One student working through a shared, mutable stroke deque.

    Args:
        queue: this worker's stroke deque; recovery may append a dropped
            teammate's strokes to it mid-run, and on a kill the worker
            pushes its in-flight stroke back so nothing is silently lost.
        accounting: shared per-run fault ledger (ops abandoned, ...).
        dead_colors: shared set of colors whose implement permanently
            failed; strokes needing them are abandoned, not attempted.
    """
    if last_holder is None:
        last_holder = {}
    if accounting is None:
        accounting = FaultAccounting()
    if dead_colors is None:
        dead_colors = set()
    name = student.name
    held: Optional[ResourceHandle] = None
    current = None
    try:
        while queue:
            op = queue.popleft()
            current = op
            if op.color in dead_colors:
                sim.log(EventKind.OP_ABANDONED, agent=name, cell=op.cell,
                        color=op.color.name, reason="implement_failed")
                accounting.ops_abandoned += 1
                current = None
                continue
            res = resources[op.color]
            if held is not res:
                if held is not None:
                    yield Release(held)
                    held = None
                got = yield from _acquire(sim, name, res)
                if not got:
                    dead_colors.add(op.color)
                    sim.log(EventKind.OP_ABANDONED, agent=name, cell=op.cell,
                            color=op.color.name, reason="implement_failed")
                    accounting.ops_abandoned += 1
                    current = None
                    continue
                prev = last_holder.get(res.name)
                if prev is not None and prev != name:
                    delay = student.handoff_time(rng)
                    sim.log(EventKind.HANDOFF, agent=name,
                            resource=res.name, from_agent=prev, delay=delay)
                    yield from _sleep(sim, name, delay)
                last_holder[res.name] = name
                held = res
            implement = team.kit.implement_for(op.color)
            duration, coverage, fault = student.stroke_time(
                implement, rng, style, complexity=op.complexity)
            sim.log(EventKind.STROKE_START, agent=name, cell=op.cell,
                    color=op.color.name, layer=op.layer)
            yield from _sleep(sim, name, duration)
            canvas.paint(op.cell, op.color, agent=name, time=sim.now,
                         coverage=coverage)
            sim.log(EventKind.STROKE_END, agent=name, cell=op.cell,
                    color=op.color.name, layer=op.layer)
            if fault is not None:
                sim.log(EventKind.FAULT, agent=name,
                        resource=res.name, delay=fault)
                yield from _sleep(sim, name, fault)
            current = None
            if release_per_stroke:
                yield Release(res)
                held = None
        if held is not None:
            yield Release(held)
    except KillInterrupt:
        # Hand the in-flight stroke back so the recovery controller can
        # redistribute it, then let the kernel finalize the kill (it
        # releases whatever we hold).
        if current is not None:
            queue.appendleft(current)
        raise


class FaultInjector:
    """Compiles a :class:`FaultPlan` into kernel schedule entries and
    performs recovery the moment each fault fires.

    Construct it after the simulator and resources exist but before
    ``sim.run()``; call :meth:`install`, then register each worker with
    ``start_at=injector.start_delay(i)``.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        workers: List[str],
        queues: Dict[str, Deque],
        resources: Dict[Color, ResourceHandle],
        recovery: RecoveryConfig,
        accounting: FaultAccounting,
        dead_colors: Set[Color],
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.workers = workers
        self.queues = queues
        self.resources = resources
        self.recovery = recovery
        self.accounting = accounting
        self.dead_colors = dead_colors
        self._start_delays: Dict[int, float] = {}

    def _worker_name(self, index: int) -> str:
        if not 0 <= index < len(self.workers):
            raise FaultError(
                f"fault targets worker {index}, but the run has only "
                f"{len(self.workers)} active workers"
            )
        return self.workers[index]

    def install(self) -> None:
        """Validate the plan against this run and schedule every fault.

        Raises:
            FaultError: for worker indices outside the active worker
                list or colors the run has no implement for.
        """
        for f in self.plan.faults:
            if isinstance(f, StudentDropout):
                name = self._worker_name(f.worker)
                self.sim.schedule_call(f.at, self._fire_dropout, name)
            elif isinstance(f, ImplementFailure):
                if f.color not in self.resources:
                    raise FaultError(
                        f"implement failure for {f.color.name}, but the "
                        f"run only uses "
                        f"{sorted(c.name for c in self.resources)}"
                    )
                self.sim.schedule_call(f.at, self._fire_implement_failure,
                                       f.color)
            elif isinstance(f, TransientStall):
                name = self._worker_name(f.worker)
                self.sim.schedule_call(f.at, self._fire_stall, name,
                                       f.duration)
            elif isinstance(f, LateArrival):
                name = self._worker_name(f.worker)
                self._start_delays[f.worker] = f.delay
                self.accounting.faults_fired += 1
                self.accounting.late_arrivals += 1
                self.sim.log(EventKind.FAULT_INJECTED, agent=name,
                             fault=f.kind.value, delay=f.delay)

    def start_delay(self, worker_index: int) -> float:
        """Start offset for a worker (0.0 unless it arrives late)."""
        return self._start_delays.get(worker_index, 0.0)

    # -- fault callbacks (run at kernel level at the scheduled time) -------
    def _fire_dropout(self, name: str) -> None:
        sim = self.sim
        sim.log(EventKind.FAULT_INJECTED, agent=name,
                fault=StudentDropout.kind.value,
                policy=self.recovery.policy.value)
        self.accounting.faults_fired += 1
        self.accounting.dropouts += 1
        sim.interrupt(name, KillInterrupt("student dropout"))
        remaining = list(self.queues[name])
        self.queues[name].clear()
        if not remaining:
            return
        if self.recovery.reassigns_dropout_work:
            survivors = [w for w in self.workers
                         if w != name and not sim.is_finished(w)]
            if survivors:
                recipient = min(
                    survivors,
                    key=lambda w: (len(self.queues[w]),
                                   self.workers.index(w)),
                )
                self.queues[recipient].extend(remaining)
                sim.log(EventKind.OP_REASSIGNED, agent=recipient,
                        from_agent=name, n_ops=len(remaining))
                self.accounting.ops_reassigned += len(remaining)
                overhead = self.recovery.redistribute_overhead
                if overhead > 0:
                    if sim.observer is not None:
                        sim.observer.on_recovery(
                            "redistribute_pickup", sim.now,
                            sim.now + overhead, agent=recipient,
                            from_agent=name, n_ops=len(remaining))
                    sim.interrupt(recipient,
                                  StallInterrupt(overhead, reason="pickup"))
                    self.accounting.recovery_latencies.append(overhead)
                return
        # ABANDON, or nobody left standing to take the work.
        sim.log(EventKind.OP_ABANDONED, agent=name, n_ops=len(remaining),
                reason="dropout")
        self.accounting.ops_abandoned += len(remaining)

    def _fire_implement_failure(self, color: Color) -> None:
        sim = self.sim
        res = self.resources[color]
        if res.failed:
            # Already down (two failures of one color in a plan): no-op.
            sim.log(EventKind.NOTE, resource=res.name,
                    msg="implement already failed")
            return
        sim.log(EventKind.FAULT_INJECTED,
                fault=ImplementFailure.kind.value, resource=res.name,
                color=color.name, policy=self.recovery.policy.value)
        self.accounting.faults_fired += 1
        self.accounting.implement_failures += 1
        if self.recovery.repairs_implements:
            delay = self.recovery.spare_fetch_delay
            if sim.observer is not None:
                sim.observer.on_recovery(
                    "spare_fetch", sim.now, sim.now + delay,
                    resource=res.name, color=color.name)
            sim.fail_resource(res, repair_at=sim.now + delay)
            self.accounting.recovery_latencies.append(delay)
        else:
            # Permanent: queued waiters are notified now; mark the color
            # dead so nobody even tries again.
            self.dead_colors.add(color)
            sim.fail_resource(res)

    def _fire_stall(self, name: str, duration: float) -> None:
        sim = self.sim
        delivered = sim.interrupt(name, StallInterrupt(duration))
        sim.log(EventKind.FAULT_INJECTED, agent=name,
                fault=TransientStall.kind.value, duration=duration,
                delivered=delivered)
        if delivered:
            self.accounting.faults_fired += 1
            self.accounting.stalls += 1
