"""Declarative fault plans: what goes wrong, to whom, and when.

The paper's classroom mishaps, promoted to first-class simulation inputs:
a student gives up and leaves mid-scenario (:class:`StudentDropout`), a
marker dries out or a crayon snaps beyond repair
(:class:`ImplementFailure`), a student zones out for a stretch
(:class:`TransientStall`), or arrives after the scenario started
(:class:`LateArrival`).  A :class:`FaultPlan` is an immutable, validated
schedule of such faults; the injector compiles it into engine interrupts
and scheduled calls, so the same plan plus the same seed reproduces the
same run byte for byte.

Workers are addressed by *index* into the run's active worker list (0 is
the first colorer), keeping plans portable across teams and scenarios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..grid.palette import Color


class FaultError(Exception):
    """Raised for invalid fault plans (bad indices, negative times, ...)."""


class FaultKind(enum.Enum):
    """The vocabulary of injectable classroom faults."""

    STUDENT_DROPOUT = "student_dropout"
    IMPLEMENT_FAILURE = "implement_failure"
    TRANSIENT_STALL = "transient_stall"
    LATE_ARRIVAL = "late_arrival"


@dataclass(frozen=True)
class StudentDropout:
    """A worker leaves for good at time ``at`` (processor failure).

    What happens to their unfinished strokes is the recovery policy's
    call: lost (ABANDON) or reassigned (REDISTRIBUTE).
    """

    at: float
    worker: int

    kind = FaultKind.STUDENT_DROPOUT

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"dropout time must be >= 0, got {self.at}")
        if self.worker < 0:
            raise FaultError(f"worker index must be >= 0, got {self.worker}")


@dataclass(frozen=True)
class ImplementFailure:
    """The implement for ``color`` stops granting at time ``at``.

    Under SPARE_WITH_DELAY a replacement arrives after the configured
    fetch delay; under other policies the failure is permanent and ops
    needing that color are abandoned.
    """

    at: float
    color: Color

    kind = FaultKind.IMPLEMENT_FAILURE

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"failure time must be >= 0, got {self.at}")
        if not isinstance(self.color, Color) or self.color is Color.BLANK:
            raise FaultError(f"implement failure needs a real color, "
                             f"got {self.color!r}")


@dataclass(frozen=True)
class TransientStall:
    """Worker ``worker`` pauses for ``duration`` seconds at time ``at``
    (a distracted processor; work resumes afterwards)."""

    at: float
    worker: int
    duration: float

    kind = FaultKind.TRANSIENT_STALL

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"stall time must be >= 0, got {self.at}")
        if self.worker < 0:
            raise FaultError(f"worker index must be >= 0, got {self.worker}")
        if self.duration <= 0:
            raise FaultError(f"stall duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class LateArrival:
    """Worker ``worker`` only shows up ``delay`` seconds into the run."""

    worker: int
    delay: float

    kind = FaultKind.LATE_ARRIVAL

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise FaultError(f"worker index must be >= 0, got {self.worker}")
        if self.delay <= 0:
            raise FaultError(f"arrival delay must be > 0, got {self.delay}")


Fault = Union[StudentDropout, ImplementFailure, TransientStall, LateArrival]

_FAULT_TYPES: Tuple[type, ...] = (
    StudentDropout, ImplementFailure, TransientStall, LateArrival,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of faults for one run.

    Invariants enforced at construction: every entry is a known fault
    type, no worker drops out twice, and no worker arrives late twice
    (one body, one entrance).  A worker may both arrive late and later
    drop out — the classroom has seen worse.
    """

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, _FAULT_TYPES):
                raise FaultError(
                    f"unknown fault entry {f!r}; expected one of "
                    f"{[t.__name__ for t in _FAULT_TYPES]}"
                )
        for cls, what in ((StudentDropout, "drops out"),
                          (LateArrival, "arrives late")):
            seen: set = set()
            for f in self.faults:
                if isinstance(f, cls):
                    if f.worker in seen:
                        raise FaultError(
                            f"worker {f.worker} {what} more than once"
                        )
                    seen.add(f.worker)

    @classmethod
    def of(cls, faults: Iterable[Fault]) -> "FaultPlan":
        """Build a plan from any iterable of faults."""
        return cls(tuple(faults))

    @property
    def is_empty(self) -> bool:
        """A plan with nothing in it (runs must match fault-free runs)."""
        return not self.faults

    def count(self, kind: FaultKind) -> int:
        """How many faults of one kind the plan schedules."""
        return sum(1 for f in self.faults if f.kind is kind)

    def of_kind(self, kind: FaultKind) -> List[Fault]:
        """All faults of one kind, in plan order."""
        return [f for f in self.faults if f.kind is kind]

    def max_worker(self) -> int:
        """Largest worker index referenced (-1 when none are)."""
        return max((f.worker for f in self.faults if hasattr(f, "worker")),
                   default=-1)

    def colors(self) -> List[Color]:
        """Colors whose implements the plan fails, in plan order."""
        return [f.color for f in self.faults
                if isinstance(f, ImplementFailure)]

    def describe(self) -> str:
        """One line per fault, in plan order (for logs and CLI output)."""
        lines = []
        for f in self.faults:
            if isinstance(f, StudentDropout):
                lines.append(f"t={f.at:.1f}s worker {f.worker} drops out")
            elif isinstance(f, ImplementFailure):
                lines.append(f"t={f.at:.1f}s {f.color.name.lower()} "
                             "implement fails")
            elif isinstance(f, TransientStall):
                lines.append(f"t={f.at:.1f}s worker {f.worker} stalls "
                             f"for {f.duration:.1f}s")
            else:
                lines.append(f"worker {f.worker} arrives {f.delay:.1f}s late")
        return "\n".join(lines) if lines else "(no faults)"


def sample_plan(
    rng: np.random.Generator,
    *,
    n_workers: int,
    colors: Sequence[Color],
    horizon: float,
    n_dropouts: int = 1,
    n_implement_failures: int = 1,
    n_stalls: int = 1,
    n_late: int = 0,
    stall_duration: float = 15.0,
) -> FaultPlan:
    """Draw a representative random fault plan, reproducibly.

    Dropouts land in the busy middle of the run (20-60% of ``horizon``),
    implement failures early (10-40%, so the loss is felt), stalls
    anywhere in the first 70%, and late arrivals within the first 15%.
    At least one worker always survives: ``n_dropouts`` is clamped to
    ``n_workers - 1``.

    Args:
        rng: the randomness source; same state, same plan.
        n_workers: active workers in the target run.
        colors: colors the run uses (implement failure candidates).
        horizon: rough expected makespan used to place fault times.

    Raises:
        FaultError: when there are no workers, no colors to fail while
            implement failures were requested, or a non-positive horizon.
    """
    if n_workers < 1:
        raise FaultError(f"need at least one worker, got {n_workers}")
    if horizon <= 0:
        raise FaultError(f"horizon must be > 0, got {horizon}")
    if n_implement_failures > 0 and not colors:
        raise FaultError("implement failures requested but no colors given")
    faults: List[Fault] = []
    n_dropouts = min(n_dropouts, n_workers - 1)
    droppers = rng.choice(n_workers, size=n_dropouts, replace=False)
    for w in sorted(int(x) for x in droppers):
        faults.append(StudentDropout(
            at=float(rng.uniform(0.2, 0.6) * horizon), worker=w))
    for _ in range(n_implement_failures):
        color = colors[int(rng.integers(len(colors)))]
        faults.append(ImplementFailure(
            at=float(rng.uniform(0.1, 0.4) * horizon), color=color))
    for _ in range(n_stalls):
        faults.append(TransientStall(
            at=float(rng.uniform(0.0, 0.7) * horizon),
            worker=int(rng.integers(n_workers)),
            duration=float(stall_duration * rng.uniform(0.5, 1.5))))
    late = rng.choice(n_workers, size=min(n_late, n_workers), replace=False)
    for w in sorted(int(x) for x in late):
        faults.append(LateArrival(
            worker=w, delay=float(rng.uniform(0.03, 0.15) * horizon)))
    return FaultPlan(tuple(faults))
