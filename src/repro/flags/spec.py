"""Flag specifications as layered paint programs.

A :class:`FlagSpec` is an ordered list of :class:`Layer` objects, each of
which paints one region in one color.  Layers later in the list paint *over*
earlier ones — the painter's-algorithm technique the paper highlights for the
flag of Great Britain ("color the entire flag blue, then add the crossing
diagonal white lines, then the red lines").  The layer order therefore
encodes the dependency structure the Knox follow-up activity studies.

A layer may be marked ``optional_on_blank=True`` when the same visual result
is achievable by not painting at all (white stripes on white paper) — the
exact grading allowance of Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..grid.palette import Color
from ..grid.regions import Region


class FlagSpecError(Exception):
    """Raised for malformed flag specifications."""


@dataclass(frozen=True)
class Layer:
    """One painting pass: a named region filled with a single color.

    Attributes:
        name: stable identifier, unique within the spec (e.g. ``"red_stripe"``).
        color: the paint color for the layer.
        region: which cells the layer covers.
        optional_on_blank: True when skipping the layer leaves an acceptable
            result because the paper is already the layer's color (white on
            white).  Graders and dependency classifiers honor this.
    """

    name: str
    color: Color
    region: Region
    optional_on_blank: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise FlagSpecError("layer name must be non-empty")
        if self.color is Color.BLANK:
            raise FlagSpecError(f"layer {self.name!r} cannot paint BLANK")


@dataclass(frozen=True)
class FlagSpec:
    """A named flag: ordered layers plus a canonical grid size.

    ``default_rows``/``default_cols`` give the gridded-paper dimensions the
    activity used; all geometry is resolution-independent so any size works.
    """

    name: str
    layers: Tuple[Layer, ...]
    default_rows: int = 8
    default_cols: int = 12

    def __post_init__(self) -> None:
        if not self.layers:
            raise FlagSpecError(f"flag {self.name!r} has no layers")
        names = [l.name for l in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise FlagSpecError(f"duplicate layer names in {self.name!r}: {dupes}")
        if self.default_rows <= 0 or self.default_cols <= 0:
            raise FlagSpecError("default grid must be non-empty")

    @property
    def layer_names(self) -> Tuple[str, ...]:
        """Layer names in paint order."""
        return tuple(l.name for l in self.layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name.

        Raises:
            KeyError: if no layer has that name.
        """
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"flag {self.name!r} has no layer {name!r}")

    def colors_used(self) -> Tuple[Color, ...]:
        """Distinct colors across all layers, in first-use order."""
        seen: List[Color] = []
        for l in self.layers:
            if l.color not in seen:
                seen.append(l.color)
        return tuple(seen)

    def is_layered(self, rows: Optional[int] = None,
                   cols: Optional[int] = None) -> bool:
        """True when any later layer overpaints an earlier one.

        Single-layer-per-cell flags (Mauritius, France) can be colored in any
        order; layered flags (Great Britain, Jordan as specified with a full
        chevron) impose dependencies.
        """
        rows = rows or self.default_rows
        cols = cols or self.default_cols
        painted = np.zeros((rows, cols), dtype=bool)
        for l in self.layers:
            m = l.region.mask(rows, cols)
            if (painted & m).any():
                return True
            painted |= m
        return False

    def overlap_pairs(self, rows: Optional[int] = None,
                      cols: Optional[int] = None) -> List[Tuple[str, str]]:
        """Ordered (earlier, later) layer-name pairs whose regions overlap.

        These are exactly the direct paint-order dependencies: the later
        layer must wait for the earlier one wherever they share cells.
        """
        rows = rows or self.default_rows
        cols = cols or self.default_cols
        masks = [(l.name, l.region.mask(rows, cols)) for l in self.layers]
        out: List[Tuple[str, str]] = []
        for i, (ni, mi) in enumerate(masks):
            for nj, mj in masks[i + 1:]:
                if (mi & mj).any():
                    out.append((ni, nj))
        return out

    def final_image(self, rows: Optional[int] = None,
                    cols: Optional[int] = None) -> np.ndarray:
        """The finished flag as an int8 color-code array (painter's order)."""
        rows = rows or self.default_rows
        cols = cols or self.default_cols
        img = np.zeros((rows, cols), dtype=np.int8)
        for l in self.layers:
            img[l.region.mask(rows, cols)] = int(l.color)
        return img

    def visible_cells(self, layer_name: str, rows: Optional[int] = None,
                      cols: Optional[int] = None) -> np.ndarray:
        """Mask of cells where a layer remains visible in the final image
        (i.e. not overpainted by any later layer)."""
        rows = rows or self.default_rows
        cols = cols or self.default_cols
        idx = self.layer_names.index(layer_name)
        vis = self.layers[idx].region.mask(rows, cols).copy()
        for later in self.layers[idx + 1:]:
            vis &= ~later.region.mask(rows, cols)
        return vis

    def work_per_layer(self, rows: Optional[int] = None,
                       cols: Optional[int] = None) -> Dict[str, int]:
        """Cell count each layer paints (total strokes, including cells that
        will later be overpainted — that work still takes time)."""
        rows = rows or self.default_rows
        cols = cols or self.default_cols
        return {l.name: l.region.count(rows, cols) for l in self.layers}

    def total_work(self, rows: Optional[int] = None,
                   cols: Optional[int] = None) -> int:
        """Total strokes to paint the flag with the layered technique."""
        return sum(self.work_per_layer(rows, cols).values())


@dataclass(frozen=True)
class PaintOp:
    """A single compiled stroke: paint ``cell`` with ``color``.

    ``layer`` records provenance and ``seq`` the row-major order within the
    layer (the "number the cells" advice of Section IV).  ``complexity``
    multiplies the stroke's service time: boundary cells of intricate
    regions (the maple leaf's outline, the Jordan star) are slower to color
    carefully than interior or stripe cells.
    """

    cell: Tuple[int, int]
    color: Color
    layer: str
    seq: int
    complexity: float = 1.0


@dataclass(frozen=True)
class PaintProgram:
    """A fully compiled flag: every stroke, in legal paint order.

    Produced by :func:`repro.flags.compiler.compile_flag`.  Slicing a
    program among processors is the job of :mod:`repro.flags.decompose`.
    """

    flag: str
    rows: int
    cols: int
    ops: Tuple[PaintOp, ...]
    layer_order: Tuple[str, ...] = field(default=())

    @property
    def n_ops(self) -> int:
        """Total strokes in the program."""
        return len(self.ops)

    def ops_for_layer(self, layer: str) -> List[PaintOp]:
        """All strokes belonging to one layer, in sequence order."""
        return [op for op in self.ops if op.layer == layer]

    def ops_for_color(self, color: Color) -> List[PaintOp]:
        """All strokes using one color, in program order."""
        return [op for op in self.ops if op.color == color]
