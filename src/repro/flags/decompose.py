"""Task decomposition: splitting a paint program among P processors.

The four scenarios of the core activity (Fig 1) are specific decompositions
of the Mauritius program:

1. ``single()`` — one processor does everything.
2. ``by_color_groups(..., [[RED, BLUE], [YELLOW, GREEN]])`` — two
   processors, split by stripe color pairs.
3. ``by_layer(...)`` — four processors, one stripe each.
4. ``vertical_slices(..., 4)`` — four processors, one vertical slice each;
   every slice needs every color, creating implement contention.

The module also provides generic strategies (horizontal slices, 2-D blocks,
cyclic/round-robin) used in sweeps and ablations.  A decomposition is a
:class:`Partition`: an ordered stroke list per worker.  Decompositions
preserve the program's layer order *within* each worker's list, so replay
respects the painter's algorithm locally; cross-worker layer dependencies
are enforced by the scheduler (:mod:`repro.schedule.depsched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..grid.palette import Color
from .spec import PaintOp, PaintProgram


class DecompositionError(Exception):
    """Raised for invalid splits (zero workers, unknown layers, ...)."""


@dataclass(frozen=True)
class Partition:
    """An assignment of every stroke of a program to exactly one worker.

    Attributes:
        program: the program that was split.
        assignments: per-worker ordered stroke tuples; index = worker id.
        strategy: human-readable name of the decomposition used.
    """

    program: PaintProgram
    assignments: Tuple[Tuple[PaintOp, ...], ...]
    strategy: str

    def __post_init__(self) -> None:
        assigned = [op for ops in self.assignments for op in ops]
        if len(assigned) != self.program.n_ops:
            raise DecompositionError(
                f"partition covers {len(assigned)} ops, "
                f"program has {self.program.n_ops}"
            )
        if set(assigned) != set(self.program.ops):
            raise DecompositionError("partition is not a permutation of the program")

    @property
    def n_workers(self) -> int:
        """Number of processors the work is split across."""
        return len(self.assignments)

    def work_counts(self) -> List[int]:
        """Strokes per worker."""
        return [len(ops) for ops in self.assignments]

    def imbalance(self) -> float:
        """Load imbalance: max worker load / mean worker load (1.0 = perfect).

        Workers with no strokes still count toward the mean; an empty
        partition returns 1.0.
        """
        counts = self.work_counts()
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    def colors_per_worker(self) -> List[Tuple[Color, ...]]:
        """Distinct colors each worker needs, in first-use order.

        Scenario 3 gives each worker one color (no sharing); scenario 4
        gives every worker all four (maximal contention).
        """
        out: List[Tuple[Color, ...]] = []
        for ops in self.assignments:
            seen: List[Color] = []
            for op in ops:
                if op.color not in seen:
                    seen.append(op.color)
            out.append(tuple(seen))
        return out


def single(program: PaintProgram) -> Partition:
    """Scenario 1: the whole program on one processor, program order."""
    return Partition(program, (tuple(program.ops),), strategy="single")


def by_layer(program: PaintProgram,
             groups: Sequence[Sequence[str]] | None = None) -> Partition:
    """Assign whole layers to workers (scenario 3 when one stripe each).

    Args:
        groups: layer-name groups, one per worker.  Defaults to one worker
            per layer in program order.

    Raises:
        DecompositionError: if groups don't cover every layer exactly once.
    """
    if groups is None:
        groups = [[name] for name in program.layer_order]
    flat = [name for g in groups for name in g]
    if sorted(flat) != sorted(program.layer_order):
        raise DecompositionError(
            f"layer groups {flat} != program layers {list(program.layer_order)}"
        )
    by_name: Dict[str, List[PaintOp]] = {name: [] for name in program.layer_order}
    for op in program.ops:
        by_name[op.layer].append(op)
    assignments = []
    for g in groups:
        ops: List[PaintOp] = []
        # Keep the program's global layer order within the group so layered
        # flags replay correctly on a single worker.
        for name in program.layer_order:
            if name in g:
                ops.extend(by_name[name])
        assignments.append(tuple(ops))
    return Partition(program, tuple(assignments), strategy="by_layer")


def by_color_groups(program: PaintProgram,
                    color_groups: Sequence[Sequence[Color]]) -> Partition:
    """Assign strokes by color group (scenario 2: [[R, B], [Y, G]]).

    Raises:
        DecompositionError: if the groups don't cover the program's colors
            exactly once each.
    """
    flat = [c for g in color_groups for c in g]
    used = {op.color for op in program.ops}
    if len(set(flat)) != len(flat):
        raise DecompositionError("a color appears in more than one group")
    if set(flat) != used:
        raise DecompositionError(
            f"color groups {sorted(c.name for c in flat)} != "
            f"program colors {sorted(c.name for c in used)}"
        )
    assignments = []
    for g in color_groups:
        gs = set(g)
        assignments.append(tuple(op for op in program.ops if op.color in gs))
    return Partition(program, tuple(assignments), strategy="by_color_groups")


def _slice_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal [start, stop) index ranges covering ``total``."""
    if parts <= 0:
        raise DecompositionError(f"need at least one worker, got {parts}")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def vertical_slices(program: PaintProgram, n: int) -> Partition:
    """Scenario 4: contiguous vertical slices, one per worker.

    Each worker receives every stroke whose cell column falls in its slice,
    in the program's layer-then-row-major order, so each worker still
    paints top-to-bottom through the stripes — needing all four implements
    in sequence, the contention the paper engineers.
    """
    bounds = _slice_bounds(program.cols, n)
    assignments: List[Tuple[PaintOp, ...]] = []
    for lo, hi in bounds:
        assignments.append(tuple(
            op for op in program.ops if lo <= op.cell[1] < hi
        ))
    return Partition(program, tuple(assignments), strategy="vertical_slices")


def horizontal_slices(program: PaintProgram, n: int) -> Partition:
    """Contiguous horizontal slices, one per worker (row-range split)."""
    bounds = _slice_bounds(program.rows, n)
    assignments: List[Tuple[PaintOp, ...]] = []
    for lo, hi in bounds:
        assignments.append(tuple(
            op for op in program.ops if lo <= op.cell[0] < hi
        ))
    return Partition(program, tuple(assignments), strategy="horizontal_slices")


def blocks(program: PaintProgram, n_row_blocks: int, n_col_blocks: int) -> Partition:
    """2-D block decomposition: an ``n_row_blocks x n_col_blocks`` grid of
    workers, each owning one rectangular tile (row-major worker order)."""
    rb = _slice_bounds(program.rows, n_row_blocks)
    cb = _slice_bounds(program.cols, n_col_blocks)
    assignments: List[Tuple[PaintOp, ...]] = []
    for rlo, rhi in rb:
        for clo, chi in cb:
            assignments.append(tuple(
                op for op in program.ops
                if rlo <= op.cell[0] < rhi and clo <= op.cell[1] < chi
            ))
    return Partition(program, tuple(assignments), strategy="blocks")


def cyclic(program: PaintProgram, n: int) -> Partition:
    """Round-robin: stroke *i* goes to worker ``i % n`` in program order.

    The classic cyclic distribution: near-perfect static balance but the
    worst implement locality — adjacent strokes of one color land on
    different workers.
    """
    if n <= 0:
        raise DecompositionError(f"need at least one worker, got {n}")
    lists: List[List[PaintOp]] = [[] for _ in range(n)]
    for i, op in enumerate(program.ops):
        lists[i % n].append(op)
    return Partition(program, tuple(tuple(l) for l in lists), strategy="cyclic")


def scenario_partition(program: PaintProgram, scenario: int) -> Partition:
    """The paper's four core scenarios (Fig 1), generalized to any flag.

    Scenario 2 uses the paper's exact color pairs (red+blue /
    yellow+green) when the program is Mauritius-colored; for other flags
    the distinct colors are split into two near-equal groups in first-use
    order, preserving the "two students split the work by color" idea.

    Raises:
        DecompositionError: for scenarios outside 1-4, or a scenario-2
            request on a single-color flag (nothing to split by color).
    """
    if scenario == 1:
        return single(program)
    if scenario == 2:
        colors: List[Color] = []
        for op in program.ops:
            if op.color not in colors:
                colors.append(op.color)
        mauritius_pairs = [[Color.RED, Color.BLUE],
                           [Color.YELLOW, Color.GREEN]]
        if set(colors) == {c for g in mauritius_pairs for c in g}:
            return by_color_groups(program, mauritius_pairs)
        if len(colors) < 2:
            raise DecompositionError(
                "scenario 2 splits work by color; this flag has only "
                f"{len(colors)} color"
            )
        half = (len(colors) + 1) // 2
        return by_color_groups(program, [colors[:half], colors[half:]])
    if scenario == 3:
        return by_layer(program)
    if scenario == 4:
        return vertical_slices(program, 4)
    raise DecompositionError(f"scenario must be 1-4, got {scenario}")
