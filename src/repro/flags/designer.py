"""A fluent flag designer: build custom flags safely.

The discussion section imagines extending the activity ("more complex flag
designs"); this builder lets an instructor — or a student — compose a new
flag from stripes, rectangles, discs, triangles, polygons and bands, with
validation (full coverage, reachable colors, sensible layering) before it
becomes a :class:`FlagSpec` usable everywhere in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..grid.palette import Color
from ..grid.regions import (
    Band,
    Disc,
    FullGrid,
    Polygon,
    Rect,
    Region,
    Triangle,
    horizontal_stripe,
    vertical_stripe,
)
from .spec import FlagSpec, FlagSpecError, Layer


class DesignError(Exception):
    """Raised when a design cannot become a valid flag."""


@dataclass
class FlagDesigner:
    """Accumulates layers and validates them into a :class:`FlagSpec`.

    Methods return ``self`` for chaining::

        spec = (FlagDesigner("norway-ish", rows=12, cols=16)
                .background(Color.RED)
                .cross(Color.WHITE, width=0.3)
                .cross(Color.BLUE, width=0.15)
                .build())
    """

    name: str
    rows: int = 10
    cols: int = 15
    layers: List[Layer] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("flag needs a name")
        if self.rows <= 0 or self.cols <= 0:
            raise DesignError("grid must be non-empty")

    # -- layer builders ---------------------------------------------------
    def _add(self, name: str, color: Color, region: Region,
             optional_on_blank: bool = False) -> "FlagDesigner":
        if any(l.name == name for l in self.layers):
            raise DesignError(f"duplicate layer name {name!r}")
        self.layers.append(Layer(name, color, region,
                                 optional_on_blank=optional_on_blank))
        return self

    def background(self, color: Color) -> "FlagDesigner":
        """A full-field background layer (must be first if used)."""
        if self.layers:
            raise DesignError("background must be the first layer")
        return self._add("background", color, FullGrid(),
                         optional_on_blank=(color is Color.WHITE))

    def hstripes(self, colors: Sequence[Color]) -> "FlagDesigner":
        """Equal horizontal stripes, top to bottom."""
        if not colors:
            raise DesignError("need at least one stripe color")
        for i, c in enumerate(colors):
            self._add(f"hstripe{i}_{c.name.lower()}", c,
                      horizontal_stripe(i, len(colors)),
                      optional_on_blank=(c is Color.WHITE))
        return self

    def vstripes(self, colors: Sequence[Color]) -> "FlagDesigner":
        """Equal vertical stripes, left to right."""
        if not colors:
            raise DesignError("need at least one stripe color")
        for i, c in enumerate(colors):
            self._add(f"vstripe{i}_{c.name.lower()}", c,
                      vertical_stripe(i, len(colors)),
                      optional_on_blank=(c is Color.WHITE))
        return self

    def disc(self, color: Color, cy: float = 0.5, cx: float = 0.5,
             radius: float = 0.25, name: Optional[str] = None) -> "FlagDesigner":
        """A filled circle (e.g. the Japanese sun)."""
        return self._add(name or f"disc_{color.name.lower()}", color,
                         Disc(cy, cx, radius))

    def rect(self, color: Color, y0: float, x0: float, y1: float, x1: float,
             name: Optional[str] = None) -> "FlagDesigner":
        """An axis-aligned rectangle (cantons, bars)."""
        return self._add(name or f"rect_{color.name.lower()}", color,
                         Rect(y0, x0, y1, x1))

    def triangle(self, color: Color,
                 p1: Tuple[float, float], p2: Tuple[float, float],
                 p3: Tuple[float, float],
                 name: Optional[str] = None) -> "FlagDesigner":
        """A filled triangle (hoist chevrons)."""
        return self._add(name or f"triangle_{color.name.lower()}", color,
                         Triangle(p1, p2, p3))

    def polygon(self, color: Color,
                vertices: Sequence[Tuple[float, float]],
                name: Optional[str] = None) -> "FlagDesigner":
        """An arbitrary simple polygon (emblems)."""
        return self._add(name or f"polygon_{color.name.lower()}", color,
                         Polygon(tuple(vertices)))

    def cross(self, color: Color, width: float = 0.2,
              cy: float = 0.5, cx: float = 0.5,
              name: Optional[str] = None) -> "FlagDesigner":
        """A centered (or offset) cross of the given arm width."""
        if not 0 < width < 1:
            raise DesignError("cross width must be in (0, 1)")
        h = Rect(cy - width / 2, 0.0, cy + width / 2, 1.0)
        v = Rect(0.0, cx - width / 2, 1.0, cx + width / 2)
        return self._add(name or f"cross_{color.name.lower()}", color, h | v)

    def diagonal(self, color: Color, width: float = 0.15,
                 rising: bool = False,
                 name: Optional[str] = None) -> "FlagDesigner":
        """A corner-to-corner diagonal band."""
        band = (Band(1.0, -1.0, 0.0, width) if rising
                else Band(1.0, 1.0, 1.0, width))
        return self._add(
            name or f"diag_{color.name.lower()}{'_r' if rising else ''}",
            color, band,
        )

    # -- validation and build ---------------------------------------------
    def validate(self) -> List[str]:
        """Non-fatal design feedback (uncovered cells, invisible layers)."""
        notes: List[str] = []
        if not self.layers:
            return ["design has no layers"]
        covered = np.zeros((self.rows, self.cols), dtype=bool)
        for l in self.layers:
            covered |= l.region.mask(self.rows, self.cols)
        uncovered = int((~covered).sum())
        if uncovered:
            notes.append(
                f"{uncovered} cells stay blank paper; add a background "
                "or mark that intentional"
            )
        # A layer completely hidden by later layers is wasted work.
        try:
            spec = self._spec_unchecked()
        except FlagSpecError:
            return notes
        for l in self.layers:
            if not spec.visible_cells(l.name, self.rows, self.cols).any():
                notes.append(f"layer {l.name!r} is entirely overpainted")
        for l in self.layers:
            if l.region.is_empty(self.rows, self.cols):
                notes.append(
                    f"layer {l.name!r} covers no cells at {self.rows}x"
                    f"{self.cols}; too small for this grid?"
                )
        return notes

    def _spec_unchecked(self) -> FlagSpec:
        return FlagSpec(name=self.name, layers=tuple(self.layers),
                        default_rows=self.rows, default_cols=self.cols)

    def build(self, *, strict: bool = False) -> FlagSpec:
        """Produce the FlagSpec.

        Args:
            strict: raise if :meth:`validate` has any notes.

        Raises:
            DesignError: with the validation notes when strict and
                imperfect, or when the design has no layers.
        """
        if not self.layers:
            raise DesignError("design has no layers")
        notes = self.validate()
        if strict and notes:
            raise DesignError("; ".join(notes))
        return self._spec_unchecked()
