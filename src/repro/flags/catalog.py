"""The flag catalog: every flag the paper uses, plus extras for sweeps.

Paper flags:

- **Mauritius** (core activity, Fig 1): four equal horizontal stripes —
  red, blue, yellow, green — chosen because it subdivides naturally for 2
  and 4 processors.
- **France** (Webster variation): three equal vertical stripes.
- **Canada** (Webster variation, Fig 2): white field, red side bands, red
  maple leaf on a superimposed grid.
- **Great Britain** (Knox follow-up, Fig 3): the layered Union Jack used to
  introduce dependencies.
- **Jordan** (dependency-graph assessment, Fig 4): three stripes, red
  chevron, white star.

Extras (Germany, Italy, Poland, Japan, Seychelles-like diagonal) exist for
parameter sweeps and ablations: they span the complexity range from
trivially parallel to heavily layered.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..grid.palette import Color
from ..grid.regions import (
    Band,
    Disc,
    FullGrid,
    HalfPlane,
    Polygon,
    Rect,
    Triangle,
    horizontal_stripe,
    vertical_stripe,
)
from .spec import FlagSpec, Layer


def mauritius() -> FlagSpec:
    """The flag of Mauritius: 4 equal horizontal stripes (R, B, Y, G).

    One layer per stripe, no overlaps — embarrassingly parallel, which is
    exactly why the activity uses it.
    """
    names = ("red_stripe", "blue_stripe", "yellow_stripe", "green_stripe")
    colors = (Color.RED, Color.BLUE, Color.YELLOW, Color.GREEN)
    layers = tuple(
        Layer(name=n, color=c, region=horizontal_stripe(i, 4))
        for i, (n, c) in enumerate(zip(names, colors))
    )
    return FlagSpec(name="mauritius", layers=layers, default_rows=8, default_cols=12)


def france() -> FlagSpec:
    """The flag of France: 3 equal vertical stripes (blue, white, red).

    The white stripe is ``optional_on_blank`` since unpainted paper reads
    as white — the same allowance Section V-C grants for Jordan.
    """
    layers = (
        Layer("blue_stripe", Color.BLUE, vertical_stripe(0, 3)),
        Layer("white_stripe", Color.WHITE, vertical_stripe(1, 3),
              optional_on_blank=True),
        Layer("red_stripe", Color.RED, vertical_stripe(2, 3)),
    )
    return FlagSpec(name="france", layers=layers, default_rows=9, default_cols=12)


#: Stylized 15-vertex maple leaf in unit coordinates (y down, x right),
#: occupying roughly the middle of the center pale.  The outline follows the
#: iconic silhouette closely enough that students recognize it (Fig 2 shows a
#: leaf outline superimposed on the grid).
_MAPLE_LEAF_VERTICES: Tuple[Tuple[float, float], ...] = (
    (0.10, 0.500),   # top point
    (0.28, 0.440),   # upper-left notch
    (0.24, 0.395),
    (0.42, 0.330),   # left upper lobe tip
    (0.38, 0.300),
    (0.55, 0.290),   # left lobe outer tip
    (0.62, 0.420),   # left lower notch
    (0.70, 0.405),
    (0.78, 0.470),   # stem left
    (0.92, 0.500),   # stem bottom
    (0.78, 0.530),   # stem right
    (0.70, 0.595),
    (0.62, 0.580),   # right lower notch
    (0.55, 0.710),   # right lobe outer tip
    (0.38, 0.700),
    (0.42, 0.670),   # right upper lobe tip
    (0.24, 0.605),
    (0.28, 0.560),   # upper-right notch
)


def canada() -> FlagSpec:
    """The flag of Canada: white field, red pales, red maple leaf (Fig 2).

    The white field is explicit but ``optional_on_blank``; the leaf paints
    over the field, making this a *layered* flag whose irregular central
    feature breaks load balance — the Webster lesson.
    """
    layers = (
        Layer("white_field", Color.WHITE, Rect(0.0, 0.25, 1.0, 0.75),
              optional_on_blank=True),
        Layer("left_band", Color.RED, Rect(0.0, 0.0, 1.0, 0.25)),
        Layer("right_band", Color.RED, Rect(0.0, 0.75, 1.0, 1.0)),
        Layer("maple_leaf", Color.RED, Polygon(_MAPLE_LEAF_VERTICES)),
    )
    return FlagSpec(name="canada", layers=layers, default_rows=12, default_cols=24)


def great_britain() -> FlagSpec:
    """The Union Jack as a 5-layer paint program (Fig 3).

    Layer order encodes the technique the paper teaches: blue background
    first, then the white diagonals, then the red diagonals, then the white
    cross, finally the red cross.  Every later layer overpaints earlier
    ones, creating the dependency chain the Knox activity formalizes.
    """
    layers = (
        Layer("blue_background", Color.BLUE, FullGrid()),
        # Diagonals of the unit square; widths chosen so the red stroke
        # sits inside the white fimbriation at typical grid sizes.
        Layer("white_diagonals", Color.WHITE,
              Band(1.0, 1.0, 1.0, 0.30) | Band(1.0, -1.0, 0.0, 0.30)),
        Layer("red_diagonals", Color.RED,
              Band(1.0, 1.0, 1.0, 0.12) | Band(1.0, -1.0, 0.0, 0.12)),
        Layer("white_cross", Color.WHITE,
              Rect(0.0, 0.34, 1.0, 0.66) | Rect(0.34, 0.0, 0.66, 1.0)),
        Layer("red_cross", Color.RED,
              Rect(0.0, 0.42, 1.0, 0.58) | Rect(0.42, 0.0, 0.58, 1.0)),
    )
    return FlagSpec(name="great_britain", layers=layers,
                    default_rows=12, default_cols=18)


def jordan() -> FlagSpec:
    """The flag of Jordan (Fig 4): 3 stripes, red chevron, white star.

    The reference dependency graph (Fig 9) follows from this layer order:
    the stripes form the first layer and may be painted in parallel; the
    red triangle overlaps all three stripes; the white star sits on the
    triangle.  The white stripe is ``optional_on_blank`` (Section V-C
    grading rule), and in the paper's simplification the star is drawn as a
    white dot, hence the :class:`Disc` region.
    """
    chevron = Triangle((0.0, 0.0), (1.0, 0.0), (0.5, 0.42))
    layers = (
        Layer("black_stripe", Color.BLACK, horizontal_stripe(0, 3)),
        Layer("white_stripe", Color.WHITE, horizontal_stripe(1, 3),
              optional_on_blank=True),
        Layer("green_stripe", Color.GREEN, horizontal_stripe(2, 3)),
        Layer("red_triangle", Color.RED, chevron),
        Layer("white_star", Color.WHITE, Disc(0.5, 0.16, 0.09)),
    )
    return FlagSpec(name="jordan", layers=layers, default_rows=9, default_cols=18)


# ---------------------------------------------------------------------------
# Extra flags for sweeps and ablations
# ---------------------------------------------------------------------------

def germany() -> FlagSpec:
    """Germany: 3 equal horizontal stripes (black, red, yellow)."""
    layers = (
        Layer("black_stripe", Color.BLACK, horizontal_stripe(0, 3)),
        Layer("red_stripe", Color.RED, horizontal_stripe(1, 3)),
        Layer("yellow_stripe", Color.YELLOW, horizontal_stripe(2, 3)),
    )
    return FlagSpec(name="germany", layers=layers, default_rows=9, default_cols=15)


def italy() -> FlagSpec:
    """Italy: 3 equal vertical stripes (green, white, red)."""
    layers = (
        Layer("green_stripe", Color.GREEN, vertical_stripe(0, 3)),
        Layer("white_stripe", Color.WHITE, vertical_stripe(1, 3),
              optional_on_blank=True),
        Layer("red_stripe", Color.RED, vertical_stripe(2, 3)),
    )
    return FlagSpec(name="italy", layers=layers, default_rows=9, default_cols=12)


def poland() -> FlagSpec:
    """Poland: white over red halves."""
    layers = (
        Layer("white_half", Color.WHITE, horizontal_stripe(0, 2),
              optional_on_blank=True),
        Layer("red_half", Color.RED, horizontal_stripe(1, 2)),
    )
    return FlagSpec(name="poland", layers=layers, default_rows=8, default_cols=12)


def japan() -> FlagSpec:
    """Japan: white field with centered red disc — layered, tiny second layer.

    A useful extreme for load-balance sweeps: almost all work is in one
    layer, the disc is small but must overpaint the field.
    """
    layers = (
        Layer("white_field", Color.WHITE, FullGrid(), optional_on_blank=True),
        Layer("red_disc", Color.RED, Disc(0.5, 0.5, 0.3)),
    )
    return FlagSpec(name="japan", layers=layers, default_rows=10, default_cols=15)


def diagonal_bicolor() -> FlagSpec:
    """A synthetic diagonal bicolor (upper-left green, lower-right yellow).

    Exercises :class:`HalfPlane` decomposition, where stripe-based task
    splits produce imbalanced work — a controlled load-balance workload.
    """
    upper = HalfPlane(1.0, 1.0, 1.0)
    layers = (
        Layer("green_upper", Color.GREEN, upper),
        Layer("yellow_lower", Color.YELLOW, FullGrid() - upper),
    )
    return FlagSpec(name="diagonal_bicolor", layers=layers,
                    default_rows=10, default_cols=16)


_CATALOG = {
    "mauritius": mauritius,
    "france": france,
    "canada": canada,
    "great_britain": great_britain,
    "jordan": jordan,
    "germany": germany,
    "italy": italy,
    "poland": poland,
    "japan": japan,
    "diagonal_bicolor": diagonal_bicolor,
}


def get_flag(name: str) -> FlagSpec:
    """Look up a flag spec by name.

    Raises:
        KeyError: with the list of known flags when the name is unknown.
    """
    try:
        factory = _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown flag {name!r}; known flags: {sorted(_CATALOG)}"
        ) from None
    return factory()


def available_flags() -> Dict[str, str]:
    """Mapping of flag name to its one-line description."""
    return {name: (fn.__doc__ or "").strip().splitlines()[0]
            for name, fn in _CATALOG.items()}
