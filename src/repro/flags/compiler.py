"""Compile a :class:`FlagSpec` into a flat :class:`PaintProgram`.

The compiler lowers the layered region description into per-cell strokes in
a legal order (layers in spec order, cells row-major within a layer —
matching the numbered-cell instructions of Figure 1).  Two optimization
passes are available:

- **occlusion elimination** (``skip_occluded=True``): drop strokes that a
  later layer will overpaint anyway.  Students naturally discover this
  ("why color cells that the triangle will cover?"); it trades the simple
  layered technique for intersection tests, exactly the tension Section
  III-D describes.
- **blank elision** (``skip_optional_blank=True``): drop layers marked
  ``optional_on_blank`` (white on white paper), the Section V-C allowance.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..grid.canvas import Canvas
from ..grid.regions import iter_cells_rowmajor
from .spec import FlagSpec, PaintOp, PaintProgram


def compile_flag(
    spec: FlagSpec,
    rows: int | None = None,
    cols: int | None = None,
    *,
    skip_occluded: bool = False,
    skip_optional_blank: bool = False,
) -> PaintProgram:
    """Lower a flag spec to an ordered stroke list.

    Args:
        spec: the flag to compile.
        rows, cols: grid size (defaults to the spec's canonical size).
        skip_occluded: omit strokes later layers fully overpaint.
        skip_optional_blank: omit whole layers that may stay blank paper.

    Returns:
        A :class:`PaintProgram` whose ops, replayed in order on a blank
        canvas (with overpaint allowed), reproduce ``spec.final_image()``.
    """
    rows = rows or spec.default_rows
    cols = cols or spec.default_cols
    ops: List[PaintOp] = []
    layer_order: List[str] = []
    for layer in spec.layers:
        if skip_optional_blank and layer.optional_on_blank:
            continue
        layer_order.append(layer.name)
        if skip_occluded:
            mask = spec.visible_cells(layer.name, rows, cols)
        else:
            mask = layer.region.mask(rows, cols)
        boundary = layer.region.boundary_mask(rows, cols)
        intricacy = layer.region.intricacy()
        for seq, cell in enumerate(iter_cells_rowmajor(mask)):
            complexity = intricacy if boundary[cell] else 1.0
            ops.append(PaintOp(cell=cell, color=layer.color,
                               layer=layer.name, seq=seq,
                               complexity=complexity))
    return PaintProgram(flag=spec.name, rows=rows, cols=cols,
                        ops=tuple(ops), layer_order=tuple(layer_order))


def execute(program: PaintProgram, canvas: Canvas | None = None) -> Canvas:
    """Replay a compiled program stroke by stroke onto a canvas.

    This is the *sequential reference executor*: it ignores timing and
    agents and simply verifies that the program is executable (no paints on
    out-of-range cells, overpaint legality).  The simulation engine replays
    the same ops with timing, contention and agents.
    """
    if canvas is None:
        canvas = Canvas(program.rows, program.cols, allow_overpaint=True)
    for op in program.ops:
        canvas.paint(op.cell, op.color)
    return canvas


def care_mask(spec: FlagSpec, program: PaintProgram) -> np.ndarray:
    """Cells where a replay of ``program`` must match ``spec.final_image``.

    Cells visible only through optional-on-blank layers that the program
    elided are excluded: blank paper legitimately stands in for the
    missing white there (the Section V-C allowance).
    """
    rows, cols = program.rows, program.cols
    elided = [l for l in spec.layers
              if l.optional_on_blank and l.name not in program.layer_order]
    allowed_blank = np.zeros((rows, cols), dtype=bool)
    for l in elided:
        allowed_blank |= spec.visible_cells(l.name, rows, cols)
    return ~allowed_blank


def image_matches(codes: np.ndarray, spec: FlagSpec,
                  program: PaintProgram) -> bool:
    """Whether a painted color-code plane is an acceptable rendering of the
    spec, given which layers the program actually painted."""
    target = spec.final_image(program.rows, program.cols)
    care = care_mask(spec, program)
    return bool(np.array_equal(codes[care], target[care]))


def verify_program(program: PaintProgram, spec: FlagSpec) -> bool:
    """Check that replaying the program reproduces the spec's final image.

    The comparison ignores cells that belong only to elided optional-blank
    layers: a program compiled with ``skip_optional_blank`` is still
    correct because blank paper stands in for the missing white.
    """
    return image_matches(execute(program).codes, spec, program)


def program_stats(program: PaintProgram) -> dict:
    """Summary statistics: strokes per layer and per color, total strokes."""
    per_layer: dict = {}
    per_color: dict = {}
    for op in program.ops:
        per_layer[op.layer] = per_layer.get(op.layer, 0) + 1
        per_color[op.color.name.lower()] = per_color.get(op.color.name.lower(), 0) + 1
    return {
        "flag": program.flag,
        "rows": program.rows,
        "cols": program.cols,
        "total_ops": program.n_ops,
        "ops_per_layer": per_layer,
        "ops_per_color": per_color,
    }
