"""Automatic lesson extraction: what should the debrief discussion surface?

Section III-C lists the lessons the instructor should lead students toward.
Given a finished session (or a single team's results), these detectors
check the evidence for each lesson and produce :class:`Observation` records
with the supporting numbers — the machine equivalent of the instructor
scanning the whiteboard and saying "notice anything about scenarios 3 and
4?".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..metrics.contention import analyze_contention
from ..metrics.speedup import speedup
from ..metrics.warmup import estimate_warmup
from ..schedule.pipeline import pipeline_metrics
from ..schedule.runner import RunResult, marker_name
from .session import SessionReport


class Lesson(enum.Enum):
    """The discussable lessons of Section III-C."""

    SPEEDUP = "speedup"
    SUBLINEAR_SPEEDUP = "sublinear_speedup"
    WARMUP = "warmup"
    HARDWARE_DIFFERENCES = "hardware_differences"
    CONTENTION = "contention"
    PIPELINING = "pipelining"


#: One-line instructor framings per lesson — how the debrief opens the
#: topic before the evidence lands.  The tutor mode (``repro tutor``)
#: narrates live runs with these; :func:`discussion_script` and the
#: session reports stay evidence-first.
LESSON_INTROS: Dict[Lesson, str] = {
    Lesson.SPEEDUP: ("More hands make lighter work — watch how much "
                     "lighter, exactly."),
    Lesson.SUBLINEAR_SPEEDUP: ("Four workers never finish four times "
                               "faster; find where the time goes."),
    Lesson.WARMUP: ("Run it again: the second attempt is faster "
                    "because the team already knows the drill."),
    Lesson.HARDWARE_DIFFERENCES: ("Identical assignments, different "
                                  "finish times — hardware varies."),
    Lesson.CONTENTION: ("Two crayons, four workers: somebody is "
                        "always waiting."),
    Lesson.PIPELINING: ("Nobody can start until the stripe beside "
                        "them is underway — watch the start times "
                        "staircase."),
}


@dataclass(frozen=True)
class Observation:
    """One detected lesson with its evidence.

    Attributes:
        lesson: which lesson the evidence supports.
        detected: whether the run actually exhibits it.
        evidence: human-readable supporting numbers.
        value: the headline quantity (speedup, ratio, wait fraction, ...).
    """

    lesson: Lesson
    detected: bool
    evidence: str
    value: Optional[float] = None


def observe_speedup(results: Dict[str, RunResult]) -> List[Observation]:
    """Times should fall from scenario 1 through 3; speedup is sublinear."""
    out: List[Observation] = []
    needed = ("scenario1", "scenario2", "scenario3")
    if not all(k in results for k in needed):
        return out
    base_key = ("scenario1_repeat" if "scenario1_repeat" in results
                else "scenario1")
    t1 = results[base_key].measured_time
    t2 = results["scenario2"].measured_time
    t3 = results["scenario3"].measured_time
    falling = t1 > t2 > t3
    s3 = speedup(t1, t3)
    out.append(Observation(
        lesson=Lesson.SPEEDUP,
        detected=falling,
        evidence=(f"times {t1:.0f}s -> {t2:.0f}s -> {t3:.0f}s across "
                  f"scenarios 1-3; speedup(4 students) = {s3:.2f}"),
        value=s3,
    ))
    out.append(Observation(
        lesson=Lesson.SUBLINEAR_SPEEDUP,
        detected=s3 < 4.0,
        evidence=(f"4 students achieved {s3:.2f}x, below the linear bound "
                  f"of 4x"),
        value=s3,
    ))
    return out


def observe_warmup(results: Dict[str, RunResult]) -> List[Observation]:
    """The repeated first scenario should be markedly faster."""
    if "scenario1_repeat" not in results:
        return []
    t_first = results["scenario1"].measured_time
    t_repeat = results["scenario1_repeat"].measured_time
    est = estimate_warmup([t_first, t_repeat])
    return [Observation(
        lesson=Lesson.WARMUP,
        detected=est.warmup_ratio > 1.05,
        evidence=(f"first run {t_first:.0f}s vs repeat {t_repeat:.0f}s "
                  f"({est.improvement_percent:.0f}% faster — system warmup)"),
        value=est.warmup_ratio,
    )]


def observe_contention(results: Dict[str, RunResult]) -> List[Observation]:
    """Scenario 4 should be slower than 3, with measurable implement waits."""
    if "scenario3" not in results or "scenario4" not in results:
        return []
    r3, r4 = results["scenario3"], results["scenario4"]
    resource_names = sorted({
        str(e.data.get("resource"))
        for e in r4.trace.events if "resource" in e.data
    })
    report = analyze_contention(r4.trace, resource_names)
    slower = r4.measured_time > r3.measured_time
    return [Observation(
        lesson=Lesson.CONTENTION,
        detected=slower and report.contended,
        evidence=(f"scenario 4 took {r4.measured_time:.0f}s vs scenario 3's "
                  f"{r3.measured_time:.0f}s with the same 4 students; "
                  f"{report.wait_fraction * 100:.0f}% of work time was spent "
                  f"waiting for shared implements"),
        value=report.wait_fraction,
    )]


def observe_pipelining(results: Dict[str, RunResult]) -> List[Observation]:
    """Scenario 4's first strokes form a staircase: the pipeline filling."""
    if "scenario4" not in results:
        return []
    pm = pipeline_metrics(results["scenario4"].trace)
    starts = sorted(pm.first_stroke.values())
    staircase = len(starts) >= 3 and all(
        b - a > 0 for a, b in zip(starts, starts[1:])
    )
    return [Observation(
        lesson=Lesson.PIPELINING,
        detected=staircase,
        evidence=(f"workers' first strokes began at "
                  f"{', '.join(f'{s:.0f}s' for s in starts)} — "
                  f"the pipeline took {pm.fill_time:.0f}s to fill"),
        value=pm.fill_time,
    )]


def observe_hardware(report: SessionReport,
                     scenario: str = "scenario1") -> List[Observation]:
    """Teams with different implements should post different times."""
    groups = report.times_by_implement(scenario)
    if len(groups) < 2:
        return []
    medians = {impl: float(np.median(ts)) for impl, ts in groups.items()}
    ordered = sorted(medians.items(), key=lambda kv: kv[1])
    fastest, slowest = ordered[0], ordered[-1]
    ratio = slowest[1] / fastest[1] if fastest[1] > 0 else 1.0
    return [Observation(
        lesson=Lesson.HARDWARE_DIFFERENCES,
        detected=ratio > 1.15,
        evidence=(f"median {scenario} times by implement: "
                  + ", ".join(f"{k}={v:.0f}s" for k, v in ordered)
                  + f" — {slowest[0]} teams were {ratio:.1f}x slower than "
                  f"{fastest[0]} teams"),
        value=ratio,
    )]


def debrief_team(results: Dict[str, RunResult]) -> List[Observation]:
    """All lesson detectors applicable to a single team's results."""
    out: List[Observation] = []
    out.extend(observe_speedup(results))
    out.extend(observe_warmup(results))
    out.extend(observe_contention(results))
    out.extend(observe_pipelining(results))
    return out


#: Talking points per lesson: (prompt to the class, concept introduced).
_TALKING_POINTS: Dict[Lesson, tuple] = {
    Lesson.SPEEDUP: (
        "Look at the board - what happened to the times as we added "
        "people?",
        "speedup = T(1 student) / T(N students)",
    ),
    Lesson.SUBLINEAR_SPEEDUP: (
        "Four people didn't make it four times faster. What should the "
        "speedup 'ideally' be?",
        "linear speedup, and why real systems fall short of it",
    ),
    Lesson.WARMUP: (
        "Why was the second solo run so much faster than the first?",
        "system warmup: caching, power-saving modes, JIT compilation",
    ),
    Lesson.HARDWARE_DIFFERENCES: (
        "Some teams had daubers, some had crayons - is it fair to compare "
        "your times?",
        "technology differences: compare identical systems or whole "
        "systems, never mixed",
    ),
    Lesson.CONTENTION: (
        "Scenarios 3 and 4 both used four people. Why was 4 slower?",
        "contention: competition between processors for shared resources",
    ),
    Lesson.PIPELINING: (
        "In scenario 4, when did each of you get to start coloring?",
        "pipelining, and the time it takes a pipeline to fill",
    ),
}


def discussion_script(observations: List[Observation]) -> str:
    """Teaching notes for the post-activity debrief.

    For each *detected* lesson: the question to pose, the evidence from
    this very class to point at, and the concept to name — the structured
    version of "solicit their observations, then lead them to any of
    these ideas that the students miss" (Section III-C).
    """
    lines: List[str] = ["POST-ACTIVITY DISCUSSION GUIDE", ""]
    detected = [o for o in observations if o.detected]
    missed = [o for o in observations if not o.detected]
    for i, obs in enumerate(detected, start=1):
        prompt, concept = _TALKING_POINTS.get(
            obs.lesson, ("Discuss what you observed.", obs.lesson.value)
        )
        lines.append(f"{i}. {obs.lesson.value.replace('_', ' ').title()}")
        lines.append(f"   ask      : {prompt}")
        lines.append(f"   evidence : {obs.evidence}")
        lines.append(f"   introduce: {concept}")
        lines.append("")
    if missed:
        lines.append("not observed this session (skip or mention briefly): "
                     + ", ".join(o.lesson.value for o in missed))
    return "\n".join(lines).rstrip()


def debrief_session(report: SessionReport) -> List[Observation]:
    """Class-level debrief: median team plus cross-team hardware evidence.

    Per-lesson, an observation is 'detected' if a majority of teams
    exhibit it — one noisy team shouldn't flip the classroom discussion.
    """
    per_team = [debrief_team(t.results) for t in report.teams]
    out: List[Observation] = []
    lessons = {obs.lesson for obs_list in per_team for obs in obs_list}
    for lesson in sorted(lessons, key=lambda l: l.value):
        instances = [obs for obs_list in per_team for obs in obs_list
                     if obs.lesson == lesson]
        detected = sum(1 for o in instances if o.detected)
        majority = detected > len(instances) / 2
        values = [o.value for o in instances if o.value is not None]
        out.append(Observation(
            lesson=lesson,
            detected=majority,
            evidence=(f"{detected}/{len(instances)} teams exhibit it; "
                      f"median value "
                      f"{float(np.median(values)):.2f}" if values else
                      f"{detected}/{len(instances)} teams exhibit it"),
            value=float(np.median(values)) if values else None,
        ))
    out.extend(observe_hardware(report))
    return out
