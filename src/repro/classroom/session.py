"""Whole-classroom sessions: many teams, all scenarios, a public whiteboard.

This orchestrates what the instructor actually does: split the class into
teams, hand out implements (possibly different kinds per team), run every
scenario with all teams coloring simultaneously, collect each team's
stopwatch time after each scenario, and post the times publicly.  The
result object is the "whiteboard" the post-activity discussion works from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..agents.implements import ImplementModel
from ..agents.team import Team, make_team
from ..flags.catalog import mauritius
from ..flags.spec import FlagSpec
from ..metrics.speedup import ScenarioTimes, speedup, whiteboard
from ..schedule.runner import AcquirePolicy, RunResult
from ..schedule.scenario import run_core_activity
from .institution import InstitutionProfile


@dataclass
class StoredRun:
    """The durable slice of a :class:`~repro.schedule.runner.RunResult`.

    What a classroom session keeps after it is persisted to
    :mod:`repro.store` and loaded back: the whiteboard-facing metrics
    (times, worker count, correctness), not the event trace or canvas.
    Every :class:`SessionReport` aggregate — board, medians, speedups,
    correctness, per-implement grouping — works identically on these.
    """

    label: str
    strategy: str
    n_workers: int
    true_makespan: float
    measured_time: float
    correct: bool


@dataclass
class TeamRecord:
    """One team's complete activity outcome."""

    team_name: str
    implement: str
    results: Dict[str, RunResult]

    def times(self) -> ScenarioTimes:
        """The team's whiteboard row (measured stopwatch times)."""
        return ScenarioTimes(
            team=self.team_name,
            times={label: r.measured_time for label, r in self.results.items()},
        )


@dataclass
class SessionReport:
    """Everything a classroom session produced.

    Attributes:
        institution: which profile ran the session.
        flag: the flag that was colored.
        teams: per-team records in team order.
        board: scenario label -> list of measured times (the whiteboard).
    """

    institution: str
    flag: str
    teams: List[TeamRecord] = field(default_factory=list)

    @property
    def board(self) -> Dict[str, List[float]]:
        """The public whiteboard: all teams' times per scenario."""
        return whiteboard([t.times() for t in self.teams])

    def median_times(self) -> Dict[str, float]:
        """Class-median time per scenario."""
        return {
            label: float(np.median(ts)) for label, ts in self.board.items()
        }

    def median_speedups(self, baseline: str = "scenario1") -> Dict[str, float]:
        """Median speedup per scenario against the chosen baseline.

        Raises:
            ValueError: when ``baseline`` is not a label on this
                whiteboard (merged sessions and ``repeat_first``
                variants carry custom labels); the message names the
                labels that are available.
        """
        med = self.median_times()
        if baseline not in med:
            raise ValueError(
                f"baseline {baseline!r} is not on this whiteboard; "
                f"available labels: {sorted(med)}")
        t1 = med[baseline]
        return {label: speedup(t1, t) for label, t in med.items()}

    def all_correct(self) -> bool:
        """Did every team produce a correct flag in every scenario?"""
        return all(r.correct for t in self.teams for r in t.results.values())

    def times_by_implement(self, scenario: str = "scenario1") -> Dict[str, List[float]]:
        """Measured times of one scenario grouped by implement kind —
        the hardware-differences discussion data."""
        out: Dict[str, List[float]] = {}
        for t in self.teams:
            if scenario in t.results:
                out.setdefault(t.implement, []).append(
                    t.results[scenario].measured_time
                )
        return out

    def to_payload(self) -> Dict[str, object]:
        """A JSON-safe dict holding the session's durable slice.

        This is what :meth:`repro.store.ResultStore.put_session`
        persists: team names, implements, and each run's whiteboard
        metrics.  Round-trips through :meth:`from_payload` — the loaded
        report's board, medians, speedups, and correctness are equal to
        the original's.
        """
        return {
            "institution": self.institution,
            "flag": self.flag,
            "teams": [
                {
                    "team_name": t.team_name,
                    "implement": t.implement,
                    "runs": {
                        label: {
                            "label": r.label,
                            "strategy": r.strategy,
                            "n_workers": r.n_workers,
                            "true_makespan": r.true_makespan,
                            "measured_time": r.measured_time,
                            "correct": r.correct,
                        }
                        for label, r in t.results.items()
                    },
                }
                for t in self.teams
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SessionReport":
        """Rebuild a report from :meth:`to_payload` output.

        Runs come back as :class:`StoredRun` records (no traces or
        canvases — those are not persisted), which every whiteboard
        aggregate accepts interchangeably with live
        :class:`~repro.schedule.runner.RunResult` objects.
        """
        report = cls(institution=str(payload["institution"]),
                     flag=str(payload["flag"]))
        for team in payload["teams"]:  # type: ignore[union-attr]
            report.teams.append(TeamRecord(
                team_name=team["team_name"],
                implement=team["implement"],
                results={
                    label: StoredRun(
                        label=run["label"],
                        strategy=run["strategy"],
                        n_workers=int(run["n_workers"]),
                        true_makespan=float(run["true_makespan"]),
                        measured_time=float(run["measured_time"]),
                        correct=bool(run["correct"]),
                    )
                    for label, run in team["runs"].items()
                },
            ))
        return report


def run_session(
    profile: InstitutionProfile,
    seed: int,
    *,
    spec: Optional[FlagSpec] = None,
    n_teams: Optional[int] = None,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
) -> SessionReport:
    """Simulate one institution's full classroom session.

    Teams are assembled with the profile's team size and implement cycle;
    every team runs the complete core activity (with the profile's
    repeat-scenario-1 choice).  Deterministic given ``seed``.
    """
    spec = spec or mauritius()
    n_teams = n_teams or profile.n_teams
    report = SessionReport(institution=profile.name, flag=spec.name)
    colors = list(spec.colors_used())
    for ti in range(n_teams):
        rng = np.random.default_rng(seed * 10_007 + ti)
        implement = profile.implement_for_team(ti)
        team = make_team(
            f"{profile.name}.team{ti + 1}",
            profile.team_size,
            rng,
            colors=colors,
            implement=implement,
        )
        results = run_core_activity(
            spec, team, rng,
            repeat_first=profile.repeat_scenario1,
            policy=policy,
        )
        report.teams.append(TeamRecord(
            team_name=team.name,
            implement=implement.name,
            results=results,
        ))
    return report


def run_merging_session(
    profile: InstitutionProfile,
    seed: int,
    *,
    spec: Optional[FlagSpec] = None,
    n_pairs: Optional[int] = None,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
) -> SessionReport:
    """The paper's alternative organization: small teams that merge.

    "The students are split into ... teams of size 2-3 that will merge
    for the later scenarios": each pair of 2-student teams runs scenarios
    1 and 2 separately, then merges (pooling students *and* implements)
    for scenarios 3 and 4.  The merged teams' doubled implement counts
    measurably soften scenario-4 contention — a built-in ablation.

    Each merged team's record carries the scenario 1-2 times of its first
    constituent (the whiteboard still shows one row per final team).
    """
    from ..agents.team import merge_teams
    from ..schedule.scenario import core_scenarios, run_scenario

    spec = spec or mauritius()
    n_pairs = n_pairs if n_pairs is not None else max(1, profile.n_teams // 2)
    colors = list(spec.colors_used())
    scenarios = core_scenarios()
    report = SessionReport(institution=profile.name, flag=spec.name)

    for pi in range(n_pairs):
        rng = np.random.default_rng(seed * 20_011 + pi)
        implement = profile.implement_for_team(pi)
        half_a = make_team(f"{profile.name}.pair{pi + 1}a", 2, rng,
                           colors=colors, implement=implement)
        half_b = make_team(f"{profile.name}.pair{pi + 1}b", 2, rng,
                           colors=colors, implement=implement)
        results = {}
        # Scenarios 1 and 2 on the first small team.
        results["scenario1"] = run_scenario(scenarios[0], spec, half_a, rng,
                                            policy=policy)
        if profile.repeat_scenario1:
            r = run_scenario(scenarios[0], spec, half_a, rng, policy=policy)
            r.label = "scenario1_repeat"
            results["scenario1_repeat"] = r
        results["scenario2"] = run_scenario(scenarios[1], spec, half_a, rng,
                                            policy=policy)
        # Merge for scenarios 3 and 4: four colorers, pooled implements.
        merged = merge_teams(half_a, half_b)
        for s in scenarios[2:]:
            results[f"scenario{s.number}"] = run_scenario(
                s, spec, merged, rng, policy=policy
            )
        report.teams.append(TeamRecord(
            team_name=merged.name,
            implement=implement.name,
            results=results,
        ))
    return report


def run_all_institutions(seed: int = 0, *,
                         n_teams_cap: Optional[int] = 4) -> Dict[str, SessionReport]:
    """Run a session at every pilot site (capped team counts keep it quick).

    Returns reports keyed by institution abbreviation.
    """
    from .institution import all_institutions
    out: Dict[str, SessionReport] = {}
    for i, profile in enumerate(all_institutions()):
        n = profile.n_teams if n_teams_cap is None else min(profile.n_teams,
                                                            n_teams_cap)
        out[profile.name] = run_session(profile, seed + i, n_teams=n)
    return out
