"""Institution profiles: the six pilot sites and their variations.

Each institution ran the same core activity with local differences the
paper documents: Webster added the French/Canadian flag comparison and the
multimedia discussion; Knox preceded the activity with the programming
assignment and followed it with the dependency-graph exercise; teams got
whatever implements the site had (one site's crayons drew complaints).
A profile bundles those choices so a whole-classroom simulation can be
configured in one line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..agents.implements import (
    CRAYON,
    DAUBER,
    THICK_MARKER,
    THIN_MARKER,
    ImplementModel,
)


@dataclass(frozen=True)
class InstitutionProfile:
    """One pilot site's configuration.

    Attributes:
        name: the paper's abbreviation (HPU, USI, Knox, TNTech, Webster,
            Montclair).
        full_name: the institution's full name.
        class_size: approximate CS1 enrollment that participated.
        team_size: colorers per team (the timer is extra).
        implements: the implement kinds available, cycled across teams —
            giving teams *different* implements is the Section IV advice
            that surfaces the hardware lesson.
        repeat_scenario1: whether scenario 1 was run twice (warmup lesson).
        webster_variation: ran the French/Canadian flag comparison.
        knox_followup: ran the dependency-graph follow-up (and the survey's
            starred tie-in item).
        ran_prepost_quiz: administered the Figure 7 quiz.
    """

    name: str
    full_name: str
    class_size: int
    team_size: int = 4
    implements: Tuple[ImplementModel, ...] = (THICK_MARKER,)
    repeat_scenario1: bool = True
    webster_variation: bool = False
    knox_followup: bool = False
    ran_prepost_quiz: bool = False

    def implement_for_team(self, team_index: int) -> ImplementModel:
        """Which implement kind team ``team_index`` receives (cycled)."""
        return self.implements[team_index % len(self.implements)]

    @property
    def n_teams(self) -> int:
        """Teams of ``team_size`` colorers + 1 timer each."""
        return max(1, self.class_size // (self.team_size + 1))


#: The six pilot institutions.  Implement mixes are illustrative (the paper
#: reports using a variety "by default due to a lack of sufficient supplies
#: of a single type" and that one site's crayons drew complaints); the mix
#: below gives every site some variety and one site crayons.
INSTITUTIONS: Dict[str, InstitutionProfile] = {
    "HPU": InstitutionProfile(
        name="HPU", full_name="Hawaii Pacific University", class_size=12,
        implements=(THICK_MARKER, DAUBER), ran_prepost_quiz=True,
    ),
    "USI": InstitutionProfile(
        name="USI", full_name="University of Southern Indiana",
        class_size=20, implements=(THICK_MARKER, THIN_MARKER, DAUBER),
        ran_prepost_quiz=True,
    ),
    "Knox": InstitutionProfile(
        name="Knox", full_name="Knox College", class_size=65,
        implements=(THICK_MARKER, THIN_MARKER), knox_followup=True,
    ),
    "TNTech": InstitutionProfile(
        name="TNTech", full_name="Tennessee Tech University", class_size=90,
        implements=(CRAYON, THICK_MARKER), ran_prepost_quiz=True,
    ),
    "Webster": InstitutionProfile(
        name="Webster", full_name="Webster University", class_size=16,
        implements=(THICK_MARKER, DAUBER), webster_variation=True,
    ),
    "Montclair": InstitutionProfile(
        name="Montclair", full_name="Montclair State University",
        class_size=30, implements=(THIN_MARKER, THICK_MARKER),
    ),
}


def get_institution(name: str) -> InstitutionProfile:
    """Look up a profile by abbreviation.

    Raises:
        KeyError: listing the six sites when unknown.
    """
    try:
        return INSTITUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown institution {name!r}; valid: {sorted(INSTITUTIONS)}"
        ) from None


def all_institutions() -> List[InstitutionProfile]:
    """All six profiles in the tables' column order."""
    order = ("HPU", "Knox", "Montclair", "TNTech", "USI", "Webster")
    return [INSTITUTIONS[n] for n in order]
