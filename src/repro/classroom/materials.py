"""Classroom materials and the pre-class dry run (Section IV tooling).

Section IV's practical advice, automated:

- **scenario slides**: per-scenario SVG handouts with the task
  decomposition drawn and cells numbered in coloring order ("Number the
  cells to efficiently convey the order ... otherwise a tricky concept");
- **sample cells**: the properly-filled-cell examples (one per fill
  style) to show before the activity;
- **dry run**: a checklist simulation that catches dead markers, missing
  colors, oversized grids and over-long sessions before class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..agents.implements import ImplementModel
from ..agents.student import FillStyle, StudentProcessor, StudentProfile
from ..agents.team import ImplementKit
from ..flags.compiler import compile_flag
from ..flags.decompose import Partition, scenario_partition
from ..flags.spec import FlagSpec
from ..grid.render import to_svg


def scenario_slide(
    spec: FlagSpec,
    scenario: int,
    *,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
) -> str:
    """SVG for one scenario's instruction slide (the Figure 1 images).

    The flag is rendered with grid lines; each cell is numbered with its
    position in the owning worker's coloring order, and the worker index
    is encoded in the number's thousands digit (P1 cells are 1000+seq),
    matching the "P1 through P4 ... numbers indicating the execution
    order" convention of Figure 1.
    """
    program = compile_flag(spec, rows, cols)
    partition = scenario_partition(program, scenario)
    numbers = np.full((program.rows, program.cols), -1, dtype=int)
    for w, ops in enumerate(partition.assignments):
        for i, op in enumerate(ops):
            numbers[op.cell] = (w + 1) * 1000 + i
    return to_svg(spec.final_image(program.rows, program.cols),
                  numbers=numbers, grid_lines=True)


def sample_cells_svg() -> str:
    """A strip of three demonstration cells, one per fill style.

    The instructor's "examples of properly filled cells": full coverage,
    the recommended scribble, and the minimal dab, drawn as increasingly
    sparse hatch patterns.
    """
    cell = 60
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{3 * cell + 40}" '
        f'height="{cell + 30}">'
    ]
    styles = [(FillStyle.FULL, "full"), (FillStyle.SCRIBBLE, "scribble"),
              (FillStyle.MINIMAL, "minimal")]
    for i, (style, label) in enumerate(styles):
        x0 = 10 + i * (cell + 10)
        parts.append(
            f'<rect x="{x0}" y="10" width="{cell}" height="{cell}" '
            f'fill="white" stroke="#333"/>'
        )
        # Hatch density proportional to coverage.
        n_lines = max(1, int(style.coverage * 10))
        for k in range(n_lines):
            y = 10 + (k + 0.5) * cell / n_lines
            parts.append(
                f'<line x1="{x0 + 3}" y1="{y:.1f}" x2="{x0 + cell - 3}" '
                f'y2="{y:.1f}" stroke="#d22" stroke-width="3"/>'
            )
        parts.append(
            f'<text x="{x0 + cell / 2}" y="{cell + 25}" font-size="11" '
            f'text-anchor="middle">{label} ({style.coverage:.0%})</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


@dataclass
class DryRunReport:
    """Outcome of the instructor's pre-class dry run.

    ``ok`` is True when no blocking problem was found; ``warnings`` are
    non-blocking, ``problems`` must be fixed before class.
    """

    estimated_minutes: Dict[str, float] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No blocking problems found."""
        return not self.problems

    @property
    def total_minutes(self) -> float:
        """Estimated coloring time across all scenarios (excluding
        discussion and setup)."""
        return sum(self.estimated_minutes.values())


def dry_run(
    spec: FlagSpec,
    kit: ImplementKit,
    *,
    class_minutes: float = 50.0,
    scenarios: Optional[List[int]] = None,
    repeat_first: bool = True,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
) -> DryRunReport:
    """Validate the planned activity before class.

    Checks the kit covers the flag's colors, flags fault-prone implements
    (crayons), estimates per-scenario coloring time from the default
    student model, and warns when the plan exceeds the class period.
    """
    report = DryRunReport()
    scenarios = scenarios or [1, 2, 3, 4]

    # Kit coverage.
    needed = set(spec.colors_used())
    have = set(kit.per_color)
    missing = needed - have
    if missing:
        report.problems.append(
            "kit missing implements for: "
            + ", ".join(sorted(c.name.lower() for c in missing))
        )
    for color in needed & have:
        impl = kit.per_color[color]
        if impl.break_prob > 0.01:
            report.warnings.append(
                f"{impl.name} ({color.name.lower()}) is fault-prone "
                f"(breakage p={impl.break_prob}); expect complaints"
            )

    # Grid sanity.
    program = compile_flag(spec, rows, cols)
    if program.n_ops > 400:
        report.warnings.append(
            f"{program.n_ops} strokes per flag is a lot of coloring; "
            "consider a coarser grid"
        )

    if report.problems:
        return report

    # Time estimates with a median student on the kit's implements.
    student = StudentProcessor("dryrun", StudentProfile())
    per_scenario_workers = {1: 1, 2: 2, 3: 4, 4: 4}
    experience = 0
    for scn in scenarios:
        runs = 2 if (scn == 1 and repeat_first) else 1
        for r in range(runs):
            student.lifetime_cells = experience
            workers = per_scenario_workers.get(scn, 4)
            total = 0.0
            for op in program.ops:
                impl = kit.implement_for(op.color)
                total += (student.expected_cell_time(impl)
                          * op.complexity)
            # Static near-even split; scenario 4 pays a contention tax.
            est = total / workers
            if scn == 4:
                est *= 1.4
            key = f"scenario{scn}" + ("_repeat" if r else "")
            report.estimated_minutes[key] = est / 60.0
            experience += program.n_ops // workers

    if report.total_minutes > class_minutes * 0.6:
        report.warnings.append(
            f"estimated {report.total_minutes:.0f} min of coloring in a "
            f"{class_minutes:.0f} min period leaves little discussion time"
        )
    return report
