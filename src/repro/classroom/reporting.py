"""Instructor session reports: one markdown document per class session.

Bundles everything an instructor would file after running the activity:
the whiteboard, median speedups, per-implement comparisons, the detected
lessons with evidence, and the discussion guide — generated from a
:class:`SessionReport` so a simulated (or, with real data entered, an
actual) session becomes a shareable artifact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..metrics.speedup import speedup
from ..viz.tables import format_table
from .discussion import debrief_session, discussion_script
from .session import SessionReport


def session_markdown(report: SessionReport, *,
                     include_discussion_guide: bool = True) -> str:
    """Render a full session report as markdown.

    Sections: header, whiteboard (all teams), medians + speedups,
    implement comparison (when teams differed), detected lessons, and
    optionally the discussion guide.
    """
    lines: List[str] = [
        f"# Activity report — {report.institution}",
        "",
        f"Flag: **{report.flag}** · Teams: **{len(report.teams)}** · "
        f"All flags correct: "
        f"**{'yes' if report.all_correct() else 'NO'}**",
        "",
        "## Whiteboard (measured times, seconds)",
        "",
    ]

    scenario_labels = list(report.board)
    rows = []
    for t in report.teams:
        row: List[object] = [t.team_name, t.implement]
        for label in scenario_labels:
            r = t.results.get(label)
            row.append(None if r is None else round(r.measured_time))
        rows.append(row)
    lines.append(format_table(["team", "implement"] + scenario_labels,
                              rows, markdown=True))
    lines.append("")

    med = report.median_times()
    base_key = ("scenario1_repeat" if "scenario1_repeat" in med
                else "scenario1")
    lines.append("## Median times and speedups")
    lines.append("")
    sp_rows = []
    for label in scenario_labels:
        sp_rows.append([
            label,
            round(med[label]),
            f"{speedup(med[base_key], med[label]):.2f}x",
        ])
    lines.append(format_table(
        ["scenario", "median time (s)", f"speedup vs {base_key}"],
        sp_rows, markdown=True,
    ))
    lines.append("")

    by_impl = report.times_by_implement("scenario1")
    if len(by_impl) > 1:
        lines.append("## Hardware comparison (scenario 1 by implement)")
        lines.append("")
        impl_rows = [
            [impl, len(times), round(float(np.median(times)))]
            for impl, times in sorted(by_impl.items())
        ]
        lines.append(format_table(
            ["implement", "teams", "median time (s)"],
            impl_rows, markdown=True,
        ))
        lines.append("")

    observations = debrief_session(report)
    lines.append("## Lessons detected")
    lines.append("")
    for obs in observations:
        mark = "x" if obs.detected else " "
        lines.append(f"- [{mark}] **{obs.lesson.value}** — {obs.evidence}")
    lines.append("")

    if include_discussion_guide:
        lines.append("## Discussion guide")
        lines.append("")
        lines.append("```")
        lines.append(discussion_script(observations))
        lines.append("```")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def compare_sessions_markdown(reports: List[SessionReport]) -> str:
    """A cross-institution comparison table (median times + key ratios).

    The multi-site view of the paper's pilot: one row per institution with
    its scenario medians, warmup ratio and contention slowdown.
    """
    if not reports:
        raise ValueError("no session reports to compare")
    rows = []
    for rep in reports:
        med = rep.median_times()
        warm = (med["scenario1"] / med["scenario1_repeat"]
                if "scenario1_repeat" in med else None)
        cont = (med["scenario4"] / med["scenario3"]
                if "scenario3" in med and "scenario4" in med else None)
        rows.append([
            rep.institution,
            len(rep.teams),
            round(med.get("scenario1", float("nan"))),
            round(med.get("scenario3", float("nan"))),
            round(med.get("scenario4", float("nan"))),
            None if warm is None else f"{warm:.2f}x",
            None if cont is None else f"{cont:.2f}x",
        ])
    return format_table(
        ["site", "teams", "s1 (s)", "s3 (s)", "s4 (s)",
         "warmup", "s4/s3"],
        rows, markdown=True,
    )
