"""Classroom orchestration: institutions, sessions, and debrief analysis."""

from .institution import (
    INSTITUTIONS,
    InstitutionProfile,
    all_institutions,
    get_institution,
)
from .session import (
    SessionReport,
    StoredRun,
    TeamRecord,
    run_all_institutions,
    run_merging_session,
    run_session,
)
from .reporting import compare_sessions_markdown, session_markdown
from .materials import (
    DryRunReport,
    dry_run,
    sample_cells_svg,
    scenario_slide,
)
from .discussion import (
    LESSON_INTROS,
    Lesson,
    discussion_script,
    Observation,
    debrief_session,
    debrief_team,
    observe_contention,
    observe_hardware,
    observe_pipelining,
    observe_speedup,
    observe_warmup,
)

__all__ = [
    "INSTITUTIONS",
    "InstitutionProfile",
    "all_institutions",
    "get_institution",
    "SessionReport",
    "StoredRun",
    "TeamRecord",
    "run_all_institutions",
    "run_merging_session",
    "run_session",
    "LESSON_INTROS",
    "Lesson",
    "Observation",
    "debrief_session",
    "debrief_team",
    "discussion_script",
    "observe_contention",
    "observe_hardware",
    "observe_pipelining",
    "observe_speedup",
    "observe_warmup",
    "DryRunReport",
    "dry_run",
    "sample_cells_svg",
    "scenario_slide",
    "compare_sessions_markdown",
    "session_markdown",
]
