"""Strong and weak scaling experiments — the scalability quiz concept.

The pre/post test defines scalability as performance growing
proportionally with processors.  These helpers run the two standard
experiment shapes on any "time this configuration" callable:

- **strong scaling**: fixed flag, more students (the core activity's own
  sweep);
- **weak scaling**: grow the flag with the team — each student always owns
  the same number of cells (Gustafson's regime: a bigger flag in the same
  class period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .speedup import MetricError, efficiency, gustafson_speedup, speedup


@dataclass(frozen=True)
class ScalingPoint:
    """One sweep point: P processors, measured time, problem size."""

    p: int
    time: float
    size: int


@dataclass(frozen=True)
class ScalingCurve:
    """A full sweep with derived speedups/efficiencies.

    ``mode`` is "strong" (fixed size) or "weak" (size grows with P).
    """

    mode: str
    points: List[ScalingPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise MetricError("empty scaling curve")
        if self.points[0].p != 1:
            raise MetricError("scaling curves must start at P=1")

    @property
    def t1(self) -> float:
        """The P=1 reference time."""
        return self.points[0].time

    def speedups(self) -> Dict[int, float]:
        """Strong: T1/TP.  Weak: scaled speedup P * (T1 / TP)."""
        out: Dict[int, float] = {}
        for pt in self.points:
            if self.mode == "strong":
                out[pt.p] = speedup(self.t1, pt.time)
            else:
                # Weak scaling: if TP == T1 the system scaled perfectly,
                # achieving speedup P on the grown problem.
                out[pt.p] = pt.p * (self.t1 / pt.time)
        return out

    def efficiencies(self) -> Dict[int, float]:
        """Speedup / P per point."""
        return {p: s / p for p, s in self.speedups().items()}

    def scaled_time_ratio(self) -> Dict[int, float]:
        """Weak scaling's native metric: TP / T1 (1.0 = perfect)."""
        return {pt.p: pt.time / self.t1 for pt in self.points}


def strong_scaling(
    run: Callable[[int], float],
    processors: Sequence[int],
) -> ScalingCurve:
    """Sweep a fixed-size problem over processor counts.

    Args:
        run: maps P to a measured completion time.
        processors: counts to test; must include 1 first.
    """
    pts = [ScalingPoint(p=p, time=float(run(p)), size=-1)
           for p in processors]
    return ScalingCurve(mode="strong", points=pts)


def weak_scaling(
    run: Callable[[int, int], float],
    processors: Sequence[int],
    base_size: int,
) -> ScalingCurve:
    """Sweep with problem size proportional to P.

    Args:
        run: maps (P, size) to a measured completion time.
        processors: counts to test; must include 1 first.
        base_size: per-processor problem size (cells per student).
    """
    pts = [
        ScalingPoint(p=p, time=float(run(p, base_size * p)),
                     size=base_size * p)
        for p in processors
    ]
    return ScalingCurve(mode="weak", points=pts)


def fits_gustafson(curve: ScalingCurve, serial_fraction: float,
                   tolerance: float = 0.35) -> bool:
    """Whether a weak-scaling curve tracks Gustafson's law within
    a relative tolerance at every point.

    Raises:
        MetricError: when applied to a strong-scaling curve.
    """
    if curve.mode != "weak":
        raise MetricError("Gustafson check applies to weak scaling curves")
    speedups = curve.speedups()
    for p, s in speedups.items():
        want = gustafson_speedup(serial_fraction, p)
        if abs(s - want) > tolerance * want:
            return False
    return True
