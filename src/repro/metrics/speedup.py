"""Speedup and the classical scaling laws the activity introduces.

Section III-C: posting each scenario's completion times "naturally leads
into the concept of speedup and its calculation", and asking what the
speedup *should* be introduces linear speedup.  This module provides the
classroom definitions plus the standard extensions (efficiency, Amdahl,
Gustafson, Karp–Flatt) used in the follow-up discussion and the benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


class MetricError(Exception):
    """Raised on non-positive times or processor counts."""


def speedup(t_serial: float, t_parallel: float) -> float:
    """S = T(1) / T(P): the ratio the students compute off the whiteboard.

    Raises:
        MetricError: on non-positive inputs.
    """
    if t_serial <= 0 or t_parallel <= 0:
        raise MetricError(
            f"times must be positive: serial={t_serial}, parallel={t_parallel}"
        )
    return t_serial / t_parallel


def efficiency(t_serial: float, t_parallel: float, p: int) -> float:
    """E = S / P: fraction of linear speedup achieved."""
    if p <= 0:
        raise MetricError(f"processor count must be positive, got {p}")
    return speedup(t_serial, t_parallel) / p


def is_superlinear(t_serial: float, t_parallel: float, p: int,
                   tolerance: float = 0.0) -> bool:
    """Whether S exceeds P (in the classroom: someone probably mis-timed —
    or warmup contaminated the baseline)."""
    return speedup(t_serial, t_parallel) > p * (1.0 + tolerance)


def amdahl_speedup(serial_fraction: float, p: int) -> float:
    """Amdahl's law: S(P) = 1 / (f + (1 - f)/P).

    Raises:
        MetricError: if the serial fraction is outside [0, 1] or P <= 0.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise MetricError(f"serial fraction must be in [0,1], got {serial_fraction}")
    if p <= 0:
        raise MetricError(f"processor count must be positive, got {p}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def gustafson_speedup(serial_fraction: float, p: int) -> float:
    """Gustafson's law: S(P) = P - f * (P - 1) (scaled-problem speedup)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise MetricError(f"serial fraction must be in [0,1], got {serial_fraction}")
    if p <= 0:
        raise MetricError(f"processor count must be positive, got {p}")
    return p - serial_fraction * (p - 1)


def karp_flatt(t_serial: float, t_parallel: float, p: int) -> float:
    """The experimentally determined serial fraction e = (1/S - 1/P)/(1 - 1/P).

    Diagnoses whether poor scaling is inherent serialization (e constant in
    P) or overhead (e grows with P) — useful when sweeping team sizes.

    Raises:
        MetricError: for p < 2 (undefined).
    """
    if p < 2:
        raise MetricError("Karp-Flatt needs at least 2 processors")
    s = speedup(t_serial, t_parallel)
    return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)


@dataclass(frozen=True)
class ScenarioTimes:
    """A team's whiteboard row: measured time per scenario label."""

    team: str
    times: Dict[str, float]

    def speedup_table(self, baseline: str = "scenario1") -> Dict[str, float]:
        """Speedup of every scenario against the chosen baseline.

        Raises:
            MetricError: if the baseline label is missing.
        """
        if baseline not in self.times:
            raise MetricError(f"no time recorded for baseline {baseline!r}")
        t1 = self.times[baseline]
        return {label: speedup(t1, t) for label, t in self.times.items()}


def whiteboard(rows: Sequence[ScenarioTimes]) -> Dict[str, List[float]]:
    """Transpose team rows into per-scenario time lists — the instructor's
    public board of all groups' results."""
    out: Dict[str, List[float]] = {}
    for row in rows:
        for label, t in row.times.items():
            out.setdefault(label, []).append(t)
    return out
