"""Warmup-effect estimation: the repeated-scenario-1 lesson.

"If the first scenario was repeated a second time, the students are also
quick to observe that its completion times are significantly better than in
the first trial ... The instructor can then make an analogy to system
warmup" (caching, power-saving modes, JIT).  These helpers quantify the
effect across trials and fit the learning curve the student model uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .speedup import MetricError


@dataclass(frozen=True)
class WarmupEstimate:
    """Warmup statistics from a sequence of repeated-trial times.

    Attributes:
        first_time: trial 1 time.
        steady_time: mean of the final half of the trials.
        warmup_ratio: first / steady (> 1 means the first run was slower).
        improvement_percent: (1 - steady/first) * 100.
    """

    first_time: float
    steady_time: float
    warmup_ratio: float
    improvement_percent: float


def estimate_warmup(trial_times: Sequence[float]) -> WarmupEstimate:
    """Summarize the warmup effect over repeated identical trials.

    Raises:
        MetricError: with fewer than two trials or non-positive times.
    """
    if len(trial_times) < 2:
        raise MetricError("need at least two trials to estimate warmup")
    if any(t <= 0 for t in trial_times):
        raise MetricError(f"non-positive trial time in {list(trial_times)}")
    first = trial_times[0]
    tail = trial_times[len(trial_times) // 2:]
    steady = sum(tail) / len(tail)
    return WarmupEstimate(
        first_time=first,
        steady_time=steady,
        warmup_ratio=first / steady,
        improvement_percent=(1.0 - steady / first) * 100.0,
    )


def fit_exponential_decay(trial_times: Sequence[float]) -> Tuple[float, float, float]:
    """Fit ``t_k = steady * (1 + a * exp(-k / tau))`` to trial times.

    A small grid-plus-refinement fit (no scipy dependency needed): returns
    ``(steady, a, tau)``.  Used to recover the student model's warmup
    parameters from observed times — closing the loop between the model
    and what an instructor could measure.

    Raises:
        MetricError: with fewer than three trials.
    """
    n = len(trial_times)
    if n < 3:
        raise MetricError("need at least three trials to fit a decay")
    ts = list(trial_times)
    steady0 = min(ts[-max(1, n // 3):])

    def sse(steady: float, a: float, tau: float) -> float:
        return sum(
            (ts[k] - steady * (1.0 + a * math.exp(-k / tau))) ** 2
            for k in range(n)
        )

    best = (steady0, max(ts[0] / steady0 - 1.0, 1e-6), 1.0)
    best_err = float("inf")
    for steady in [steady0 * f for f in (0.85, 0.95, 1.0, 1.05)]:
        for a in [0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 2.0]:
            for tau in [0.3, 0.7, 1.0, 2.0, 4.0, 8.0]:
                err = sse(steady, a, tau)
                if err < best_err:
                    best_err = err
                    best = (steady, a, tau)
    # One refinement pass around the best grid point.
    s0, a0, t0 = best
    for steady in [s0 * f for f in (0.9, 0.95, 1.0, 1.05, 1.1)]:
        for a in [a0 * f for f in (0.5, 0.75, 1.0, 1.25, 1.5)]:
            for tau in [t0 * f for f in (0.5, 0.75, 1.0, 1.25, 1.5)]:
                err = sse(steady, a, tau)
                if err < best_err:
                    best_err = err
                    best = (steady, a, tau)
    return best


def warmup_contaminates_speedup(first_time: float, repeat_time: float,
                                parallel_time: float) -> Tuple[float, float]:
    """Speedup computed against the cold first run vs the warmed repeat.

    Returns ``(optimistic, honest)`` — using the cold run as baseline
    inflates the apparent speedup, one of the methodology lessons the
    instructor can draw out of the board numbers.
    """
    if min(first_time, repeat_time, parallel_time) <= 0:
        raise MetricError("times must be positive")
    return first_time / parallel_time, repeat_time / parallel_time
