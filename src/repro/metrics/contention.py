"""Contention metrics: the scenario-3-vs-4 lesson.

"When asked to explain the difference between the results for these
scenarios, the students were readily able to identify the conflict over
drawing implements as the main issue; everyone needed the same color at the
beginning and only one person at a time could use it."  These functions
quantify that conflict on simulation traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.trace import Trace
from .speedup import MetricError


@dataclass(frozen=True)
class ContentionReport:
    """Per-run contention summary.

    Attributes:
        wait_fraction: total waiting / (busy + waiting) across all agents.
        mean_wait: average duration of a non-zero wait.
        n_waits: how many times anyone queued (non-zero waits only).
        per_resource_utilization: implement name -> held fraction of makespan.
        per_agent_wait: agent -> total seconds queued.
    """

    wait_fraction: float
    mean_wait: float
    n_waits: int
    per_resource_utilization: Dict[str, float]
    per_agent_wait: Dict[str, float]

    @property
    def contended(self) -> bool:
        """A coarse flag: did sharing measurably slow anyone down?"""
        return self.wait_fraction > 0.01


def analyze_contention(trace: Trace, resources: List[str]) -> ContentionReport:
    """Extract the contention story from a finished run's trace."""
    waits = [w for w in trace.wait_intervals() if w.duration > 0]
    mean_wait = (sum(w.duration for w in waits) / len(waits)) if waits else 0.0
    per_agent: Dict[str, float] = {}
    for w in waits:
        per_agent[w.agent] = per_agent.get(w.agent, 0.0) + w.duration
    util = {r: trace.resource_utilization(r) for r in resources}
    return ContentionReport(
        wait_fraction=trace.total_wait_fraction(),
        mean_wait=mean_wait,
        n_waits=len(waits),
        per_resource_utilization=util,
        per_agent_wait=per_agent,
    )


def contention_slowdown(t_contended: float, t_uncontended: float) -> float:
    """How much slower the contended run was (>= 1.0 means slower).

    The scenario 4 vs scenario 3 ratio the class discusses.

    Raises:
        MetricError: on non-positive times.
    """
    if t_contended <= 0 or t_uncontended <= 0:
        raise MetricError("times must be positive")
    return t_contended / t_uncontended


def serialization_bound(n_workers: int, n_resources: int) -> float:
    """Upper bound on speedup when every stroke needs one of ``n_resources``
    exclusive implements: min(P, R).

    With four workers and one marker of the needed color at a time, at most
    ``n_resources`` cells are being colored simultaneously no matter how
    many students crowd around the paper — the "extra resources would
    reduce contention" discussion made quantitative.

    Raises:
        MetricError: on non-positive counts.
    """
    if n_workers <= 0 or n_resources <= 0:
        raise MetricError("worker and resource counts must be positive")
    return float(min(n_workers, n_resources))
