"""PDC metrics: speedup laws, load balance, contention, warmup, statistics."""

from .speedup import (
    MetricError,
    ScenarioTimes,
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    is_superlinear,
    karp_flatt,
    speedup,
    whiteboard,
)
from .loadbalance import (
    coefficient_of_variation,
    finish_time_spread,
    imbalance_percent,
    imbalance_ratio,
    makespan_vs_ideal,
    partition_stroke_imbalance,
    per_worker_report,
    trace_busy_imbalance,
)
from .contention import (
    ContentionReport,
    analyze_contention,
    contention_slowdown,
    serialization_bound,
)
from .warmup import (
    WarmupEstimate,
    estimate_warmup,
    fit_exponential_decay,
    warmup_contaminates_speedup,
)
from .quality import (
    QualityReport,
    drift_toward_minimal,
    grade_run,
    speed_quality_frontier,
)
from .scalability import (
    ScalingCurve,
    ScalingPoint,
    fits_gustafson,
    strong_scaling,
    weak_scaling,
)
from .resilience import (
    ResilienceReport,
    resilience_report,
    target_coverage,
)
from .stats import (
    bootstrap_ci,
    likert_distribution_for_median,
    likert_median,
    median,
    round_to_half,
    transition_fractions,
)

__all__ = [
    "MetricError",
    "ScenarioTimes",
    "amdahl_speedup",
    "efficiency",
    "gustafson_speedup",
    "is_superlinear",
    "karp_flatt",
    "speedup",
    "whiteboard",
    "coefficient_of_variation",
    "finish_time_spread",
    "imbalance_percent",
    "imbalance_ratio",
    "makespan_vs_ideal",
    "partition_stroke_imbalance",
    "per_worker_report",
    "trace_busy_imbalance",
    "ContentionReport",
    "analyze_contention",
    "contention_slowdown",
    "serialization_bound",
    "WarmupEstimate",
    "estimate_warmup",
    "fit_exponential_decay",
    "warmup_contaminates_speedup",
    "bootstrap_ci",
    "likert_distribution_for_median",
    "likert_median",
    "median",
    "round_to_half",
    "transition_fractions",
    "ScalingCurve",
    "ScalingPoint",
    "fits_gustafson",
    "strong_scaling",
    "weak_scaling",
    "QualityReport",
    "drift_toward_minimal",
    "grade_run",
    "speed_quality_frontier",
    "ResilienceReport",
    "resilience_report",
    "target_coverage",
]
