"""Load-balance metrics: the Webster lesson.

Coloring the French flag with 3 students splits perfectly; the Canadian
flag's maple leaf concentrates irregular work on whoever owns the middle —
"the intricate maple leaf slowed progress", enabling "a discussion of load
balancing and its effect on speedup".  These metrics quantify that on
traces and partitions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..flags.decompose import Partition
from ..sim.trace import Trace
from .speedup import MetricError


def imbalance_ratio(loads: Sequence[float]) -> float:
    """max / mean of per-worker loads; 1.0 is perfect balance.

    Raises:
        MetricError: on empty input or negative loads.
    """
    if not loads:
        raise MetricError("no loads given")
    if any(l < 0 for l in loads):
        raise MetricError(f"negative load in {list(loads)}")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean


def imbalance_percent(loads: Sequence[float]) -> float:
    """The common (max/mean - 1) * 100 formulation."""
    return (imbalance_ratio(loads) - 1.0) * 100.0


def coefficient_of_variation(loads: Sequence[float]) -> float:
    """std / mean of per-worker loads (population std)."""
    if not loads:
        raise MetricError("no loads given")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    var = sum((l - mean) ** 2 for l in loads) / len(loads)
    return (var ** 0.5) / mean


def partition_stroke_imbalance(partition: Partition) -> float:
    """Static imbalance of a decomposition, in stroke counts.

    This is the *predicted* imbalance before anyone picks up a marker;
    compare with :func:`trace_busy_imbalance` to see how much stochastic
    student speed adds.
    """
    return imbalance_ratio([float(c) for c in partition.work_counts()])


def trace_busy_imbalance(trace: Trace) -> float:
    """Observed imbalance of busy (stroke) time across agents in a run."""
    summaries = trace.summaries()
    if not summaries:
        raise MetricError("trace has no working agents")
    return imbalance_ratio([s.busy for s in summaries])


def finish_time_spread(trace: Trace) -> float:
    """Latest minus earliest agent finish — idle tail caused by imbalance."""
    summaries = trace.summaries()
    if not summaries:
        raise MetricError("trace has no working agents")
    finishes = [s.finish for s in summaries]
    return max(finishes) - min(finishes)


def makespan_vs_ideal(trace: Trace) -> float:
    """Observed makespan over the perfectly-balanced bound (sum busy / P).

    >= 1.0 by construction; the gap is imbalance + waiting + handoffs.
    """
    summaries = trace.summaries()
    if not summaries:
        raise MetricError("trace has no working agents")
    total_busy = sum(s.busy for s in summaries)
    ideal = total_busy / len(summaries)
    if ideal <= 0:
        raise MetricError("trace has zero busy time")
    return trace.makespan() / ideal


def per_worker_report(trace: Trace) -> List[Dict[str, float]]:
    """One row per agent: strokes, busy, waiting, idle, utilization."""
    return [
        {
            "agent": s.agent,  # type: ignore[dict-item]
            "strokes": float(s.strokes),
            "busy": s.busy,
            "waiting": s.waiting,
            "idle": s.idle,
            "utilization": s.utilization,
        }
        for s in trace.summaries()
    ]
