"""Small statistics toolkit: medians, bootstrap CIs, Likert aggregation.

The paper's quantitative results are medians of 5-point Likert items
(Tables I-III, Fig 6) and categorical transition fractions (Fig 8).  This
module provides the aggregation used to regenerate them, including the
half-point medians (4.5) that arise from even-sized response sets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .speedup import MetricError


def median(values: Sequence[float]) -> float:
    """Standard median (average of middle two for even counts).

    The paper's tables contain values like 4.5 — exactly this convention
    on Likert responses.

    Raises:
        MetricError: on empty input.
    """
    if not values:
        raise MetricError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=float)))


def likert_median(responses: Sequence[int]) -> float:
    """Median of 1-5 Likert responses, validated.

    Raises:
        MetricError: on responses outside 1..5 or empty input.
    """
    if not responses:
        raise MetricError("no responses")
    arr = np.asarray(responses)
    if arr.min() < 1 or arr.max() > 5:
        raise MetricError(f"Likert responses must be in 1..5: {sorted(set(arr.tolist()))}")
    return float(np.median(arr))


def round_to_half(x: float) -> float:
    """Round to the nearest 0.5 — the resolution of the published tables.

    Ties round half *away from zero* (2.25 -> 2.5, -2.25 -> -2.5), the
    convention the paper's tables use.  Python's builtin ``round`` uses
    banker's rounding (2.25 * 2 = 4.5 -> 4 -> 2.0), which would shift
    exact quarter-point medians down half a step.
    """
    doubled = x * 2.0
    return math.copysign(math.floor(abs(doubled) + 0.5), doubled) / 2.0


def bootstrap_ci(
    values: Sequence[float],
    stat=np.median,
    *,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for any statistic.

    Raises:
        MetricError: on empty input.
    """
    if not values:
        raise MetricError("bootstrap of empty sequence")
    rng = np.random.default_rng(seed)
    arr = np.asarray(values, dtype=float)
    boots = np.empty(n_boot)
    for i in range(n_boot):
        boots[i] = stat(rng.choice(arr, size=len(arr), replace=True))
    lo, hi = np.quantile(boots, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def likert_distribution_for_median(
    target_median: float,
    n: int,
    rng: np.random.Generator,
    *,
    spread: float = 0.8,
) -> List[int]:
    """Draw ``n`` Likert responses whose median lands on ``target_median``.

    Used to synthesize survey populations consistent with the published
    medians: responses are sampled around the target and then minimally
    adjusted (moving single responses one step at a time) until the sample
    median matches exactly.  Raises for unreachable targets (outside 1-5 or
    a half-point median with odd ``n``).
    """
    if not 1.0 <= target_median <= 5.0:
        raise MetricError(f"target median {target_median} outside Likert range")
    if (target_median * 2) % 1 != 0:
        raise MetricError(f"target median {target_median} not a multiple of 0.5")
    if target_median % 1 == 0.5 and n % 2 == 1:
        raise MetricError(
            f"half-point median {target_median} impossible with odd n={n}"
        )
    vals = np.clip(np.rint(rng.normal(target_median, spread, size=n)), 1, 5)
    vals = vals.astype(int).tolist()

    def med(v: List[int]) -> float:
        return float(np.median(v))

    # Nudge responses toward the target median until it matches exactly.
    for _ in range(20 * n):
        m = med(vals)
        if m == target_median:
            break
        if m < target_median:
            # Raise the smallest response below 5.
            idx = min((i for i, v in enumerate(vals) if v < 5),
                      key=lambda i: vals[i], default=None)
            if idx is None:
                raise MetricError("cannot reach target median (all 5s)")
            vals[idx] += 1
        else:
            idx = max((i for i, v in enumerate(vals) if v > 1),
                      key=lambda i: vals[i], default=None)
            if idx is None:
                raise MetricError("cannot reach target median (all 1s)")
            vals[idx] -= 1
    if med(vals) != target_median:
        raise MetricError(
            f"failed to hit median {target_median} with n={n}"
        )
    return vals


def transition_fractions(
    pre_correct: Sequence[bool], post_correct: Sequence[bool]
) -> Dict[str, float]:
    """The four-state pre/post analysis of Figure 8.

    Returns fractions over all students: ``retained`` (correct -> correct),
    ``gained`` (incorrect -> correct), ``lost`` (correct -> incorrect),
    ``never`` (incorrect -> incorrect).

    Raises:
        MetricError: on length mismatch or empty input.
    """
    if len(pre_correct) != len(post_correct):
        raise MetricError("pre/post length mismatch")
    n = len(pre_correct)
    if n == 0:
        raise MetricError("no students")
    counts = {"retained": 0, "gained": 0, "lost": 0, "never": 0}
    for pre, post in zip(pre_correct, post_correct):
        if pre and post:
            counts["retained"] += 1
        elif not pre and post:
            counts["gained"] += 1
        elif pre and not post:
            counts["lost"] += 1
        else:
            counts["never"] += 1
    return {k: v / n for k, v in counts.items()}
