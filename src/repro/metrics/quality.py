"""Coloring-quality metrics: the Section IV uniformity advice, measured.

The paper recommends a "back and forth scribble that touches all edges of
the cell ... faster than completely filling a cell while still making it
possible to achieve uniformity of time per cell", and notes the class
drifted toward minimal daubs as it got competitive.  These metrics grade a
finished run on exactly those dimensions:

- per-cell stroke-time uniformity (coefficient of variation),
- coverage quality (mean and minimum cell coverage),
- the speed-vs-quality frontier across fill styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..grid.canvas import Canvas
from ..sim.trace import Trace
from .speedup import MetricError


@dataclass(frozen=True)
class QualityReport:
    """How well (not just how fast) a flag got colored.

    Attributes:
        mean_coverage: average inked fraction over colored cells.
        min_coverage: the sparsest cell (a daubed corner reads as sloppy).
        stroke_time_cv: coefficient of variation of per-cell stroke times
            — the paper's "uniformity of time per cell".
        mean_stroke_time: average seconds per cell.
        cells: number of colored cells.
    """

    mean_coverage: float
    min_coverage: float
    stroke_time_cv: float
    mean_stroke_time: float
    cells: int

    @property
    def uniform(self) -> bool:
        """Coarse verdict: stroke times within ~50% relative spread."""
        return self.stroke_time_cv < 0.5


def grade_run(canvas: Canvas, trace: Trace) -> QualityReport:
    """Grade one finished run's canvas + trace.

    Raises:
        MetricError: when nothing was colored.
    """
    if canvas.n_colored() == 0:
        raise MetricError("nothing was colored")
    coverages = [s.coverage for s in canvas.history]
    durations = [iv.duration for iv in trace.stroke_intervals()]
    if not durations:
        raise MetricError("trace has no strokes")
    mean_t = float(np.mean(durations))
    cv = float(np.std(durations) / mean_t) if mean_t > 0 else 0.0
    return QualityReport(
        mean_coverage=float(np.mean(coverages)),
        min_coverage=float(np.min(coverages)),
        stroke_time_cv=cv,
        mean_stroke_time=mean_t,
        cells=canvas.n_colored(),
    )


def speed_quality_frontier(
    reports: Dict[str, QualityReport],
) -> List[str]:
    """Pareto-optimal styles: nothing else is both faster and better
    covered.  Input maps style name -> report; output is the frontier,
    fastest first.
    """
    items = sorted(reports.items(), key=lambda kv: kv[1].mean_stroke_time)
    frontier: List[str] = []
    best_cov = -1.0
    # Walk from fastest to slowest; keep styles that improve coverage.
    for name, rep in items:
        if rep.mean_coverage > best_cov:
            frontier.append(name)
            best_cov = rep.mean_coverage
    return frontier


def drift_toward_minimal(coverage_sequence: List[float],
                         *, window: int = 10) -> bool:
    """Detect the competitive drift: later cells get sparser coverage.

    Compares the first and last ``window`` strokes' mean coverage —
    "the class as a whole moved in the [minimal] direction during the
    course of the activity".

    Raises:
        MetricError: with fewer than 2*window strokes.
    """
    if len(coverage_sequence) < 2 * window:
        raise MetricError(
            f"need at least {2 * window} strokes, got {len(coverage_sequence)}"
        )
    first = float(np.mean(coverage_sequence[:window]))
    last = float(np.mean(coverage_sequence[-window:]))
    return last < first - 1e-9
