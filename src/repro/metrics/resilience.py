"""Resilience metrics: what a faulty run cost relative to a clean one.

The chaos debrief needs three numbers on the whiteboard next to the
speedup column: how much *longer* the team took (makespan inflation), how
much of the flag *never got colored* (coverage loss), and how quickly the
team absorbed each mishap (recovery latency).  This module computes them
by comparing a faulted :class:`~repro.schedule.runner.RunResult` against
its fault-free baseline — same seed, same partition, empty plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..grid.canvas import Canvas
from ..schedule.runner import RunResult
from .speedup import MetricError


def target_coverage(canvas: Canvas, target: np.ndarray) -> float:
    """Fraction of the target's non-blank cells the canvas got right.

    1.0 means a perfect flag; under ABANDON recovery this is exactly the
    surviving share of the work.  A target with no non-blank cells counts
    as fully covered.

    Raises:
        MetricError: on a target/canvas shape mismatch.
    """
    if target.shape != (canvas.rows, canvas.cols):
        raise MetricError(
            f"target shape {target.shape} does not match canvas "
            f"{canvas.rows}x{canvas.cols}"
        )
    care = target != 0
    n_care = int(care.sum())
    if n_care == 0:
        return 1.0
    return float((canvas.codes[care] == target[care]).sum() / n_care)


@dataclass(frozen=True)
class ResilienceReport:
    """The cost of a fault plan, relative to a fault-free baseline.

    Attributes:
        baseline_makespan / faulted_makespan: true simulated makespans.
        makespan_inflation: faulted / baseline (1.0 = no slowdown).
        baseline_coverage / faulted_coverage: target-cell coverage of
            each run's canvas.
        coverage_loss: baseline_coverage - faulted_coverage (0.0 when
            recovery preserved the whole flag).
        faults_fired: injected faults that actually took effect.
        ops_reassigned / ops_abandoned: recovery's work accounting.
        mean_recovery_latency / max_recovery_latency: seconds recovery
            actions took (spare fetches, redistribution pickups).
    """

    baseline_makespan: float
    faulted_makespan: float
    makespan_inflation: float
    baseline_coverage: float
    faulted_coverage: float
    coverage_loss: float
    faults_fired: int
    ops_reassigned: int
    ops_abandoned: int
    mean_recovery_latency: float
    max_recovery_latency: float

    def summary(self) -> Dict[str, float]:
        """Flat numbers for reports and JSON export."""
        return {
            "baseline_makespan": self.baseline_makespan,
            "faulted_makespan": self.faulted_makespan,
            "makespan_inflation": self.makespan_inflation,
            "baseline_coverage": self.baseline_coverage,
            "faulted_coverage": self.faulted_coverage,
            "coverage_loss": self.coverage_loss,
            "faults_fired": float(self.faults_fired),
            "ops_reassigned": float(self.ops_reassigned),
            "ops_abandoned": float(self.ops_abandoned),
            "mean_recovery_latency": self.mean_recovery_latency,
            "max_recovery_latency": self.max_recovery_latency,
        }


def resilience_report(
    baseline: RunResult,
    faulted: RunResult,
    target: Optional[np.ndarray] = None,
) -> ResilienceReport:
    """Compare a faulted run against its fault-free baseline.

    Args:
        baseline: the clean run (no plan, or an empty one).
        faulted: the same configuration run under an active fault plan.
        target: expected color-code image; defaults to the baseline's
            final canvas (which for a correct baseline is the flag).

    Raises:
        MetricError: when the baseline itself fired faults, or the
            baseline makespan is non-positive.
    """
    if baseline.faults is not None and baseline.faults.faults_fired:
        raise MetricError(
            "baseline run fired "
            f"{baseline.faults.faults_fired} faults; use a clean baseline"
        )
    if baseline.true_makespan <= 0:
        raise MetricError(
            f"baseline makespan must be > 0, got {baseline.true_makespan}"
        )
    if target is None:
        target = baseline.canvas.snapshot()
    base_cov = target_coverage(baseline.canvas, target)
    fault_cov = target_coverage(faulted.canvas, target)
    acct = faulted.faults
    return ResilienceReport(
        baseline_makespan=baseline.true_makespan,
        faulted_makespan=faulted.true_makespan,
        makespan_inflation=faulted.true_makespan / baseline.true_makespan,
        baseline_coverage=base_cov,
        faulted_coverage=fault_cov,
        coverage_loss=base_cov - fault_cov,
        faults_fired=acct.faults_fired if acct else 0,
        ops_reassigned=acct.ops_reassigned if acct else 0,
        ops_abandoned=acct.ops_abandoned if acct else 0,
        mean_recovery_latency=acct.mean_recovery_latency if acct else 0.0,
        max_recovery_latency=acct.max_recovery_latency if acct else 0.0,
    )
