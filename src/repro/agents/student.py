"""The student-as-processor service-time model.

A :class:`StudentProcessor` converts "color one cell" into a stochastic
duration.  The model captures every timing phenomenon the activity turns
into a lesson:

- **warmup / learning curve** — the first run of scenario 1 is slow because
  students are unfamiliar with the task; repeating it is markedly faster
  (the paper's system-warmup analogy: caching, power modes, JIT).  Modeled
  as a multiplicative penalty that decays exponentially with the number of
  cells the student has ever colored.
- **fill style** — Section IV: full coverage vs a scribble touching all
  edges vs a minimal dab.  Style trades time for coverage quality, and the
  class drifts toward minimal as it gets competitive.
- **implement hardware** — speed/variability/faults from
  :mod:`repro.agents.implements`.
- **fatigue** — a mild slowdown as a student's stroke count grows within a
  scenario (coloring is tedious).
- **stochastic variability** — lognormal noise; humans are not clocked.
- **handoff cost** — passing a marker to a neighbor takes time (scenario 4
  and the pipelined rotation).

All randomness flows through a ``numpy.random.Generator`` supplied by the
caller, keeping whole-classroom simulations reproducible from one seed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .implements import ImplementModel


class FillStyle(enum.Enum):
    """How thoroughly a student inks each cell (Section IV advice).

    Values are ``(time_factor, coverage)``: FULL is slow but complete,
    MINIMAL is fast but sparse, SCRIBBLE is the recommended middle road.
    """

    FULL = (1.6, 1.0)
    SCRIBBLE = (1.0, 0.7)
    MINIMAL = (0.45, 0.25)

    @property
    def time_factor(self) -> float:
        """Multiplier on per-cell service time."""
        return self.value[0]

    @property
    def coverage(self) -> float:
        """Fraction of the cell actually inked."""
        return self.value[1]


@dataclass
class StudentProfile:
    """Per-student constants (who the student *is*, not current state).

    Attributes:
        base_cell_time: seconds an experienced, unfatigued student needs per
            cell with a thick marker at SCRIBBLE style.
        sigma: lognormal sigma of the student's intrinsic variability.
        warmup_penalty: initial multiplicative slowdown (1.0 = none); a 0.8
            value means the very first cell takes ~1.8x base time.
        warmup_tau: cells of experience over which the penalty decays by e.
        fatigue_rate: fractional slowdown added per cell colored within one
            scenario (0.0005 -> +0.05% per cell; mild boredom, not a
            dominant effect).
        handoff_time: seconds to pass an implement to a teammate.
    """

    base_cell_time: float = 3.0
    sigma: float = 0.18
    warmup_penalty: float = 0.8
    warmup_tau: float = 25.0
    fatigue_rate: float = 0.0005
    handoff_time: float = 1.5

    def __post_init__(self) -> None:
        if self.base_cell_time <= 0:
            raise ValueError("base_cell_time must be positive")
        if self.sigma < 0 or self.warmup_penalty < 0:
            raise ValueError("sigma and warmup_penalty must be non-negative")
        if self.warmup_tau <= 0:
            raise ValueError("warmup_tau must be positive")
        if self.fatigue_rate < 0 or self.handoff_time < 0:
            raise ValueError("fatigue_rate and handoff_time must be non-negative")


@dataclass
class StudentProcessor:
    """One student acting as a processor, with persistent experience.

    Experience (``lifetime_cells``) persists across scenarios within a
    session, which is what makes scenario 1 repeated-run times drop and
    later scenarios benefit from practice — exactly the warmup discussion
    in Section III-C.
    """

    name: str
    profile: StudentProfile = field(default_factory=StudentProfile)
    lifetime_cells: int = 0
    scenario_cells: int = 0

    def begin_scenario(self) -> None:
        """Reset within-scenario fatigue (a short rest between scenarios)."""
        self.scenario_cells = 0

    def warmup_factor(self) -> float:
        """Current learning-curve multiplier (>= 1.0, decays to 1.0)."""
        p = self.profile
        return 1.0 + p.warmup_penalty * math.exp(
            -self.lifetime_cells / p.warmup_tau
        )

    def fatigue_factor(self) -> float:
        """Current within-scenario fatigue multiplier (>= 1.0)."""
        return 1.0 + self.profile.fatigue_rate * self.scenario_cells

    def expected_cell_time(self, implement: ImplementModel,
                           style: FillStyle = FillStyle.SCRIBBLE) -> float:
        """Mean per-cell time at the student's *current* experience level
        (excluding noise and faults)."""
        return (self.profile.base_cell_time
                * implement.speed_factor
                * style.time_factor
                * self.warmup_factor()
                * self.fatigue_factor())

    def stroke_time(
        self,
        implement: ImplementModel,
        rng: np.random.Generator,
        style: FillStyle = FillStyle.SCRIBBLE,
        complexity: float = 1.0,
    ) -> Tuple[float, float, Optional[float]]:
        """Sample one cell-coloring action and advance experience state.

        Args:
            complexity: per-cell difficulty multiplier from the paint
                program (intricate outlines take longer to color inside).

        Returns:
            ``(duration, coverage, fault_delay)`` — the stroke time in
            seconds, the coverage quality in (0, 1], and an extra repair
            delay if the implement faulted on this stroke (None otherwise).
        """
        if complexity < 1.0:
            raise ValueError(f"complexity must be >= 1.0, got {complexity}")
        mean = self.expected_cell_time(implement, style) * complexity
        sigma = math.hypot(self.profile.sigma, implement.variability)
        # Lognormal with the sampled mean equal to ``mean``.
        noise = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
        duration = mean * noise
        fault = implement.sample_fault(rng)
        self.lifetime_cells += 1
        self.scenario_cells += 1
        return duration, style.coverage, fault

    def handoff_time(self, rng: np.random.Generator) -> float:
        """Sample the time to pass an implement to a teammate."""
        base = self.profile.handoff_time
        if base == 0:
            return 0.0
        return float(base * rng.uniform(0.7, 1.3))


@dataclass(frozen=True)
class TimerStudent:
    """The teammate with the cellphone stopwatch.

    The times posted on the board are human measurements: a reaction delay
    at start and stop adds noise to the true makespan.  ``measure`` returns
    the time the timer *reports* for a true duration.
    """

    name: str
    reaction_sigma: float = 0.25

    def measure(self, true_duration: float, rng: np.random.Generator) -> float:
        """The stopwatch reading for a true duration (never negative)."""
        jitter = rng.normal(0.0, self.reaction_sigma) - rng.normal(
            0.0, self.reaction_sigma
        )
        return max(0.0, true_duration + jitter)


def sample_profile(rng: np.random.Generator,
                   *, base_mean: float = 3.0,
                   base_spread: float = 0.5) -> StudentProfile:
    """Draw a realistic random student profile.

    Students differ: per-cell base times vary around ``base_mean`` with
    truncation away from zero, warmup penalties vary, and so do handoff
    habits.
    """
    base = max(0.8, rng.normal(base_mean, base_spread))
    return StudentProfile(
        base_cell_time=float(base),
        sigma=float(rng.uniform(0.12, 0.25)),
        warmup_penalty=float(rng.uniform(0.5, 1.1)),
        warmup_tau=float(rng.uniform(18.0, 35.0)),
        fatigue_rate=float(rng.uniform(0.0002, 0.001)),
        handoff_time=float(rng.uniform(1.0, 2.2)),
    )
