"""Teams: the unit the activity organizes students into.

The paper splits the class into teams of ~5 (four colorers plus a timer) or
teams of 2-3 that merge for later scenarios.  A :class:`Team` owns its
students, its timer, and its implement kit (one implement per color unless
the ablation gives it duplicates), and hands the scenario runner everything
it needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..grid.palette import Color
from .implements import ImplementModel, THICK_MARKER
from .student import StudentProcessor, TimerStudent, sample_profile


class TeamError(Exception):
    """Raised for invalid team configurations."""


@dataclass
class ImplementKit:
    """The drawing implements a team was issued.

    ``per_color`` maps each color to the implement model used for it;
    ``copies`` is how many identical implements of each color the team has
    (1 in the core activity; >1 in the extra-resources ablation).
    """

    per_color: Dict[Color, ImplementModel]
    copies: int = 1

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise TeamError("a kit needs at least one implement per color")

    @classmethod
    def uniform(cls, colors: Sequence[Color],
                implement: ImplementModel = THICK_MARKER,
                copies: int = 1) -> "ImplementKit":
        """Every color gets the same kind of implement."""
        return cls({c: implement for c in colors}, copies=copies)

    def implement_for(self, color: Color) -> ImplementModel:
        """The implement model used for a color.

        Raises:
            TeamError: if the kit has no implement of that color.
        """
        try:
            return self.per_color[color]
        except KeyError:
            raise TeamError(
                f"kit has no {color.name} implement; "
                f"has {[c.name for c in self.per_color]}"
            ) from None

    @property
    def colors(self) -> List[Color]:
        """Colors the kit covers."""
        return list(self.per_color)


@dataclass
class Team:
    """A group of students plus their timer and implement kit."""

    name: str
    students: List[StudentProcessor]
    timer: TimerStudent
    kit: ImplementKit
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.students:
            raise TeamError(f"team {self.name!r} has no students")
        names = [s.name for s in self.students]
        if len(set(names)) != len(names):
            raise TeamError(f"duplicate student names in team {self.name!r}")

    @property
    def size(self) -> int:
        """Colorers only; the timer is extra (team of 5 = 4 + timer)."""
        return len(self.students)

    def colorers(self, n: int) -> List[StudentProcessor]:
        """The first ``n`` students, for scenarios using fewer processors.

        Raises:
            TeamError: if the team is too small.
        """
        if n > len(self.students):
            raise TeamError(
                f"team {self.name!r} has {len(self.students)} students, "
                f"scenario needs {n}"
            )
        return self.students[:n]

    def begin_scenario(self) -> None:
        """Reset per-scenario fatigue for every member."""
        for s in self.students:
            s.begin_scenario()


def merge_teams(a: Team, b: Team, *, name: Optional[str] = None) -> Team:
    """Merge two small teams into one, pooling students and implements.

    The paper's alternative organization: "teams of size 2-3 that will
    merge for the later scenarios".  The merged team keeps every student
    (names stay unique because they carry their original team prefix),
    team *a*'s timer, and a pooled kit: colors from both kits (*a* wins on
    conflicting implement kinds) with the duplicate counts added — two
    merged teams really do own two red markers, which measurably reduces
    scenario-4 contention.

    Raises:
        TeamError: if student names collide across the two teams.
    """
    names = [s.name for s in a.students] + [s.name for s in b.students]
    if len(set(names)) != len(names):
        raise TeamError("merged teams have colliding student names")
    per_color = dict(b.kit.per_color)
    per_color.update(a.kit.per_color)  # a's kinds win on conflicts
    kit = ImplementKit(per_color=per_color,
                       copies=a.kit.copies + b.kit.copies)
    return Team(
        name=name or f"{a.name}+{b.name}",
        students=list(a.students) + list(b.students),
        timer=a.timer,
        kit=kit,
        notes=a.notes + b.notes + [f"merged from {a.name} and {b.name}"],
    )


def make_team(
    name: str,
    n_students: int,
    rng: np.random.Generator,
    *,
    colors: Sequence[Color],
    implement: ImplementModel = THICK_MARKER,
    copies: int = 1,
    base_mean: float = 3.0,
    timer_sigma: float = 0.25,
    kit: Optional[ImplementKit] = None,
) -> Team:
    """Assemble a team with randomly drawn student profiles.

    Args:
        name: team label ("team1", ...).
        n_students: number of colorers (the timer is created in addition).
        rng: randomness source; drives profile sampling only.
        colors: the colors the flag needs (defines the kit).
        implement: implement model for every color (ignored when ``kit``
            is given).
        copies: identical implements per color (contention ablation).
        base_mean: mean per-cell base time across the class.
        timer_sigma: stopwatch reaction noise of the timer student.
        kit: fully custom kit, overriding ``implement``/``copies``.
    """
    if n_students < 1:
        raise TeamError("team needs at least one colorer")
    students = [
        StudentProcessor(name=f"{name}.P{i + 1}",
                         profile=sample_profile(rng, base_mean=base_mean))
        for i in range(n_students)
    ]
    timer = TimerStudent(name=f"{name}.timer", reaction_sigma=timer_sigma)
    if kit is None:
        kit = ImplementKit.uniform(colors, implement, copies=copies)
    return Team(name=name, students=students, timer=timer, kit=kit)
