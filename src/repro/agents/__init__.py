"""Processor models: implements (hardware), students (processors), teams."""

from .implements import (
    CRAYON,
    DAUBER,
    STANDARD_KIT,
    THICK_MARKER,
    THIN_MARKER,
    ImplementModel,
    expected_speed_order,
    get_implement,
)
from .student import (
    FillStyle,
    StudentProcessor,
    StudentProfile,
    TimerStudent,
    sample_profile,
)
from .team import ImplementKit, Team, TeamError, make_team, merge_teams

__all__ = [
    "CRAYON",
    "DAUBER",
    "STANDARD_KIT",
    "THICK_MARKER",
    "THIN_MARKER",
    "ImplementModel",
    "expected_speed_order",
    "get_implement",
    "FillStyle",
    "StudentProcessor",
    "StudentProfile",
    "TimerStudent",
    "sample_profile",
    "ImplementKit",
    "Team",
    "TeamError",
    "make_team",
    "merge_teams",
]
