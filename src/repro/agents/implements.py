"""Drawing-implement "hardware" models.

Section III-C/IV of the paper: *technology differences matter*.  In the
authors' experience daubers were the fastest, then thick markers, then thin
markers; crayons were slowest and drew complaints (and break).  Each
implement is a small hardware model: a speed factor applied to the student's
per-cell service time, a variability factor, and an optional fault model
(crayon breakage with a replacement delay).

The exact values are calibration constants, not measurements; what the
benchmarks rely on — and what the tests pin — is the *ordering* and the
rough ratios (a dauber roughly 3x a crayon per cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class ImplementModel:
    """One kind of drawing implement.

    Attributes:
        name: implement kind ("dauber", "thick_marker", ...).
        speed_factor: multiplier on the student's base per-cell time;
            smaller is faster.
        variability: extra lognormal sigma the implement adds to stroke
            times (cheap crayons are less consistent than daubers).
        break_prob: per-stroke probability of a fault (tip breaks, marker
            dries) requiring a repair delay.
        repair_time: seconds lost to one fault (peel the crayon, shake the
            marker, fetch a spare).
    """

    name: str
    speed_factor: float
    variability: float = 0.0
    break_prob: float = 0.0
    repair_time: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError(f"{self.name}: speed_factor must be positive")
        if not 0.0 <= self.break_prob < 1.0:
            raise ValueError(f"{self.name}: break_prob must be in [0, 1)")
        if self.variability < 0 or self.repair_time < 0:
            raise ValueError(f"{self.name}: negative variability/repair_time")

    def sample_fault(self, rng: np.random.Generator) -> Optional[float]:
        """Return a repair delay if this stroke faults, else None."""
        if self.break_prob > 0 and rng.random() < self.break_prob:
            return self.repair_time
        return None


#: The standard implement kit, ordered fastest to slowest — the ordering the
#: paper reports observing across institutions.
DAUBER = ImplementModel("dauber", speed_factor=0.55, variability=0.05)
THICK_MARKER = ImplementModel("thick_marker", speed_factor=1.00, variability=0.10)
THIN_MARKER = ImplementModel("thin_marker", speed_factor=1.45, variability=0.12)
CRAYON = ImplementModel("crayon", speed_factor=1.85, variability=0.22,
                        break_prob=0.02, repair_time=8.0)

STANDARD_KIT: Dict[str, ImplementModel] = {
    m.name: m for m in (DAUBER, THICK_MARKER, THIN_MARKER, CRAYON)
}


def get_implement(name: str) -> ImplementModel:
    """Look up a standard implement by name.

    Raises:
        KeyError: naming the known implements when the name is unknown.
    """
    try:
        return STANDARD_KIT[name]
    except KeyError:
        raise KeyError(
            f"unknown implement {name!r}; known: {sorted(STANDARD_KIT)}"
        ) from None


def expected_speed_order() -> list:
    """Implement names from fastest to slowest expected per-cell time."""
    return sorted(STANDARD_KIT, key=lambda n: STANDARD_KIT[n].speed_factor)
