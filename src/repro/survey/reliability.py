"""Instrument reliability statistics for the engagement survey.

The "more in-depth statistical analysis" the paper lists as future work:
internal-consistency checks (Cronbach's alpha per aspect), item-total
correlations, and inter-institution agreement — computable on any
:class:`~repro.survey.likert.ResponseSet` population, synthetic or real.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics.speedup import MetricError
from .aspect import Aspect, ITEMS, items_by_aspect
from .likert import ResponseSet


def _item_matrix(rs: ResponseSet, item_ids: Sequence[str]) -> np.ndarray:
    """Respondents x items matrix for items everyone answered.

    Raises:
        MetricError: when the items have differing respondent counts
            (can't align rows) or fewer than 2 respondents/items.
    """
    cols = []
    n = None
    for item_id in item_ids:
        answers = rs.responses.get(item_id)
        if not answers:
            continue
        if n is None:
            n = len(answers)
        if len(answers) != n:
            raise MetricError(
                f"item {item_id} has {len(answers)} responses, others {n}"
            )
        cols.append(answers)
    if not cols or n is None:
        raise MetricError("no administered items to analyze")
    if len(cols) < 2:
        raise MetricError("need at least two items for reliability stats")
    if n < 2:
        raise MetricError("need at least two respondents")
    return np.asarray(cols, dtype=float).T  # respondents x items


def cronbach_alpha(rs: ResponseSet, aspect: Optional[Aspect] = None) -> float:
    """Cronbach's alpha over an aspect's items (or the whole instrument).

    alpha = k/(k-1) * (1 - sum(item variances) / variance(total score)).

    Raises:
        MetricError: if the total score has zero variance (degenerate
            population) or items can't be aligned.
    """
    item_ids = [i.item_id for i in
                (items_by_aspect(aspect) if aspect else ITEMS)]
    x = _item_matrix(rs, item_ids)
    k = x.shape[1]
    item_vars = x.var(axis=0, ddof=1)
    total_var = x.sum(axis=1).var(ddof=1)
    if total_var == 0:
        raise MetricError("total score has zero variance")
    return float(k / (k - 1) * (1.0 - item_vars.sum() / total_var))


def item_total_correlations(rs: ResponseSet,
                            aspect: Optional[Aspect] = None) -> Dict[str, float]:
    """Corrected item-total correlation per item (item vs rest-score).

    Items with zero variance get correlation 0.0 (no discrimination).
    """
    item_ids = [i.item_id for i in
                (items_by_aspect(aspect) if aspect else ITEMS)]
    administered = [i for i in item_ids if rs.responses.get(i)]
    x = _item_matrix(rs, administered)
    out: Dict[str, float] = {}
    total = x.sum(axis=1)
    for j, item_id in enumerate(administered):
        rest = total - x[:, j]
        if x[:, j].std() == 0 or rest.std() == 0:
            out[item_id] = 0.0
        else:
            out[item_id] = float(np.corrcoef(x[:, j], rest)[0, 1])
    return out


def inter_institution_spread(
    response_sets: Dict[str, ResponseSet],
) -> Dict[str, float]:
    """Per-item range (max - min) of institutional medians.

    The "which questions divide the sites" view: 0.0 means every
    institution agreed (e.g. instructor preparedness), large values mark
    site-dependent experiences (e.g. understanding of loops, range 2.0).
    """
    out: Dict[str, float] = {}
    for item in ITEMS:
        medians = [
            rs.median(item.item_id) for rs in response_sets.values()
            if rs.median(item.item_id) is not None
        ]
        if len(medians) >= 2:
            out[item.item_id] = float(max(medians) - min(medians))
    return out
