"""Cross-institution survey analysis: the prose findings of Section V-A.

The paper's narrative around Tables I-III makes comparative claims —
"Students from USI and Webster reported the highest engagement levels",
"Knox consistently had lower engagement scores (~4.0)", "Montclair scoring
lower in stimulating interest", "HPU and TNTech show a lower perceived
learning of loops (3.0)".  This module computes those comparisons from
response sets so the claims can be regenerated (and asserted) rather than
quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .aspect import Aspect, ITEMS, items_by_aspect
from .likert import ResponseSet


@dataclass(frozen=True)
class InstitutionSummary:
    """One institution's aggregate survey position.

    ``aspect_medians`` pools all administered items per aspect;
    ``overall`` pools everything.
    """

    institution: str
    aspect_medians: Dict[Aspect, Optional[float]]
    overall: Optional[float]


def summarize(response_sets: Dict[str, ResponseSet]) -> List[InstitutionSummary]:
    """Aggregate every institution's responses by aspect."""
    out: List[InstitutionSummary] = []
    for inst, rs in response_sets.items():
        aspect_meds = {a: rs.aspect_median(a) for a in Aspect}
        pooled: List[int] = []
        for item in ITEMS:
            pooled.extend(rs.responses.get(item.item_id, []))
        overall = float(np.median(pooled)) if pooled else None
        out.append(InstitutionSummary(inst, aspect_meds, overall))
    return out


def rank_institutions(
    response_sets: Dict[str, ResponseSet],
    aspect: Optional[Aspect] = None,
) -> List[Tuple[str, float]]:
    """Institutions sorted by mean of per-item medians, highest first.

    The mean of item medians is how a reader scans Tables I-III ("mostly
    5.0"); Likert medians alone tie too easily to rank sites.
    Institutions that administered none of the aspect's items are omitted.
    """
    items = items_by_aspect(aspect) if aspect else list(ITEMS)
    ranked: List[Tuple[str, float]] = []
    for inst, rs in response_sets.items():
        medians = [m for item in items
                   if (m := rs.median(item.item_id)) is not None]
        if medians:
            ranked.append((inst, float(np.mean(medians))))
    ranked.sort(key=lambda kv: (-kv[1], kv[0]))
    return ranked


def highest_engagement(response_sets: Dict[str, ResponseSet],
                       top: int = 2) -> List[str]:
    """The institutions with the highest pooled engagement medians."""
    return [name for name, _ in
            rank_institutions(response_sets, Aspect.ENGAGEMENT)[:top]]


def consistently_low(
    response_sets: Dict[str, ResponseSet],
    *,
    threshold: float = 4.0,
) -> List[str]:
    """Institutions whose *every* administered item median is <= threshold.

    The paper's "Knox consistently had lower engagement scores (~4.0)"
    claim, generalized.
    """
    out: List[str] = []
    for inst, rs in response_sets.items():
        medians = [m for m in rs.medians().values() if m is not None]
        if medians and all(m <= threshold for m in medians):
            out.append(inst)
    return sorted(out)


def item_outliers(
    response_sets: Dict[str, ResponseSet],
    item_id: str,
    *,
    margin: float = 0.5,
) -> Dict[str, str]:
    """Which institutions sit notably above/below the item's cross-site
    median ("Montclair scoring lower in stimulating interest").

    Returns institution -> "high" | "low" for deviations > margin.
    """
    values = {
        inst: rs.median(item_id)
        for inst, rs in response_sets.items()
        if rs.median(item_id) is not None
    }
    if not values:
        return {}
    center = float(np.median(list(values.values())))
    out: Dict[str, str] = {}
    for inst, v in values.items():
        if v is not None and v >= center + margin:
            out[inst] = "high"
        elif v is not None and v <= center - margin:
            out[inst] = "low"
    return out


def struggling_concepts(
    response_sets: Dict[str, ResponseSet],
    *,
    threshold: float = 3.5,
) -> Dict[str, List[str]]:
    """Per understanding item, the institutions scoring at/below threshold
    ("HPU and TNTech show a lower perceived learning of loops (3.0)")."""
    out: Dict[str, List[str]] = {}
    for item in items_by_aspect(Aspect.UNDERSTANDING):
        low = sorted(
            inst for inst, rs in response_sets.items()
            if (m := rs.median(item.item_id)) is not None and m <= threshold
        )
        if low:
            out[item.item_id] = low
    return out
