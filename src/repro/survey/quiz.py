"""The pre/post test instrument (Figure 7): five questions, answer key.

Five multiple-choice / true-false items assessing task decomposition,
speedup, contention, scalability and pipelining — administered identically
before and after the activity at USI, TNTech and HPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class QuestionKind(enum.Enum):
    """Multiple choice or true/false."""

    MULTIPLE_CHOICE = "multiple_choice"
    TRUE_FALSE = "true_false"


@dataclass(frozen=True)
class QuizQuestion:
    """One quiz item.

    Attributes:
        concept: the PDC concept the item probes (Figure 8's row key).
        prompt: the question stem.
        kind: MC or T/F.
        options: answer texts, in the lettered order (a, b, c, d).
        correct: 0-based index of the right answer.
    """

    concept: str
    prompt: str
    kind: QuestionKind
    options: Tuple[str, ...]
    correct: int

    def __post_init__(self) -> None:
        if not 0 <= self.correct < len(self.options):
            raise ValueError(
                f"{self.concept}: correct index {self.correct} out of range"
            )

    def is_correct(self, answer: int) -> bool:
        """Grade one 0-based answer index.

        Raises:
            ValueError: for out-of-range answers.
        """
        if not 0 <= answer < len(self.options):
            raise ValueError(
                f"{self.concept}: answer {answer} out of range "
                f"0..{len(self.options) - 1}"
            )
        return answer == self.correct


QUESTIONS: Tuple[QuizQuestion, ...] = (
    QuizQuestion(
        concept="task_decomposition",
        prompt="Which of the following best describes task decomposition?",
        kind=QuestionKind.MULTIPLE_CHOICE,
        options=(
            "The process of breaking down a large task into smaller, "
            "independent tasks that can be executed concurrently.",
            "The method of organizing tasks in a sequential manner.",
            "The technique of reducing the number of tasks to improve "
            "performance.",
            "The strategy of assigning tasks to a single processor.",
        ),
        correct=0,
    ),
    QuizQuestion(
        concept="speedup",
        prompt=("Speedup is defined as the ratio of the time taken to solve "
                "a problem on a single processor to the time taken on a "
                "parallel system."),
        kind=QuestionKind.TRUE_FALSE,
        options=("True", "False"),
        correct=0,
    ),
    QuizQuestion(
        concept="contention",
        prompt="What is contention in parallel computing?",
        kind=QuestionKind.MULTIPLE_CHOICE,
        options=(
            "The process of dividing a task into smaller subtasks.",
            "The competition between multiple processors for shared "
            "resources.",
            "The increase in computational speed by adding more processors.",
            "The ability of a system to handle a growing amount of work.",
        ),
        correct=1,
    ),
    QuizQuestion(
        concept="scalability",
        prompt=("Scalability refers to the ability of a parallel system to "
                "increase its performance proportionally with the addition "
                "of more processors."),
        kind=QuestionKind.TRUE_FALSE,
        options=("True", "False"),
        correct=0,
    ),
    QuizQuestion(
        concept="pipelining",
        prompt="What is pipelining in the context of parallel computing?",
        kind=QuestionKind.MULTIPLE_CHOICE,
        options=(
            "The process of executing multiple tasks simultaneously.",
            "The technique of overlapping the execution of multiple "
            "instructions to improve performance.",
            "The method of dividing a task into smaller subtasks.",
            "The strategy of reducing contention among processors.",
        ),
        correct=1,
    ),
)

#: concept -> question, for Figure 8's per-concept analysis.
BY_CONCEPT: Dict[str, QuizQuestion] = {q.concept: q for q in QUESTIONS}


def get_question(concept: str) -> QuizQuestion:
    """Look up the quiz item for a concept.

    Raises:
        KeyError: listing the five concepts when unknown.
    """
    try:
        return BY_CONCEPT[concept]
    except KeyError:
        raise KeyError(
            f"unknown concept {concept!r}; valid: {sorted(BY_CONCEPT)}"
        ) from None


def grade(answers: Dict[str, int]) -> Dict[str, bool]:
    """Grade a full quiz: concept -> answer index in, concept -> correct out.

    Missing concepts are graded as incorrect (blank answer).
    """
    out: Dict[str, bool] = {}
    for q in QUESTIONS:
        if q.concept in answers:
            out[q.concept] = q.is_correct(answers[q.concept])
        else:
            out[q.concept] = False
    return out


def score(answers: Dict[str, int]) -> int:
    """Number of correct answers (0-5)."""
    return sum(grade(answers).values())
