"""Likert response containers: per-institution response matrices.

A :class:`ResponseSet` holds one institution's answers to the engagement
survey — respondents x items — and computes the per-item medians the
paper's Tables I-III report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..metrics.stats import likert_median
from .aspect import ITEMS, SCALE_MAX, SCALE_MIN, SurveyItem, get_item


class SurveyError(Exception):
    """Raised for invalid responses or malformed response sets."""


@dataclass
class ResponseSet:
    """All collected responses for one institution.

    ``responses`` maps item_id -> list of 1-5 answers.  Items an
    institution did not administer (the tables' NA cells) are simply
    absent.  Respondent counts may differ across items (skipped answers).
    """

    institution: str
    responses: Dict[str, List[int]] = field(default_factory=dict)

    def add(self, item_id: str, answer: int) -> None:
        """Record one answer.

        Raises:
            SurveyError: for unknown items or out-of-scale answers.
        """
        get_item(item_id)  # raises KeyError for unknown items
        if not SCALE_MIN <= answer <= SCALE_MAX:
            raise SurveyError(
                f"answer {answer} outside Likert scale "
                f"{SCALE_MIN}..{SCALE_MAX}"
            )
        self.responses.setdefault(item_id, []).append(int(answer))

    def add_many(self, item_id: str, answers: Sequence[int]) -> None:
        """Record a batch of answers to one item."""
        for a in answers:
            self.add(item_id, a)

    def n_respondents(self, item_id: str) -> int:
        """How many answered one item (0 if not administered)."""
        return len(self.responses.get(item_id, []))

    def administered(self, item_id: str) -> bool:
        """Whether the institution asked this question at all."""
        return item_id in self.responses

    def median(self, item_id: str) -> Optional[float]:
        """The published statistic: the item's median (None when NA)."""
        answers = self.responses.get(item_id)
        if not answers:
            return None
        return likert_median(answers)

    def medians(self) -> Dict[str, Optional[float]]:
        """Median per instrument item (None for items not administered)."""
        return {item.item_id: self.median(item.item_id) for item in ITEMS}

    def aspect_median(self, aspect) -> Optional[float]:
        """Pooled median across all administered items of one aspect."""
        pooled: List[int] = []
        for item in ITEMS:
            if item.aspect == aspect:
                pooled.extend(self.responses.get(item.item_id, []))
        if not pooled:
            return None
        return likert_median(pooled)
