"""Open-ended feedback: theme coding and a synthetic comment corpus.

The survey's two open questions asked for the most interesting thing
learned and for suggested improvements.  The paper summarizes recurring
themes (diminishing returns, contention, hands-on visualization, better
crayons, clearer instructions, ...).  This module provides:

- a keyword-based :func:`code_comment` theme coder (the qualitative-coding
  step, automated),
- a template-based comment generator whose output expresses known themes,
  so the coder can be round-trip tested, and
- :func:`theme_frequencies` to tabulate a coded corpus.
"""

from __future__ import annotations

import enum
import re
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np


class Question(enum.Enum):
    """The two open-ended survey prompts."""

    MOST_INTERESTING = "most_interesting"
    IMPROVEMENTS = "improvements"


class Theme(enum.Enum):
    """Recurring themes the paper's summary identifies."""

    # Most-interesting themes (Section V-A-1).
    PARALLEL_UNDERSTANDING = "parallel_understanding"
    DIMINISHING_RETURNS = "diminishing_returns"
    CONTENTION = "contention"
    HANDS_ON = "hands_on"
    WORKLOAD_DISTRIBUTION = "workload_distribution"
    SYNCHRONIZATION = "synchronization"
    PLANNING_COMPLEXITY = "planning_complexity"
    ALREADY_KNEW = "already_knew"
    TEAMWORK_ANALOGY = "teamwork_analogy"
    # Improvement themes (Section V-A-2).
    BETTER_TOOLS = "better_tools"
    MORE_PROBLEM_SOLVING = "more_problem_solving"
    SHORTER = "shorter"
    CLEARER_INSTRUCTIONS = "clearer_instructions"
    VOCABULARY = "vocabulary"
    LARGER_PAPER = "larger_paper"
    COMPETITION = "competition"
    NO_CHANGE = "no_change"


#: keyword patterns per theme (case-insensitive, word-ish matching).
_THEME_PATTERNS: Dict[Theme, Tuple[str, ...]] = {
    Theme.PARALLEL_UNDERSTANDING: (
        r"how parallel (computing|processing) (works|operates)",
        r"understand.*parallel", r"multiple (cores|processors) work",
    ),
    Theme.DIMINISHING_RETURNS: (
        r"diminish", r"more processors.*not always", r"not always faster",
        r"too many (people|processors)", r"slow(ed|s)? (us|things)? ?down",
    ),
    Theme.CONTENTION: (
        r"contention", r"(shar|wait).*(marker|crayon|implement|resource)",
        r"fight.*over", r"same colou?r at the same time",
    ),
    Theme.HANDS_ON: (
        r"hands.?on", r"visual", r"fun way", r"see it (happen|in action)",
        r"engaging",
    ),
    Theme.WORKLOAD_DISTRIBUTION: (
        r"workload", r"divid.*(work|task)", r"distribut", r"load balanc",
        r"split.*(work|task)",
    ),
    Theme.SYNCHRONIZATION: (
        r"synchroniz", r"coordinat", r"timing between", r"work together at",
    ),
    Theme.PLANNING_COMPLEXITY: (
        r"planning", r"complex", r"careful", r"task allocation",
        r"harder than it looks",
    ),
    Theme.ALREADY_KNEW: (
        r"already (knew|familiar)", r"nothing new",
    ),
    Theme.TEAMWORK_ANALOGY: (
        r"teamwork", r"team work", r"like a team", r"working as a group",
    ),
    Theme.BETTER_TOOLS: (
        r"better (crayons|markers|tools)", r"crayons? (broke|break|kept)",
        r"use markers instead", r"daubers for everyone",
    ),
    Theme.MORE_PROBLEM_SOLVING: (
        r"problem.?solving", r"more challeng", r"coding exercise",
        r"connect.*to code",
    ),
    Theme.SHORTER: (
        r"shorter", r"too long", r"less repetitive", r"redundan",
        r"fewer scenarios",
    ),
    Theme.CLEARER_INSTRUCTIONS: (
        r"clear(er)? instructions", r"confus", r"explain.*(relate|connect)",
        r"what it has to do with computing",
    ),
    Theme.VOCABULARY: (
        r"vocabulary", r"terms? (like|such as)", r"define pipelining",
        r"key ?words",
    ),
    Theme.LARGER_PAPER: (
        r"larger paper", r"bigger (paper|grid)", r"small(er)? cells",
        r"more (space|room)",
    ),
    Theme.COMPETITION: (
        r"leaderboard", r"competiti", r"timed challenge", r"race",
    ),
    Theme.NO_CHANGE: (
        r"no(thing)? (to )?(change|improve)", r"worked well", r"keep it as is",
        r"it was great as",
    ),
}

_COMPILED = {
    theme: [re.compile(p, re.IGNORECASE) for p in pats]
    for theme, pats in _THEME_PATTERNS.items()
}


def code_comment(text: str) -> Set[Theme]:
    """Code one free-text comment into its themes (possibly several)."""
    found: Set[Theme] = set()
    for theme, patterns in _COMPILED.items():
        if any(p.search(text) for p in patterns):
            found.add(theme)
    return found


#: Comment templates, per question, per theme, used by the generator.
_TEMPLATES: Dict[Question, Dict[Theme, Tuple[str, ...]]] = {
    Question.MOST_INTERESTING: {
        Theme.PARALLEL_UNDERSTANDING: (
            "I finally understand how parallel computing works in practice.",
            "Seeing how multiple processors work at once made it click.",
        ),
        Theme.DIMINISHING_RETURNS: (
            "Adding more processors is not always faster - diminishing "
            "returns are real.",
            "Too many people on one flag actually slowed us down.",
        ),
        Theme.CONTENTION: (
            "We kept waiting for the same marker - that's contention.",
            "Everyone needed the red marker at the same time, so we had to "
            "wait for the shared resource.",
        ),
        Theme.HANDS_ON: (
            "The hands-on coloring made the ideas visual and fun.",
            "It was an engaging, visual way to see the concepts.",
        ),
        Theme.WORKLOAD_DISTRIBUTION: (
            "Dividing the work fairly mattered more than I expected - "
            "load balancing is tricky.",
            "How you distribute the workload changes the finish time a lot.",
        ),
        Theme.SYNCHRONIZATION: (
            "Coordinating who colors when was the hard part - "
            "synchronization matters.",
        ),
        Theme.PLANNING_COMPLEXITY: (
            "Effective parallelism takes careful planning and task "
            "allocation.",
        ),
        Theme.ALREADY_KNEW: (
            "I was already familiar with parallel computing, but the "
            "activity was a nice refresher.",
        ),
        Theme.TEAMWORK_ANALOGY: (
            "It's just like teamwork - processors have to cooperate like "
            "people in a group.",
        ),
    },
    Question.IMPROVEMENTS: {
        Theme.BETTER_TOOLS: (
            "Please get better crayons - ours broke twice; markers would "
            "be nicer.",
            "The crayons kept breaking. Use markers instead.",
        ),
        Theme.MORE_PROBLEM_SOLVING: (
            "Add more problem-solving or a coding exercise to connect it "
            "to code.",
        ),
        Theme.SHORTER: (
            "Make it shorter - the later scenarios felt redundant.",
        ),
        Theme.CLEARER_INSTRUCTIONS: (
            "Clearer instructions on what it has to do with computing "
            "would help.",
            "I was confused at first; explain how it relates to pipelining.",
        ),
        Theme.VOCABULARY: (
            "Introduce key vocabulary like pipelining during the activity.",
        ),
        Theme.LARGER_PAPER: (
            "Use larger paper - the cells were tiny.",
        ),
        Theme.COMPETITION: (
            "Add a leaderboard or a timed challenge between teams.",
        ),
        Theme.NO_CHANGE: (
            "Nothing to change - it worked well as is.",
        ),
    },
}


def themes_for_question(question: Question) -> List[Theme]:
    """Themes a question's corpus can express, in enum order."""
    return list(_TEMPLATES[question])


def generate_comment(question: Question, theme: Theme,
                     rng: np.random.Generator) -> str:
    """One synthetic comment expressing a theme.

    Raises:
        KeyError: when the theme has no templates for that question.
    """
    try:
        options = _TEMPLATES[question][theme]
    except KeyError:
        raise KeyError(
            f"theme {theme.value!r} has no templates for "
            f"{question.value!r}"
        ) from None
    return str(options[int(rng.integers(len(options)))])


def generate_corpus(
    question: Question,
    n: int,
    rng: np.random.Generator,
    *,
    weights: Dict[Theme, float] | None = None,
) -> List[Tuple[str, Theme]]:
    """``n`` comments with their intended themes (for round-trip tests)."""
    themes = themes_for_question(question)
    if weights:
        probs = np.array([weights.get(t, 0.0) for t in themes], dtype=float)
        if probs.sum() <= 0:
            raise ValueError("weights assign no mass to this question's themes")
        probs = probs / probs.sum()
    else:
        probs = np.full(len(themes), 1.0 / len(themes))
    picks = rng.choice(len(themes), size=n, p=probs)
    return [
        (generate_comment(question, themes[int(i)], rng), themes[int(i)])
        for i in picks
    ]


def theme_frequencies(comments: Sequence[str]) -> Dict[Theme, int]:
    """Tabulate coded themes over a corpus (a comment may hit several)."""
    out: Dict[Theme, int] = {}
    for text in comments:
        for theme in code_comment(text):
            out[theme] = out.get(theme, 0) + 1
    return out
