"""Calibrated synthetic survey populations per institution.

The paper's survey evidence *is* the per-question medians of Tables I-III.
We cannot re-survey students, so per the substitution rule we model each
institution as a respondent population whose per-item response
distributions are calibrated to land exactly on the published medians
(using :func:`repro.metrics.stats.likert_distribution_for_median`), and
whose untabulated items get medians derived from the institution's overall
tone.  The benchmark pipeline then *recomputes* the medians from raw
synthetic responses — verifying the full collection-to-table pipeline and
producing Figure 6's bar chart from data, not from constants.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..data.paper_tables import ALL_TABLES, INSTITUTIONS, SURVEY_N
from ..metrics.stats import likert_distribution_for_median, median
from .aspect import ITEMS, item_for_table_row
from .likert import ResponseSet, SurveyError


def published_median(institution: str, item_id: str) -> Optional[float]:
    """The table value for (institution, item), or None when NA/untabulated."""
    for table_id, table in ALL_TABLES.items():
        for row_label, cells in table.items():
            item = item_for_table_row(table_id, row_label)
            if item.item_id == item_id:
                return cells.get(institution)
    return None


def _default_median(institution: str, rng: np.random.Generator) -> float:
    """A plausible median for untabulated items: the institution's modal
    published value (its overall tone), e.g. Knox answers 4.0 everywhere."""
    values = [
        published_median(institution, item.item_id)
        for item in ITEMS
        if published_median(institution, item.item_id) is not None
    ]
    if not values:
        return 4.0
    return float(median([v for v in values if v is not None]))


def synthesize_institution(
    institution: str,
    rng: np.random.Generator,
    *,
    n: Optional[int] = None,
    include_optional: bool = False,
) -> ResponseSet:
    """Generate one institution's full raw response set.

    Items with a published median are calibrated to reproduce it exactly;
    NA cells are skipped (not administered); untabulated items use the
    institution's modal tone.  The optional Knox tie-in item is included
    only on request (or automatically for Knox).

    Raises:
        KeyError: for unknown institutions.
    """
    if institution not in INSTITUTIONS:
        raise KeyError(
            f"unknown institution {institution!r}; valid: {INSTITUTIONS}"
        )
    n = n or SURVEY_N[institution]
    rs = ResponseSet(institution=institution)
    for item in ITEMS:
        if item.optional and not (include_optional or institution == "Knox"):
            continue
        target = published_median(institution, item.item_id)
        if item.table_row is not None and target is None:
            # A published NA: the institution did not ask this question.
            continue
        if target is None:
            target = _default_median(institution, rng)
            # A half-point default needs an even respondent count; round
            # to the nearest whole point for robustness.
            if (target * 2) % 2 == 1 and n % 2 == 1:
                target = round(target)
        answers = likert_distribution_for_median(target, n, rng)
        rs.add_many(item.item_id, answers)
    return rs


def synthesize_all(
    seed: int = 0,
    *,
    n_override: Optional[Dict[str, int]] = None,
) -> Dict[str, ResponseSet]:
    """Response sets for all six institutions from one seed."""
    out: Dict[str, ResponseSet] = {}
    for i, inst in enumerate(INSTITUTIONS):
        rng = np.random.default_rng(seed + i)
        n = (n_override or {}).get(inst)
        out[inst] = synthesize_institution(inst, rng, n=n)
    return out


def recompute_table(
    table_id: str,
    response_sets: Dict[str, ResponseSet],
) -> Dict[str, Dict[str, Optional[float]]]:
    """Recompute one published table from raw synthetic responses.

    Returns the same row-label -> institution -> median structure as the
    constants in :mod:`repro.data.paper_tables`, for side-by-side
    comparison.

    Raises:
        SurveyError: for unknown table ids.
    """
    if table_id not in ALL_TABLES:
        raise SurveyError(f"unknown table {table_id!r}; valid: I, II, III")
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for row_label in ALL_TABLES[table_id]:
        item = item_for_table_row(table_id, row_label)
        out[row_label] = {
            inst: rs.median(item.item_id)
            for inst, rs in response_sets.items()
        }
    return out


def table_discrepancies(
    table_id: str,
    response_sets: Dict[str, ResponseSet],
) -> Dict[str, Dict[str, float]]:
    """Cells where the recomputed median differs from the published value.

    An empty result means the pipeline reproduced the table exactly.
    NA agreement (both absent) counts as a match.
    """
    recomputed = recompute_table(table_id, response_sets)
    published = ALL_TABLES[table_id]
    diffs: Dict[str, Dict[str, float]] = {}
    for row_label, cells in published.items():
        for inst, want in cells.items():
            got = recomputed[row_label].get(inst)
            if want is None and got is None:
                continue
            if want is None or got is None or abs(want - got) > 1e-9:
                diffs.setdefault(row_label, {})[inst] = (
                    float("nan") if got is None or want is None
                    else got - want
                )
    return diffs
