"""Pre/post learning transitions: the Figure 8 model.

Each (institution, concept) pair has a four-state transition distribution —
retained (correct before and after), gained, lost, never — calibrated from
the percentages Figure 8 reports (see
:mod:`repro.data.paper_tables.FIG8_TRANSITIONS`).  This module simulates
student cohorts through those transitions, produces their raw quiz answer
sheets (with distractor choices for wrong answers), and re-derives the
transition fractions from the graded sheets — exercising the full
quiz-analysis pipeline rather than echoing the constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.paper_tables import FIG8_TRANSITIONS, QUIZ_CONCEPTS, QUIZ_N
from ..metrics.stats import transition_fractions
from .quiz import BY_CONCEPT, QuizQuestion, grade

STATES: Tuple[str, ...] = ("retained", "gained", "lost", "never")


class TransitionError(Exception):
    """Raised for malformed transition tables or unknown institutions."""


def _wrong_answer(q: QuizQuestion, rng: np.random.Generator) -> int:
    """A uniformly chosen distractor (any option except the correct one)."""
    wrong = [i for i in range(len(q.options)) if i != q.correct]
    return int(rng.choice(wrong))


@dataclass
class StudentSheets:
    """One cohort's raw pre and post answer sheets.

    ``pre[i]`` and ``post[i]`` are student *i*'s concept -> answer-index
    maps; grading them recovers the transition states.
    """

    institution: str
    pre: List[Dict[str, int]]
    post: List[Dict[str, int]]

    @property
    def n(self) -> int:
        """Cohort size."""
        return len(self.pre)


def exact_state_counts(fractions: Dict[str, float], n: int) -> Dict[str, int]:
    """Integer state counts for a cohort of ``n`` matching fractions as
    closely as possible (largest-remainder apportionment).

    Raises:
        TransitionError: if fractions don't sum to ~1.
    """
    total = sum(fractions.get(s, 0.0) for s in STATES)
    if abs(total - 1.0) > 1e-6:
        raise TransitionError(f"fractions sum to {total}, expected 1.0")
    raw = {s: fractions.get(s, 0.0) * n for s in STATES}
    counts = {s: int(raw[s]) for s in STATES}
    remainder = n - sum(counts.values())
    by_frac = sorted(STATES, key=lambda s: raw[s] - counts[s], reverse=True)
    for s in by_frac[:remainder]:
        counts[s] += 1
    return counts


def simulate_cohort(
    institution: str,
    rng: np.random.Generator,
    *,
    n: Optional[int] = None,
    exact: bool = True,
) -> StudentSheets:
    """Simulate one institution's cohort through pre and post quizzes.

    Args:
        exact: apportion students to transition states deterministically
            (reproduces Figure 8's percentages up to integer rounding);
            False draws states i.i.d. from the fractions instead.

    Raises:
        TransitionError: for institutions without Figure 8 data.
    """
    if institution not in FIG8_TRANSITIONS:
        raise TransitionError(
            f"no pre/post data for {institution!r}; "
            f"valid: {sorted(FIG8_TRANSITIONS)}"
        )
    n = n or QUIZ_N[institution]
    # Assign each student a transition state per concept.
    states_per_concept: Dict[str, List[str]] = {}
    for concept in QUIZ_CONCEPTS:
        fr = FIG8_TRANSITIONS[institution][concept]
        if exact:
            counts = exact_state_counts(fr, n)
            states = [s for s in STATES for _ in range(counts[s])]
            rng.shuffle(states)
        else:
            probs = np.array([fr.get(s, 0.0) for s in STATES])
            probs = probs / probs.sum()
            states = [STATES[int(i)]
                      for i in rng.choice(len(STATES), size=n, p=probs)]
        states_per_concept[concept] = states

    pre: List[Dict[str, int]] = []
    post: List[Dict[str, int]] = []
    for i in range(n):
        pre_sheet: Dict[str, int] = {}
        post_sheet: Dict[str, int] = {}
        for concept in QUIZ_CONCEPTS:
            q = BY_CONCEPT[concept]
            state = states_per_concept[concept][i]
            pre_ok = state in ("retained", "lost")
            post_ok = state in ("retained", "gained")
            pre_sheet[concept] = q.correct if pre_ok else _wrong_answer(q, rng)
            post_sheet[concept] = q.correct if post_ok else _wrong_answer(q, rng)
        pre.append(pre_sheet)
        post.append(post_sheet)
    return StudentSheets(institution=institution, pre=pre, post=post)


def analyze_sheets(sheets: StudentSheets) -> Dict[str, Dict[str, float]]:
    """Grade raw sheets and compute per-concept transition fractions.

    This is the analysis an instructor would run on real quizzes; applied
    to simulated sheets it should recover the calibration table.
    """
    out: Dict[str, Dict[str, float]] = {}
    for concept in QUIZ_CONCEPTS:
        pre_ok = [grade(s)[concept] for s in sheets.pre]
        post_ok = [grade(s)[concept] for s in sheets.post]
        fr = transition_fractions(pre_ok, post_ok)
        out[concept] = {"retained": fr["retained"], "gained": fr["gained"],
                        "lost": fr["lost"], "never": fr["never"]}
    return out


def expected_fractions(institution: str) -> Dict[str, Dict[str, float]]:
    """The calibration table itself (the model's exact expectations).

    Raises:
        TransitionError: for institutions without Figure 8 data.
    """
    if institution not in FIG8_TRANSITIONS:
        raise TransitionError(
            f"no pre/post data for {institution!r}; "
            f"valid: {sorted(FIG8_TRANSITIONS)}"
        )
    return {c: dict(FIG8_TRANSITIONS[institution][c]) for c in QUIZ_CONCEPTS}


def improvement_summary(analysis: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Net learning per concept: gained - lost (positive = the activity
    moved the class forward on that concept)."""
    return {c: fr["gained"] - fr["lost"] for c, fr in analysis.items()}


def pre_post_correct_rates(
    analysis: Dict[str, Dict[str, float]],
) -> Dict[str, Tuple[float, float]]:
    """Per concept: (pre-quiz correct rate, post-quiz correct rate)."""
    return {
        c: (fr["retained"] + fr["lost"], fr["retained"] + fr["gained"])
        for c, fr in analysis.items()
    }
