"""The ASPECT-based student engagement survey instrument (Figure 5).

Eighteen 5-point Likert items (1 = Strongly Disagree, 5 = Strongly Agree)
derived from the ASPECT survey, grouped into the three aspects the paper
analyzes: the student experience (engagement), understanding, and
instructor effectiveness.  Items 1-17 were used at all six institutions
(minus the NA cells of Tables I-III); item 18 is the Knox-specific tie-in
question marked with an asterisk in the figure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Aspect(enum.Enum):
    """The three question groups of the paper's analysis."""

    ENGAGEMENT = "engagement"
    UNDERSTANDING = "understanding"
    INSTRUCTOR = "instructor"


@dataclass(frozen=True)
class SurveyItem:
    """One Likert question.

    Attributes:
        item_id: stable short key.
        text: the full question wording from Figure 5.
        aspect: which analysis group the item belongs to.
        table_row: the (table, row-label) where its medians are published,
            or None for the three items the tables omit.
        optional: True for the Knox-only starred item.
    """

    item_id: str
    text: str
    aspect: Aspect
    table_row: Optional[Tuple[str, str]] = None
    optional: bool = False


SCALE_MIN, SCALE_MAX = 1, 5

ITEMS: Tuple[SurveyItem, ...] = (
    SurveyItem(
        "explain_to_group",
        "Explaining the material to my group improved my understanding of it",
        Aspect.UNDERSTANDING,
        ("II", "Explaining material to my group improved my understanding"),
    ),
    SurveyItem(
        "explained_to_me",
        "Having the material explained to me by my group members improved "
        "my understanding of it",
        Aspect.UNDERSTANDING,
        ("II", "Having material explained to me by my group improved my "
               "understanding"),
    ),
    SurveyItem(
        "group_discussion",
        "Group discussion during the activity contributed to my "
        "understanding of parallel computing",
        Aspect.UNDERSTANDING,
        ("II", "Group discussion contributed to my understanding of "
               "parallel computing"),
    ),
    SurveyItem(
        "had_fun",
        "I had fun during the activity",
        Aspect.ENGAGEMENT,
        ("I", "I had fun during the activity"),
    ),
    SurveyItem(
        "others_contributed",
        "Overall, the other members of my group made valuable contributions "
        "during the activity",
        Aspect.ENGAGEMENT,
        None,
    ),
    SurveyItem(
        "prefer_activity_class",
        "I would prefer to take a class that includes this group activity "
        "over one that does not",
        Aspect.ENGAGEMENT,
        None,
    ),
    SurveyItem(
        "confident_understanding",
        "I am confident in my understanding of the material presented "
        "during the activity",
        Aspect.UNDERSTANDING,
        ("II", "I am confident in my understanding of the material presented"),
    ),
    SurveyItem(
        "increased_pc_understanding",
        "The activity increased my understanding of parallel computing",
        Aspect.UNDERSTANDING,
        ("II", "The activity increased my understanding of parallel computing"),
    ),
    SurveyItem(
        "stimulated_interest",
        "The activity stimulated my interest in parallel computing",
        Aspect.ENGAGEMENT,
        ("I", "The activity stimulated my interest in parallel computing"),
    ),
    SurveyItem(
        "increased_loops_understanding",
        "The activity increased my understanding of loops",
        Aspect.UNDERSTANDING,
        ("II", "The activity increased my understanding of loops"),
    ),
    SurveyItem(
        "my_contribution",
        "I made a valuable contribution to my group during the activity",
        Aspect.ENGAGEMENT,
        ("I", "I made a valuable contribution to my group"),
    ),
    SurveyItem(
        "focused",
        "I was focused during the activity",
        Aspect.ENGAGEMENT,
        ("I", "I was focused during the activity"),
    ),
    SurveyItem(
        "worked_hard",
        "I worked hard during the activity",
        Aspect.ENGAGEMENT,
        ("I", "I worked hard during the activity"),
    ),
    SurveyItem(
        "instructor_prepared",
        "The instructor seemed prepared for the activity",
        Aspect.INSTRUCTOR,
        ("III", "The instructor seemed prepared for the activity"),
    ),
    SurveyItem(
        "instructor_effort",
        "The instructor put a good deal of effort into my learning from "
        "the activity",
        Aspect.INSTRUCTOR,
        ("III", "The instructor put effort into my learning"),
    ),
    SurveyItem(
        "instructor_enthusiasm",
        "The instructor's enthusiasm made me more interested in the activity",
        Aspect.INSTRUCTOR,
        ("III", "The instructor's enthusiasm made me more interested in "
                "the activity"),
    ),
    SurveyItem(
        "staff_available",
        "The instructor and/or TAs were available to answer questions "
        "during the activity",
        Aspect.INSTRUCTOR,
        ("III", "The instructor and/or TAs were available to answer questions"),
    ),
    SurveyItem(
        "tied_to_assignment",
        "I like that the activity tied into the class's current "
        "programming assignment",
        Aspect.ENGAGEMENT,
        None,
        optional=True,
    ),
)


def get_item(item_id: str) -> SurveyItem:
    """Look up an item by id.

    Raises:
        KeyError: listing valid ids when unknown.
    """
    for item in ITEMS:
        if item.item_id == item_id:
            return item
    raise KeyError(f"unknown survey item {item_id!r}; "
                   f"valid: {[i.item_id for i in ITEMS]}")


def items_by_aspect(aspect: Aspect) -> List[SurveyItem]:
    """All items belonging to one analysis group, in instrument order."""
    return [i for i in ITEMS if i.aspect == aspect]


def item_for_table_row(table: str, row_label: str) -> SurveyItem:
    """The instrument item behind one published table row.

    Raises:
        KeyError: if no item maps to that (table, row).
    """
    for item in ITEMS:
        if item.table_row == (table, row_label):
            return item
    raise KeyError(f"no survey item for table {table} row {row_label!r}")


def table_rows() -> Dict[Tuple[str, str], SurveyItem]:
    """Mapping of every (table, row-label) to its instrument item."""
    return {i.table_row: i for i in ITEMS if i.table_row is not None}
