"""The paper's published results, transcribed as constants.

Everything the evaluation section reports lives here so benchmarks can
print paper-vs-measured rows from a single source of truth:

- Tables I-III / Figure 6: median Likert scores per question per
  institution (``None`` marks the published "NA" cells).
- Figure 8: pre/post-quiz transition percentages per concept at USI,
  TNTech and HPU.
- Section V-C: the dependency-graph grading counts.

Reconciliation note for Figure 8: the paper reports selected transition
percentages in prose, and for some (concept, institution) cells they do
not sum to 100% (e.g. TNTech contention: 37.2% pre-correct, 25% gained,
28.5% never-correct leaves retained+lost inconsistent with the stated
pre-rate).  :data:`FIG8_TRANSITIONS` stores a completed four-state table
(retained / gained / lost / never) that keeps every *explicitly reported*
number exact and fills the unreported remainder so each row sums to 1.0.
The per-cell provenance is in the comments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Institutions in the tables' column order.
INSTITUTIONS: Tuple[str, ...] = (
    "HPU", "Knox", "Montclair", "TNTech", "USI", "Webster",
)

#: Assumed survey-respondent counts per institution.  The paper does not
#: publish them; these are chosen to be plausible for the described classes
#: and to make every published median reachable (half-point medians need an
#: even count).  Knox's 65-student enrollment is from Section V-C.
SURVEY_N: Dict[str, int] = {
    "HPU": 6,
    "Knox": 40,
    "Montclair": 22,
    "TNTech": 44,
    "USI": 14,
    "Webster": 18,
}

# -- Table I: engagement -----------------------------------------------------
TABLE_I: Dict[str, Dict[str, Optional[float]]] = {
    "I had fun during the activity": {
        "HPU": 4.0, "Knox": 4.0, "Montclair": 4.5,
        "TNTech": 4.0, "USI": 5.0, "Webster": 5.0,
    },
    "I made a valuable contribution to my group": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 4.0, "Webster": 5.0,
    },
    "I was focused during the activity": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": 5.0,
    },
    "I worked hard during the activity": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": 5.0,
    },
    "The activity stimulated my interest in parallel computing": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 3.5,
        "TNTech": None, "USI": 4.0, "Webster": 5.0,
    },
}

# -- Table II: understanding --------------------------------------------------
TABLE_II: Dict[str, Dict[str, Optional[float]]] = {
    "Explaining material to my group improved my understanding": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 4.0,
        "TNTech": 4.0, "USI": 4.5, "Webster": 4.0,
    },
    "Having material explained to me by my group improved my understanding": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 4.5,
        "TNTech": 4.0, "USI": 4.0, "Webster": 4.5,
    },
    "Group discussion contributed to my understanding of parallel computing": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 4.0,
        "TNTech": 4.0, "USI": 5.0, "Webster": 5.0,
    },
    "I am confident in my understanding of the material presented": {
        "HPU": 4.5, "Knox": 4.0, "Montclair": 4.0,
        "TNTech": 4.0, "USI": 4.0, "Webster": 5.0,
    },
    "The activity increased my understanding of parallel computing": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 4.5,
        "TNTech": 4.0, "USI": 5.0, "Webster": 5.0,
    },
    "The activity increased my understanding of loops": {
        "HPU": 3.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 3.0, "USI": 4.0, "Webster": 4.0,
    },
}

# -- Table III: instructor ----------------------------------------------------
TABLE_III: Dict[str, Dict[str, Optional[float]]] = {
    "The instructor seemed prepared for the activity": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": 5.0,
    },
    "The instructor put effort into my learning": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": None,
    },
    "The instructor's enthusiasm made me more interested in the activity": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": None,
    },
    "The instructor and/or TAs were available to answer questions": {
        "HPU": 5.0, "Knox": 4.0, "Montclair": 5.0,
        "TNTech": 5.0, "USI": 5.0, "Webster": None,
    },
}

#: All three tables, keyed by their paper numbering.
ALL_TABLES: Dict[str, Dict[str, Dict[str, Optional[float]]]] = {
    "I": TABLE_I,
    "II": TABLE_II,
    "III": TABLE_III,
}

# -- Figure 8: pre/post transitions -------------------------------------------
#: The five quiz concepts in the instrument's order (Figure 7).
QUIZ_CONCEPTS: Tuple[str, ...] = (
    "task_decomposition", "speedup", "contention", "scalability", "pipelining",
)

#: Pre/post-quiz cohort sizes (distinct from the survey populations).  USI
#: and HPU follow directly from the reported percentages (10/13 = 76.9%,
#: 5/6 = 83.3%); TNTech's percentages imply a larger class, taken as 86.
QUIZ_N: Dict[str, int] = {"USI": 13, "TNTech": 86, "HPU": 6}

#: Four-state transition fractions (retained, gained, lost, never), one row
#: per (institution, concept), each summing to 1.0.  Percentages explicitly
#: printed in Figure 8 are kept exact; the remainder completes the row.
FIG8_TRANSITIONS: Dict[str, Dict[str, Dict[str, float]]] = {
    "USI": {
        # 76.9 retained, 0 growth, 23.1 loss — all reported.
        "task_decomposition": {"retained": 0.769, "gained": 0.000,
                               "lost": 0.231, "never": 0.000},
        # 69.2 retained, 15.4 gained reported; remainder never-correct.
        "speedup": {"retained": 0.692, "gained": 0.154,
                    "lost": 0.000, "never": 0.154},
        # 46.2 pre-correct (all retained), 38.5 gained reported.
        "contention": {"retained": 0.462, "gained": 0.385,
                       "lost": 0.000, "never": 0.153},
        # 92.3 retained reported, "minimal reduction and growth".
        "scalability": {"retained": 0.923, "gained": 0.000,
                        "lost": 0.000, "never": 0.077},
        # 23.1 pre-correct and 23.1 loss reported -> nothing retained.
        "pipelining": {"retained": 0.000, "gained": 0.154,
                       "lost": 0.231, "never": 0.615},
    },
    "TNTech": {
        # 87.2 retained, 4.1 growth, 6.4 loss reported.
        "task_decomposition": {"retained": 0.872, "gained": 0.041,
                               "lost": 0.064, "never": 0.023},
        # 66.3 retained, 18 gained, 7 reduction reported.
        "speedup": {"retained": 0.663, "gained": 0.180,
                    "lost": 0.070, "never": 0.087},
        # 37.2 pre-correct, 25 gained, 28.5 never reported; the row cannot
        # keep all three and sum to 1, so pre-correct splits into retained
        # 28.0 + lost 9.2 (see module docstring).
        "contention": {"retained": 0.280, "gained": 0.250,
                       "lost": 0.092, "never": 0.378},
        # 82.6 retained reported.
        "scalability": {"retained": 0.826, "gained": 0.047,
                        "lost": 0.023, "never": 0.104},
        # 4.1 pre-correct and 74.4 never reported.
        "pipelining": {"retained": 0.023, "gained": 0.215,
                       "lost": 0.018, "never": 0.744},
    },
    "HPU": {
        # 83.3 retained, 16.7 growth reported.
        "task_decomposition": {"retained": 0.833, "gained": 0.167,
                               "lost": 0.000, "never": 0.000},
        # 100 retained reported.
        "speedup": {"retained": 1.000, "gained": 0.000,
                    "lost": 0.000, "never": 0.000},
        # 33.3 pre-correct, 16.7 gained, 50 never reported.
        "contention": {"retained": 0.333, "gained": 0.167,
                       "lost": 0.000, "never": 0.500},
        # 100 retained reported.
        "scalability": {"retained": 1.000, "gained": 0.000,
                        "lost": 0.000, "never": 0.000},
        # 50 pre-correct and 50 loss reported -> nothing retained.
        "pipelining": {"retained": 0.000, "gained": 0.000,
                       "lost": 0.500, "never": 0.500},
    },
}

# -- Section V-C: dependency-graph grading --------------------------------------
DEPGRAPH_RESULTS: Dict[str, float] = {
    "n_submissions": 29,
    "class_size": 65,
    "response_rate": 0.45,
    "n_perfect": 10,
    "n_mostly_correct": 7,
    "n_split_triangle": 5,
    "n_no_learning": 4,
    "frac_perfect": 0.34,
    "frac_mostly_correct": 0.24,
    "frac_at_least_mostly": 0.59,
    "frac_no_learning": 0.14,
}


def validate_transitions() -> None:
    """Assert every Figure 8 row sums to 1 (within rounding).

    Raises:
        ValueError: naming the offending row.
    """
    for inst, concepts in FIG8_TRANSITIONS.items():
        for concept, row in concepts.items():
            total = sum(row.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"FIG8_TRANSITIONS[{inst}][{concept}] sums to {total}"
                )
