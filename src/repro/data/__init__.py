"""Published numbers from the paper, as constants for paper-vs-measured rows."""

from .paper_tables import (
    ALL_TABLES,
    DEPGRAPH_RESULTS,
    FIG8_TRANSITIONS,
    INSTITUTIONS,
    QUIZ_CONCEPTS,
    QUIZ_N,
    SURVEY_N,
    TABLE_I,
    TABLE_II,
    TABLE_III,
    validate_transitions,
)

__all__ = [
    "ALL_TABLES",
    "DEPGRAPH_RESULTS",
    "FIG8_TRANSITIONS",
    "INSTITUTIONS",
    "QUIZ_CONCEPTS",
    "QUIZ_N",
    "SURVEY_N",
    "TABLE_I",
    "TABLE_II",
    "TABLE_III",
    "validate_transitions",
]
