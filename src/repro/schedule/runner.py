"""The core scenario runner: replay a partition on the simulation engine.

This module turns a static :class:`~repro.flags.decompose.Partition` plus a
:class:`~repro.agents.team.Team` into simulator processes, runs them, and
packages the outcome as a :class:`RunResult`.  It is the path every
experiment goes through; the scenario wrappers, dynamic strategies and
dependency-aware schedulers all bottom out here.

Implement sharing follows the classroom physics: a team owns one implement
per color (unless issued duplicates), an implement is a single-holder FIFO
resource, and changing hands costs handoff time.  The acquisition *policy*
— hold an implement through a same-color run vs. release after every
stroke — is a modeling knob the ablations sweep.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..agents.student import FillStyle, StudentProcessor
from ..agents.team import Team
from ..flags.spec import PaintOp, PaintProgram
from ..flags.decompose import Partition
from ..grid.canvas import Canvas
from ..grid.palette import Color
from ..sim.engine import (
    Acquire,
    ProcessGen,
    Release,
    ResourceHandle,
    Simulator,
    Timeout,
)
from ..sim.events import EventKind
from ..sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan
    from ..faults.recovery import FaultAccounting, RecoveryConfig
    from ..obs.observer import Observer
    from ..obs.summary import ObsSummary


class AcquirePolicy(enum.Enum):
    """When a worker gives a shared implement back.

    HOLD_COLOR_RUN: keep the implement until the next stroke needs a
    different color — the natural classroom behavior, and the one that
    makes scenario 4 self-organize into a pipeline (FIFO queues hand the
    red marker down the line of waiting workers).

    RELEASE_PER_STROKE: release after every cell — maximal fairness,
    pathological handoff overhead; the thrashing baseline.
    """

    HOLD_COLOR_RUN = "hold_color_run"
    RELEASE_PER_STROKE = "release_per_stroke"


@dataclass
class RunResult:
    """Everything one simulated scenario run produced.

    Attributes:
        label: human-readable run identifier ("scenario3", ...).
        strategy: the decomposition/schedule that was used.
        n_workers: processors that actually colored.
        true_makespan: simulated seconds until the last stroke/process end.
        measured_time: what the timer student's stopwatch reported.
        trace: the full event trace for metric extraction.
        canvas: the colored sheet.
        correct: whether the canvas reproduces the target image.
        faults: fault/recovery accounting when the run executed under a
            :class:`~repro.faults.plan.FaultPlan`; None for clean runs.
        obs: the observability digest when the run executed with a
            :class:`~repro.obs.observer.RunObserver` attached; None
            otherwise (see :mod:`repro.obs`).
    """

    label: str
    strategy: str
    n_workers: int
    true_makespan: float
    measured_time: float
    trace: Trace
    canvas: Canvas
    correct: bool
    extra: Dict[str, object] = field(default_factory=dict)
    faults: Optional["FaultAccounting"] = None
    obs: Optional["ObsSummary"] = None


def marker_name(color: Color) -> str:
    """Canonical resource name for a color's implement."""
    return f"{color.name.lower()}_marker"


def build_resources(sim: Simulator, team: Team,
                    colors: Sequence[Color]) -> Dict[Color, ResourceHandle]:
    """One FIFO resource per color, capacity = duplicate implements issued."""
    return {
        c: sim.resource(marker_name(c), capacity=team.kit.copies)
        for c in colors
    }


def paint_worker(
    sim: Simulator,
    student: StudentProcessor,
    ops: Sequence[PaintOp],
    team: Team,
    canvas: Canvas,
    resources: Dict[Color, ResourceHandle],
    rng: np.random.Generator,
    *,
    style: FillStyle = FillStyle.SCRIBBLE,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    last_holder: Optional[Dict[str, str]] = None,
) -> ProcessGen:
    """Generator for one student working through an ordered stroke list.

    Args:
        last_holder: shared map resource-name -> last agent who held it;
            used to charge handoff time when an implement changes hands.
            Pass the same dict to every worker of a run.
    """
    if last_holder is None:
        last_holder = {}
    held: Optional[ResourceHandle] = None
    for op in ops:
        res = resources[op.color]
        if held is not res:
            if held is not None:
                yield Release(held)
            yield Acquire(res)
            prev = last_holder.get(res.name)
            if prev is not None and prev != student.name:
                delay = student.handoff_time(rng)
                sim.log(EventKind.HANDOFF, agent=student.name,
                        resource=res.name, from_agent=prev, delay=delay)
                yield Timeout(delay)
            last_holder[res.name] = student.name
            held = res
        implement = team.kit.implement_for(op.color)
        duration, coverage, fault = student.stroke_time(
                implement, rng, style, complexity=op.complexity)
        sim.log(EventKind.STROKE_START, agent=student.name, cell=op.cell,
                color=op.color.name, layer=op.layer)
        yield Timeout(duration)
        canvas.paint(op.cell, op.color, agent=student.name, time=sim.now,
                     coverage=coverage)
        sim.log(EventKind.STROKE_END, agent=student.name, cell=op.cell,
                color=op.color.name, layer=op.layer)
        if fault is not None:
            sim.log(EventKind.FAULT, agent=student.name,
                    resource=res.name, delay=fault)
            yield Timeout(fault)
        if policy is AcquirePolicy.RELEASE_PER_STROKE:
            yield Release(res)
            held = None
    if held is not None:
        yield Release(held)


def run_partition(
    partition: Partition,
    team: Team,
    rng: np.random.Generator,
    *,
    label: Optional[str] = None,
    style: FillStyle = FillStyle.SCRIBBLE,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    target: Optional[np.ndarray] = None,
    fault_plan: Optional["FaultPlan"] = None,
    recovery: Optional["RecoveryConfig"] = None,
    observer: Optional["Observer"] = None,
    strict: bool = False,
) -> RunResult:
    """Simulate one run of a statically-partitioned program.

    Workers with empty assignments are skipped (they stand aside, like the
    timer student).  The team must have at least as many students as
    non-empty assignments.

    Args:
        target: expected final color-code image; defaults to replaying the
            program sequentially (which for layered programs assumes the
            partition preserves layer legality — use the dependency-aware
            scheduler otherwise).
        strict: how ``result.correct`` judges the canvas.  ``False`` (the
            default) applies Section V-C's grading lenience: cells the
            target leaves blank may hold anything, because blank paper is
            already "colored" white.  ``True`` requires exact cell-for-cell
            equality with the target, blanks included — what a run that
            must not overpaint uncovered cells should assert.
        fault_plan: when given (even empty), the run executes on the
            fault-tolerant worker path with the plan's mishaps injected;
            an empty plan reproduces the clean run's trace exactly.
        recovery: how the team responds to faults; defaults to
            REDISTRIBUTE.  Ignored without a ``fault_plan``.
        observer: an observability tap (e.g. a
            :class:`~repro.obs.observer.RunObserver`); with a
            ``RunObserver``, the result carries its summary as
            ``result.obs``.  ``None`` (the default) costs nothing.
    """
    program = partition.program
    team.begin_scenario()
    sim = Simulator(observer=observer)
    canvas = Canvas(program.rows, program.cols, allow_overpaint=True)
    colors = sorted({op.color for op in program.ops}, key=int)
    resources = build_resources(sim, team, colors)
    last_holder: Dict[str, str] = {}

    active = [(i, ops) for i, ops in enumerate(partition.assignments) if ops]
    students = team.colorers(len(active))
    accounting: Optional["FaultAccounting"] = None
    if fault_plan is None:
        for student, (_, ops) in zip(students, active):
            sim.add_process(
                student.name,
                paint_worker(sim, student, ops, team, canvas, resources, rng,
                             style=style, policy=policy,
                             last_holder=last_holder),
            )
    else:
        # Imported lazily: faults -> agents/sim only, so no cycle, but
        # keeping it out of module scope means clean runs never pay for it.
        from ..faults.injector import FaultInjector, resilient_worker
        from ..faults.recovery import FaultAccounting, RecoveryConfig

        if recovery is None:
            recovery = RecoveryConfig()
        accounting = FaultAccounting()
        dead_colors: set = set()
        queues: Dict[str, Deque] = {
            student.name: deque(ops)
            for student, (_, ops) in zip(students, active)
        }
        worker_names = [s.name for s, _ in zip(students, active)]
        injector = FaultInjector(sim, fault_plan, worker_names, queues,
                                 resources, recovery, accounting, dead_colors)
        injector.install()
        for idx, (student, _) in enumerate(zip(students, active)):
            sim.add_process(
                student.name,
                resilient_worker(
                    sim, student, queues[student.name], team, canvas,
                    resources, rng, style=style,
                    release_per_stroke=(
                        policy is AcquirePolicy.RELEASE_PER_STROKE),
                    last_holder=last_holder, accounting=accounting,
                    dead_colors=dead_colors,
                ),
                start_at=injector.start_delay(idx),
            )
    true_makespan = sim.run()
    measured = team.timer.measure(true_makespan, rng)
    trace = Trace(sim.events)
    if target is None:
        from ..flags.compiler import execute
        target = execute(program).codes
    correct = canvas.matches(target, ignore_blank_target=not strict)
    obs_summary: Optional["ObsSummary"] = None
    if observer is not None:
        # Imported lazily for the same reason the faults path is: clean
        # unobserved runs never touch the obs package.
        from ..obs.observer import RunObserver, TeeObserver
        if isinstance(observer, TeeObserver):
            # A tee may carry a RunObserver among other taps; the obs
            # digest comes from that one, same as a bare attachment.
            observer = observer.find(RunObserver)
        if isinstance(observer, RunObserver):
            obs_summary = observer.summary()
    return RunResult(
        label=label or f"{program.flag}/{partition.strategy}",
        strategy=partition.strategy,
        n_workers=len(active),
        true_makespan=true_makespan,
        measured_time=measured,
        trace=trace,
        canvas=canvas,
        correct=correct,
        faults=accounting,
        obs=obs_summary,
    )


def replay_many(
    make_partition,
    team_factory,
    n_trials: int,
    seed: int,
    **run_kwargs,
) -> List[RunResult]:
    """Run the same configuration ``n_trials`` times with fresh teams.

    Seed-derivation policy (see :mod:`repro.sweep.seeding`): trial ``t``
    draws from ``SeedSequence(seed).spawn(n_trials)[t]``, never from
    ``seed + t``.  Spawned streams are statistically independent and —
    unlike additive offsets — never collide across batches: with the old
    derivation, batch ``seed=0`` trial 5 and batch ``seed=5`` trial 0
    were the *same* stream, silently correlating experiments that were
    meant to be independent replications.
    """
    # Lazy import: repro.sweep builds on this module, so the seeding
    # policy must be pulled in at call time to avoid an import cycle.
    from ..sweep.seeding import trial_rngs

    out: List[RunResult] = []
    for rng in trial_rngs(seed, n_trials):
        team = team_factory(rng)
        partition = make_partition()
        out.append(run_partition(partition, team, rng, **run_kwargs))
    return out
