"""Dynamic (self-scheduling) strategies: the shared work queue.

Static decompositions fix each worker's strokes in advance; a *dynamic*
strategy lets idle workers pull the next chunk of strokes from a shared
queue, trading coordination for load balance.  This is the classroom
equivalent of "whoever finishes their part helps the others", and the
classic remedy for the load imbalance the Webster Canadian-flag variation
surfaces.

Chunking is the usual grain-size dial: chunk=1 is pure self-scheduling
(perfect balance, maximal implement churn), large chunks approach a static
block split.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..agents.student import FillStyle
from ..agents.team import Team
from ..flags.spec import PaintOp, PaintProgram
from ..grid.canvas import Canvas
from ..grid.palette import Color
from ..sim.engine import Acquire, ProcessGen, Release, ResourceHandle, Simulator, Timeout
from ..sim.events import EventKind
from ..sim.trace import Trace
from .runner import AcquirePolicy, RunResult, build_resources


class StrategyError(Exception):
    """Raised for invalid dynamic-schedule configurations."""


def _dynamic_worker(
    sim: Simulator,
    student,
    queue: Deque[PaintOp],
    chunk: int,
    team: Team,
    canvas: Canvas,
    resources: Dict[Color, ResourceHandle],
    rng: np.random.Generator,
    style: FillStyle,
    last_holder: Dict[str, str],
) -> ProcessGen:
    """One worker repeatedly pulling up to ``chunk`` strokes off the queue."""
    held: Optional[ResourceHandle] = None
    while queue:
        batch = [queue.popleft() for _ in range(min(chunk, len(queue)))]
        for op in batch:
            res = resources[op.color]
            if held is not res:
                if held is not None:
                    yield Release(held)
                yield Acquire(res)
                prev = last_holder.get(res.name)
                if prev is not None and prev != student.name:
                    delay = student.handoff_time(rng)
                    sim.log(EventKind.HANDOFF, agent=student.name,
                            resource=res.name, from_agent=prev, delay=delay)
                    yield Timeout(delay)
                last_holder[res.name] = student.name
                held = res
            implement = team.kit.implement_for(op.color)
            duration, coverage, fault = student.stroke_time(
                implement, rng, style, complexity=op.complexity)
            sim.log(EventKind.STROKE_START, agent=student.name, cell=op.cell,
                    color=op.color.name, layer=op.layer)
            yield Timeout(duration)
            canvas.paint(op.cell, op.color, agent=student.name, time=sim.now,
                         coverage=coverage)
            sim.log(EventKind.STROKE_END, agent=student.name, cell=op.cell,
                    color=op.color.name, layer=op.layer)
            if fault is not None:
                sim.log(EventKind.FAULT, agent=student.name,
                        resource=res.name, delay=fault)
                yield Timeout(fault)
        # Release between chunks: self-scheduling means nobody hogs an
        # implement across queue pulls, otherwise one worker could
        # monopolize a color for an entire single-color phase.
        if held is not None:
            yield Release(held)
            held = None
    if held is not None:
        yield Release(held)


def run_dynamic(
    program: PaintProgram,
    team: Team,
    n_workers: int,
    rng: np.random.Generator,
    *,
    chunk: int = 4,
    label: Optional[str] = None,
    style: FillStyle = FillStyle.SCRIBBLE,
    target: Optional[np.ndarray] = None,
) -> RunResult:
    """Simulate self-scheduling workers over a shared stroke queue.

    The queue holds the program's strokes in program (layer) order, so for
    layered flags dynamic scheduling stays *approximately* legal: a cell may
    still be overpainted out of order if two layers' strokes are in flight
    simultaneously.  Use :mod:`repro.schedule.depsched` when strict layer
    correctness matters; this runner is the load-balance workhorse for flat
    flags.

    Raises:
        StrategyError: on a non-positive worker count or chunk size.
    """
    if n_workers < 1:
        raise StrategyError(f"need at least one worker, got {n_workers}")
    if chunk < 1:
        raise StrategyError(f"chunk must be >= 1, got {chunk}")
    team.begin_scenario()
    sim = Simulator()
    canvas = Canvas(program.rows, program.cols, allow_overpaint=True)
    colors = sorted({op.color for op in program.ops}, key=int)
    resources = build_resources(sim, team, colors)
    queue: Deque[PaintOp] = deque(program.ops)
    last_holder: Dict[str, str] = {}
    for student in team.colorers(n_workers):
        sim.add_process(
            student.name,
            _dynamic_worker(sim, student, queue, chunk, team, canvas,
                            resources, rng, style, last_holder),
        )
    true_makespan = sim.run()
    measured = team.timer.measure(true_makespan, rng)
    if target is None:
        from ..flags.compiler import execute
        target = execute(program).codes
    correct = canvas.matches(target)
    return RunResult(
        label=label or f"{program.flag}/dynamic(chunk={chunk})",
        strategy=f"dynamic_chunk{chunk}",
        n_workers=n_workers,
        true_makespan=true_makespan,
        measured_time=measured,
        trace=Trace(sim.events),
        canvas=canvas,
        correct=correct,
        extra={"chunk": chunk},
    )


def chunk_sweep(
    program: PaintProgram,
    team_factory,
    n_workers: int,
    chunks: Sequence[int],
    seed: int,
    *,
    trials: int = 3,
) -> Dict[int, List[RunResult]]:
    """Run the dynamic strategy across chunk sizes; fresh team per trial."""
    out: Dict[int, List[RunResult]] = {}
    for chunk in chunks:
        runs = []
        for t in range(trials):
            rng = np.random.default_rng(seed + 1000 * chunk + t)
            team = team_factory(rng)
            runs.append(run_dynamic(program, team, n_workers, rng, chunk=chunk))
        out[chunk] = runs
    return out
