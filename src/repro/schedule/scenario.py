"""The four core scenarios of the activity (Fig 1), as first-class objects.

Scenario 1: one student colors the whole flag (a second one times them);
optionally repeated to expose the warmup effect.
Scenario 2: two students split the stripes by color pairs (red+blue /
yellow+green).
Scenario 3: four students, one stripe each — one implement per student, no
sharing, near-linear speedup.
Scenario 4: four students, one vertical slice each — every slice crosses
every stripe, so the team's four implements are shared and contended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from ..agents.student import FillStyle
from ..agents.team import Team
from ..flags.compiler import compile_flag
from ..flags.decompose import Partition, scenario_partition
from ..flags.spec import FlagSpec, PaintProgram
from .runner import AcquirePolicy, RunResult, run_partition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan
    from ..faults.recovery import RecoveryConfig
    from ..obs.observer import Observer


@dataclass(frozen=True)
class Scenario:
    """One scenario: a name, a description, and a partition recipe."""

    number: int
    name: str
    description: str
    n_colorers: int
    make_partition: Callable[[PaintProgram], Partition]

    def partition(self, program: PaintProgram) -> Partition:
        """Build this scenario's partition of a compiled program."""
        return self.make_partition(program)


def core_scenarios() -> List[Scenario]:
    """The paper's four scenarios, in the order the class runs them."""
    return [
        Scenario(
            number=1,
            name="sequential",
            description="One student colors the entire flag; another times.",
            n_colorers=1,
            make_partition=lambda p: scenario_partition(p, 1),
        ),
        Scenario(
            number=2,
            name="two_by_color_pairs",
            description=("Two students: one colors the red and blue stripes, "
                         "the other yellow and green."),
            n_colorers=2,
            make_partition=lambda p: scenario_partition(p, 2),
        ),
        Scenario(
            number=3,
            name="four_by_stripe",
            description="Four students, one stripe each.",
            n_colorers=4,
            make_partition=lambda p: scenario_partition(p, 3),
        ),
        Scenario(
            number=4,
            name="four_vertical_slices",
            description=("Four students, one vertical slice each; slices "
                         "cross all stripes so implements must be shared."),
            n_colorers=4,
            make_partition=lambda p: scenario_partition(p, 4),
        ),
    ]


def get_scenario(number: int) -> Scenario:
    """Look up a core scenario by its 1-based number.

    Raises:
        KeyError: outside 1-4.
    """
    for s in core_scenarios():
        if s.number == number:
            return s
    raise KeyError(f"no core scenario {number}; valid: 1-4")


def run_scenario(
    scenario: Scenario,
    spec: FlagSpec,
    team: Team,
    rng: np.random.Generator,
    *,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
    style: FillStyle = FillStyle.SCRIBBLE,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    fault_plan: Optional["FaultPlan"] = None,
    recovery: Optional["RecoveryConfig"] = None,
    observer: Optional["Observer"] = None,
) -> RunResult:
    """Compile the flag, apply the scenario's decomposition, and simulate.

    ``fault_plan``/``recovery`` inject classroom mishaps into the run;
    ``observer`` taps the run for spans/metrics/profiling; see
    :func:`~repro.schedule.runner.run_partition`.
    """
    program = compile_flag(spec, rows, cols)
    partition = scenario.partition(program)
    result = run_partition(
        partition, team, rng,
        label=f"scenario{scenario.number}",
        style=style, policy=policy,
        target=spec.final_image(program.rows, program.cols),
        fault_plan=fault_plan, recovery=recovery, observer=observer,
    )
    result.extra["scenario"] = scenario.number
    result.extra["flag"] = spec.name
    return result


def run_core_activity(
    spec: FlagSpec,
    team: Team,
    rng: np.random.Generator,
    *,
    repeat_first: bool = True,
    style: FillStyle = FillStyle.SCRIBBLE,
    policy: AcquirePolicy = AcquirePolicy.HOLD_COLOR_RUN,
    observer_factory: Optional[Callable[[], "Observer"]] = None,
) -> Dict[str, RunResult]:
    """Run a team through the full core activity, in classroom order.

    Args:
        repeat_first: run scenario 1 twice (the variant Section III-C
            recommends to surface the warmup lesson).  The repeat appears
            under the key ``"scenario1_repeat"``.
        observer_factory: when given, called once per run to build a fresh
            observability tap for it (observers accumulate state, so one
            instance must never span runs).  Each result then carries its
            own ``result.obs`` digest — this is how :mod:`repro.sweep`
            rolls up metrics over whole-activity trials.

    Returns:
        Ordered mapping of run label to result:
        ``scenario1[, scenario1_repeat], scenario2, scenario3, scenario4``.
    """

    def observe() -> Optional["Observer"]:
        return observer_factory() if observer_factory is not None else None

    results: Dict[str, RunResult] = {}
    scenarios = core_scenarios()
    results["scenario1"] = run_scenario(scenarios[0], spec, team, rng,
                                        style=style, policy=policy,
                                        observer=observe())
    if repeat_first:
        r = run_scenario(scenarios[0], spec, team, rng,
                         style=style, policy=policy, observer=observe())
        r.label = "scenario1_repeat"
        results["scenario1_repeat"] = r
    for s in scenarios[1:]:
        results[f"scenario{s.number}"] = run_scenario(
            s, spec, team, rng, style=style, policy=policy,
            observer=observe()
        )
    return results
