"""Pipelining: implement rotation and pipeline fill/drain analysis.

Section III-C: in scenario 4 "an effective coordination strategy is to pass
the drawing implements around so that each processor gets the right one at
any given moment, mimicking the movement of data through an arithmetic
pipeline", and "the pipeline takes time to fill (the processors are idle
until they get the first implement)".

Two artifacts implement this:

- :func:`rotate_color_order` — the effective strategy: reorder each
  worker's strokes so worker *i* starts on color *i* (mod n-colors).  At
  any instant each implement is wanted by at most one worker; contention
  vanishes without changing anyone's workload.
- :func:`pipeline_metrics` — measure the pipeline on a finished trace:
  per-worker first-stroke time (fill), last-stroke spread (drain), and
  stage occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..flags.decompose import Partition
from ..flags.spec import PaintOp
from ..grid.palette import Color
from ..sim.trace import Trace


@dataclass(frozen=True)
class PipelineMetrics:
    """Fill/drain timing of a pipelined (or accidentally pipelined) run.

    Attributes:
        first_stroke: per-agent time of their first STROKE_START — the
            pipeline-fill profile; in a top-down scenario-4 run these form
            the staircase of workers waiting for the red marker.
        last_stroke: per-agent time of their last STROKE_END.
        fill_time: latest first-stroke minus earliest first-stroke.
        drain_time: latest last-stroke minus earliest last-stroke.
    """

    first_stroke: Dict[str, float]
    last_stroke: Dict[str, float]
    fill_time: float
    drain_time: float


def rotate_color_order(partition: Partition) -> Partition:
    """Rotate each worker's color processing order to avoid contention.

    Worker *i* handles its colors starting from the *i*-th distinct color
    of the program (wrapping around), keeping the original stroke order
    within each color.  Workload per worker is unchanged — only the order
    moves — so any speedup against the unrotated partition is pure
    contention removal.
    """
    program = partition.program
    color_cycle: List[Color] = []
    for op in program.ops:
        if op.color not in color_cycle:
            color_cycle.append(op.color)
    n = len(color_cycle)
    new_assignments: List[Tuple[PaintOp, ...]] = []
    for w, ops in enumerate(partition.assignments):
        by_color: Dict[Color, List[PaintOp]] = {}
        for op in ops:
            by_color.setdefault(op.color, []).append(op)
        order = [color_cycle[(w + k) % n] for k in range(n)]
        rotated: List[PaintOp] = []
        for color in order:
            rotated.extend(by_color.get(color, []))
        new_assignments.append(tuple(rotated))
    return Partition(
        program=program,
        assignments=tuple(new_assignments),
        strategy=partition.strategy + "+rotated",
    )


def pipeline_metrics(trace: Trace) -> PipelineMetrics:
    """Extract fill/drain timing from a finished run's trace."""
    strokes = trace.stroke_intervals()
    first: Dict[str, float] = {}
    last: Dict[str, float] = {}
    for iv in strokes:
        if iv.agent not in first or iv.start < first[iv.agent]:
            first[iv.agent] = iv.start
        if iv.agent not in last or iv.end > last[iv.agent]:
            last[iv.agent] = iv.end
    if not first:
        return PipelineMetrics({}, {}, 0.0, 0.0)
    fill = max(first.values()) - min(first.values())
    drain = max(last.values()) - min(last.values())
    return PipelineMetrics(first_stroke=first, last_stroke=last,
                           fill_time=fill, drain_time=drain)


def stage_occupancy(trace: Trace, resource: str, n_bins: int = 20) -> List[float]:
    """Fraction of each makespan bin the implement spent held.

    A coarse utilization-over-time curve: for a well-formed pipeline the
    red marker is ~100% occupied early and idle late, each implement's
    curve shifted by one stage — the textbook pipeline diagram, recovered
    from the trace.
    """
    span = trace.makespan()
    if span <= 0 or n_bins <= 0:
        return [0.0] * max(n_bins, 0)
    edges = [span * i / n_bins for i in range(n_bins + 1)]
    held = trace.resource_holders_timeline(resource)
    out: List[float] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        width = hi - lo
        covered = 0.0
        for iv in held:
            covered += max(0.0, min(iv.end, hi) - max(iv.start, lo))
        out.append(covered / width if width > 0 else 0.0)
    return out
