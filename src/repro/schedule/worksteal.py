"""Work stealing: the classroom's "whoever finishes, helps the others".

Each worker starts with their static share (a vertical slice, say), and a
worker whose own deque empties *steals* the back half of the most-loaded
teammate's remaining strokes.  This fixes the Canadian-flag imbalance
without the central queue of :mod:`repro.schedule.strategies` — the
classic distributed remedy, at the cost of occasional extra implement
churn when the thief needs different colors.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

from ..agents.student import FillStyle
from ..agents.team import Team
from ..flags.decompose import Partition
from ..grid.canvas import Canvas
from ..grid.palette import Color
from ..sim.engine import Acquire, ProcessGen, Release, ResourceHandle, Simulator, Timeout
from ..sim.events import EventKind
from ..sim.trace import Trace
from .runner import RunResult, build_resources


class WorkStealError(Exception):
    """Raised for invalid work-stealing configurations."""


def steal_back_half(queues: Dict[str, Deque[T]],
                    thief: str) -> Optional[Tuple[str, List[T]]]:
    """Move the back half of the largest other queue into the thief's.

    The core work-stealing primitive, independent of the simulation: it
    operates on any mapping of owner name to deque of work items, so
    both the in-sim stealing runner below and the distributed sweep
    fabric (:mod:`repro.fabric`) rebalance through the same code.  Ties
    between equally-loaded victims break toward the lexicographically
    largest name, deterministically.

    Returns ``(victim, stolen_items)`` with the items already moved to
    the thief's deque (victim's intended order preserved), or ``None``
    when every other queue is empty.
    """
    victims = [(len(q), name) for name, q in queues.items()
               if name != thief and q]
    if not victims:
        return None
    victims.sort(reverse=True)
    _, victim = victims[0]
    vq = queues[victim]
    n = max(1, len(vq) // 2)
    stolen = [vq.pop() for _ in range(n)]
    stolen.reverse()  # keep the victim's intended order
    queues[thief].extend(stolen)
    return victim, stolen


def _steal(queues: Dict[str, Deque], thief: str,
           sim: Simulator) -> Optional[int]:
    """Steal into the thief's queue and log the NOTE event.

    Returns the number of strokes stolen, or None when nothing remains
    anywhere.
    """
    moved = steal_back_half(queues, thief)
    if moved is None:
        return None
    victim, stolen = moved
    sim.log(EventKind.NOTE, agent=thief, stole=len(stolen), victim=victim)
    return len(stolen)


def _stealing_worker(
    sim: Simulator,
    student,
    queues: Dict[str, Deque],
    team: Team,
    canvas: Canvas,
    resources: Dict[Color, ResourceHandle],
    rng: np.random.Generator,
    style: FillStyle,
    last_holder: Dict[str, str],
    steal_overhead: float,
) -> ProcessGen:
    my_q = queues[student.name]
    held: Optional[ResourceHandle] = None
    while True:
        if my_q:
            op = my_q.popleft()
        else:
            if held is not None:
                yield Release(held)
                held = None
            got = _steal(queues, student.name, sim)
            if got is None:
                break
            # Take one stroke in hand *before* walking back: work in a
            # queue can be re-stolen during the overhead delay, and
            # without this an op could ping-pong between idle workers
            # forever.  Holding one guarantees progress per steal.
            op = my_q.popleft()
            if steal_overhead > 0:
                yield Timeout(steal_overhead)
        res = resources[op.color]
        if held is not res:
            if held is not None:
                yield Release(held)
            yield Acquire(res)
            prev = last_holder.get(res.name)
            if prev is not None and prev != student.name:
                delay = student.handoff_time(rng)
                sim.log(EventKind.HANDOFF, agent=student.name,
                        resource=res.name, from_agent=prev, delay=delay)
                yield Timeout(delay)
            last_holder[res.name] = student.name
            held = res
        implement = team.kit.implement_for(op.color)
        duration, coverage, fault = student.stroke_time(
            implement, rng, style, complexity=op.complexity)
        sim.log(EventKind.STROKE_START, agent=student.name, cell=op.cell,
                color=op.color.name, layer=op.layer)
        yield Timeout(duration)
        canvas.paint(op.cell, op.color, agent=student.name, time=sim.now,
                     coverage=coverage)
        sim.log(EventKind.STROKE_END, agent=student.name, cell=op.cell,
                color=op.color.name, layer=op.layer)
        if fault is not None:
            sim.log(EventKind.FAULT, agent=student.name,
                    resource=res.name, delay=fault)
            yield Timeout(fault)
    if held is not None:
        yield Release(held)


def run_work_stealing(
    partition: Partition,
    team: Team,
    rng: np.random.Generator,
    *,
    style: FillStyle = FillStyle.SCRIBBLE,
    steal_overhead: float = 2.0,
    label: Optional[str] = None,
) -> RunResult:
    """Run a static partition with work stealing on top.

    Note: stealing can reorder strokes across workers, so this runner is
    only offered for *flat* (non-layered) programs where any stroke order
    is legal.

    Raises:
        WorkStealError: when the program is layered (stealing could
            violate the painter's order) or the team is too small.
    """
    program = partition.program
    layers_per_cell: Dict = {}
    for op in program.ops:
        layers_per_cell.setdefault(op.cell, []).append(op.layer)
    if any(len(ls) > 1 for ls in layers_per_cell.values()):
        raise WorkStealError(
            "work stealing supports only flat programs; "
            "layered flags need the barrier scheduler"
        )

    team.begin_scenario()
    sim = Simulator()
    canvas = Canvas(program.rows, program.cols, allow_overpaint=True)
    colors = sorted({op.color for op in program.ops}, key=int)
    resources = build_resources(sim, team, colors)
    last_holder: Dict[str, str] = {}

    active = [(i, ops) for i, ops in enumerate(partition.assignments) if ops]
    students = team.colorers(len(active))
    queues: Dict[str, Deque] = {
        student.name: deque(ops)
        for student, (_, ops) in zip(students, active)
    }
    for student in students:
        sim.add_process(
            student.name,
            _stealing_worker(sim, student, queues, team, canvas, resources,
                             rng, style, last_holder, steal_overhead),
        )
    true_makespan = sim.run()
    measured = team.timer.measure(true_makespan, rng)
    from ..flags.compiler import execute
    target = execute(program).codes
    return RunResult(
        label=label or f"{program.flag}/{partition.strategy}+stealing",
        strategy=partition.strategy + "+stealing",
        n_workers=len(active),
        true_makespan=true_makespan,
        measured_time=measured,
        trace=Trace(sim.events),
        canvas=canvas,
        correct=canvas.matches(target),
        extra={"steal_overhead": steal_overhead},
    )


def count_steals(trace: Trace) -> int:
    """How many steal events occurred in a run."""
    return sum(1 for e in trace.of_kind(EventKind.NOTE)
               if "stole" in e.data)
