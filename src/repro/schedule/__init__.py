"""Scheduling: scenario runner, core scenarios, dynamic/pipelined/layered."""

from .runner import (
    AcquirePolicy,
    RunResult,
    build_resources,
    marker_name,
    paint_worker,
    replay_many,
    run_partition,
)
from .scenario import (
    Scenario,
    core_scenarios,
    get_scenario,
    run_core_activity,
    run_scenario,
)
from .strategies import StrategyError, chunk_sweep, run_dynamic
from .pipeline import (
    PipelineMetrics,
    pipeline_metrics,
    rotate_color_order,
    stage_occupancy,
)
from .depsched import layered_speedup_curve, run_layered, split_ops
from .worksteal import (
    WorkStealError,
    count_steals,
    run_work_stealing,
    steal_back_half,
)

__all__ = [
    "AcquirePolicy",
    "RunResult",
    "build_resources",
    "marker_name",
    "paint_worker",
    "replay_many",
    "run_partition",
    "Scenario",
    "core_scenarios",
    "get_scenario",
    "run_core_activity",
    "run_scenario",
    "StrategyError",
    "chunk_sweep",
    "run_dynamic",
    "PipelineMetrics",
    "pipeline_metrics",
    "rotate_color_order",
    "stage_occupancy",
    "layered_speedup_curve",
    "run_layered",
    "split_ops",
    "WorkStealError",
    "count_steals",
    "run_work_stealing",
    "steal_back_half",
]
