"""Dependency-aware scheduling for layered flags.

The Knox follow-up activity (Section III-D): layered coloring — background
first, then features — is the easy way to make complicated flags, but the
layers *limit parallelism* by introducing dependencies.  This module
schedules a layered :class:`FlagSpec` with a barrier between layers: within
a layer, the layer's cells are split among the workers; no worker may start
layer *k+1* until every worker has finished layer *k*.

The barrier is implemented with the engine's ``WaitAll`` primitive: each
(worker, layer) pair is its own simulator process that waits on all of the
previous layer's processes.  Student state (experience, fatigue) lives in
the shared :class:`StudentProcessor` objects, so a student's performance
carries across their per-layer processes exactly as it would across one
long process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..agents.student import FillStyle, StudentProcessor
from ..agents.team import Team
from ..flags.compiler import compile_flag
from ..flags.spec import FlagSpec, PaintOp
from ..grid.canvas import Canvas
from ..grid.palette import Color
from ..sim.engine import ProcessGen, Simulator, WaitAll
from ..sim.trace import Trace
from .runner import RunResult, build_resources, paint_worker


def split_ops(ops: Sequence[PaintOp], n: int) -> List[Tuple[PaintOp, ...]]:
    """Contiguous near-equal chunks of an ordered op list (may be empty)."""
    if n < 1:
        raise ValueError(f"need at least one worker, got {n}")
    base, extra = divmod(len(ops), n)
    out: List[Tuple[PaintOp, ...]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(tuple(ops[start:start + size]))
        start += size
    return out


def _layer_process(
    sim: Simulator,
    student: StudentProcessor,
    ops: Sequence[PaintOp],
    deps: Sequence[str],
    team: Team,
    canvas: Canvas,
    resources,
    rng: np.random.Generator,
    style: FillStyle,
    last_holder: Dict[str, str],
) -> ProcessGen:
    """Wait for the previous layer's processes, then paint this worker's ops."""
    if deps:
        yield WaitAll(tuple(deps))
    yield from paint_worker(sim, student, ops, team, canvas, resources, rng,
                            style=style, last_holder=last_holder)


def run_layered(
    spec: FlagSpec,
    team: Team,
    n_workers: int,
    rng: np.random.Generator,
    *,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
    style: FillStyle = FillStyle.SCRIBBLE,
    skip_optional_blank: bool = True,
    label: Optional[str] = None,
) -> RunResult:
    """Simulate layered coloring with a barrier after every layer.

    Returns a :class:`RunResult` whose ``extra`` records the per-layer
    completion times (``layer_finish``) — the data for the "dependencies
    limit parallelism" discussion.
    """
    program = compile_flag(spec, rows, cols,
                           skip_optional_blank=skip_optional_blank)
    team.begin_scenario()
    sim = Simulator()
    canvas = Canvas(program.rows, program.cols, allow_overpaint=True)
    colors = sorted({op.color for op in program.ops}, key=int)
    resources = build_resources(sim, team, colors)
    last_holder: Dict[str, str] = {}
    students = team.colorers(n_workers)

    prev_layer_procs: List[str] = []
    layer_proc_names: Dict[str, List[str]] = {}
    for layer_name in program.layer_order:
        ops = program.ops_for_layer(layer_name)
        chunks = split_ops(ops, n_workers)
        names: List[str] = []
        for student, chunk in zip(students, chunks):
            if not chunk:
                continue
            pname = f"{layer_name}|{student.name}"
            names.append(pname)
            sim.add_process(
                pname,
                _layer_process(sim, student, chunk, list(prev_layer_procs),
                               team, canvas, resources, rng, style,
                               last_holder),
            )
        layer_proc_names[layer_name] = names
        if names:
            prev_layer_procs = names

    true_makespan = sim.run()
    measured = team.timer.measure(true_makespan, rng)
    trace = Trace(sim.events)
    layer_finish = {
        layer: max((sim.finish_times[p] for p in procs), default=0.0)
        for layer, procs in layer_proc_names.items()
    }
    from ..flags.compiler import image_matches
    return RunResult(
        label=label or f"{spec.name}/layered(P={n_workers})",
        strategy="layer_barrier",
        n_workers=n_workers,
        true_makespan=true_makespan,
        measured_time=measured,
        trace=trace,
        canvas=canvas,
        correct=image_matches(canvas.codes, spec, program),
        extra={"layer_finish": layer_finish,
               "layer_order": list(program.layer_order)},
    )


def layered_speedup_curve(
    spec: FlagSpec,
    team_factory,
    workers: Sequence[int],
    seed: int,
    *,
    trials: int = 3,
) -> Dict[int, List[RunResult]]:
    """Layered-schedule makespans across worker counts (fresh team each trial).

    For layered flags the curve flattens well before the flat-flag curve
    does: each barrier serializes on the slowest worker of the layer, and
    small layers (the Jordan star, the GB red cross) cannot use many hands.
    """
    out: Dict[int, List[RunResult]] = {}
    for p in workers:
        runs = []
        for t in range(trials):
            rng = np.random.default_rng(seed + 7919 * p + t)
            team = team_factory(rng, max(p, 1))
            runs.append(run_layered(spec, team, p, rng))
        out[p] = runs
    return out
