#!/usr/bin/env python3
"""The assessment pipeline: surveys, quizzes, and open-ended feedback.

Runs the full evaluation machinery the paper used: synthesize the six
institutions' engagement-survey populations (calibrated to Tables I-III),
recompute the published tables from raw responses, simulate the pre/post
quiz cohorts through the Figure 8 learning transitions, and code a corpus
of open-ended comments into themes.

Run with::

    python examples/assessment_pipeline.py [seed]
"""

import sys

import numpy as np

from repro.data import ALL_TABLES, INSTITUTIONS
from repro.survey import (
    Question,
    analyze_sheets,
    generate_corpus,
    pre_post_correct_rates,
    simulate_cohort,
    synthesize_all,
    theme_frequencies,
)
from repro.survey.respond import recompute_table, table_discrepancies
from repro.viz import format_table, grouped_bar_chart


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    print("=== Tables I-III recomputed from synthetic raw responses ===\n")
    sets_ = synthesize_all(seed=seed)
    for tid in ("I", "II", "III"):
        table = recompute_table(tid, sets_)
        rows = [[q[:58]] + [table[q][i] for i in INSTITUTIONS]
                for q in table]
        print(f"Table {tid}:")
        print(format_table(["question"] + list(INSTITUTIONS), rows))
        diffs = table_discrepancies(tid, sets_)
        print(f"  discrepancies vs paper: "
              f"{'NONE - exact' if not diffs else diffs}\n")

    print("=== Figure 6 (excerpt): engagement medians as bars ===\n")
    fun_row = "I had fun during the activity"
    print(grouped_bar_chart(
        {fun_row: ALL_TABLES["I"][fun_row]}, width=25,
    ))

    print("\n=== Figure 8: pre/post quiz transitions ===\n")
    rng = np.random.default_rng(seed)
    for inst in ("USI", "TNTech", "HPU"):
        sheets = simulate_cohort(inst, rng)
        analysis = analyze_sheets(sheets)
        rates = pre_post_correct_rates(analysis)
        rows = [
            [c, f"{pre:.0%}", f"{post:.0%}",
             f"{analysis[c]['gained']:.0%}", f"{analysis[c]['lost']:.0%}"]
            for c, (pre, post) in rates.items()
        ]
        print(f"{inst} (n={sheets.n}):")
        print(format_table(
            ["concept", "pre ok", "post ok", "gained", "lost"], rows,
        ))
        print()

    print("=== Open-ended feedback, coded into themes ===\n")
    for question in Question:
        corpus = generate_corpus(question, 60, rng)
        freqs = theme_frequencies([text for text, _ in corpus])
        top = sorted(freqs.items(), key=lambda kv: -kv[1])[:5]
        print(f"{question.value}: top themes: "
              + ", ".join(f"{t.value}({n})" for t, n in top))


if __name__ == "__main__":
    main()
