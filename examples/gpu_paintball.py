#!/usr/bin/env python3
"""The NVIDIA paintball demo, simulated: CPU vs GPU flag coloring.

The Webster discussion showed a video where a CPU is one paintball barrel
aimed and fired per pixel, and a GPU is one barrel *per* pixel firing the
Mona Lisa in a single shot.  This example sweeps the processor count from
1 to one-student-per-cell (with enough implements to match) and plots the
speedup curve — data parallelism taken to its extreme, plus where the
classroom version breaks down (handoffs and slow students in the tail).

Run with::

    python examples/gpu_paintball.py [seed]
"""

import sys

import numpy as np

from repro.agents import make_team
from repro.flags import compile_flag, mauritius, cyclic, single
from repro.metrics import efficiency, speedup
from repro.schedule import run_partition
from repro.viz import hbar_chart


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spec = mauritius()
    prog = compile_flag(spec)
    n_cells = prog.n_ops

    def run(p, s):
        rng = np.random.default_rng(s)
        team = make_team("t", p, rng, colors=list(spec.colors_used()),
                         copies=p)  # a barrel per worker: no contention
        part = single(prog) if p == 1 else cyclic(prog, p)
        return run_partition(part, team, rng).true_makespan

    t1 = float(np.median([run(1, seed + s) for s in range(3)]))
    print(f"flag: {n_cells} cells; sequential (CPU) time {t1:.0f}s\n")

    sweep = [1, 2, 4, 8, 16, 32, 48, 96]
    speeds = {}
    for p in sweep:
        tp = float(np.median([run(p, seed + 10 * p + s) for s in range(3)]))
        speeds[f"P={p:3d}"] = speedup(t1, tp)
        print(f"P={p:3d}  time {tp:7.1f}s  speedup {speeds[f'P={p:3d}']:6.2f}x"
              f"  efficiency {efficiency(t1, tp, p):5.0%}")

    print("\nSpeedup curve (the GPU limit is one student per cell):")
    print(hbar_chart(speeds, width=40, fmt="{:.1f}x"))
    print(
        "\nEven with a marker per student, speedup saturates: every cell\n"
        "still costs one human stroke, and the makespan becomes the\n"
        "slowest student's single stroke plus coordination — the classroom\n"
        "equivalent of kernel-launch overhead dominating a trivially\n"
        "parallel workload."
    )


if __name__ == "__main__":
    main()
