#!/usr/bin/env python3
"""The Webster variation: French vs Canadian flags, 1 vs 3 students.

Reproduces Section III-D's load-balancing lesson: the simple French
tricolor splits evenly among three students, while the Canadian flag's
maple leaf concentrates slow, intricate work on the middle student —
smaller speedup, visible idle time.

Run with::

    python examples/webster_flags.py [seed]
"""

import sys

import numpy as np

from repro.agents import make_team
from repro.flags import canada, compile_flag, france, single, vertical_slices
from repro.grid.render import to_ansi
from repro.metrics import efficiency, imbalance_ratio, speedup
from repro.schedule import run_partition
from repro.viz import render_agent_loads


def run_flag(spec, n, seed):
    rng = np.random.default_rng(seed)
    team = make_team("t", max(n, 1), rng, colors=list(spec.colors_used()),
                     copies=n)
    prog = compile_flag(spec)
    part = single(prog) if n == 1 else vertical_slices(prog, n)
    return run_partition(part, team, rng)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    trials = 5

    for spec in (france(), canada()):
        print(f"=== {spec.name} "
              f"({spec.default_rows}x{spec.default_cols}) ===")
        print(to_ansi(spec.final_image()))
        t1 = float(np.median(
            [run_flag(spec, 1, seed + s).true_makespan
             for s in range(trials)]
        ))
        runs3 = [run_flag(spec, 3, seed + 100 + s) for s in range(trials)]
        t3 = float(np.median([r.true_makespan for r in runs3]))
        s = speedup(t1, t3)
        e = efficiency(t1, t3, 3)
        imb = float(np.median([
            imbalance_ratio([w.busy for w in r.trace.summaries()])
            for r in runs3
        ]))
        print(f"  1 student : {t1:6.0f}s")
        print(f"  3 students: {t3:6.0f}s   speedup {s:.2f}x   "
              f"efficiency {e:.0%}   busy-imbalance {imb:.2f}")
        print("\n  per-student load (one 3-student run):")
        print("  " + render_agent_loads(runs3[0].trace, width=28)
              .replace("\n", "\n  "))
        print()

    print("Lesson: the intricate maple leaf slows the middle slice — "
          "load imbalance caps speedup before processor count does.")


if __name__ == "__main__":
    main()
