#!/usr/bin/env python3
"""Observability walkthrough: trace scenario 3 vs scenario 4.

Runs the same flag and team through the embarrassingly-parallel
scenario (3: one stripe each) and the contended scenario (4: vertical
slices sharing one marker per color) with a ``RunObserver`` attached,
then shows what the instruments see: the metrics digest, the headline
contention numbers side by side, and a Chrome trace written to a
scratch directory ready for ui.perfetto.dev.

Run with::

    python examples/observability_demo.py [seed]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.agents import make_team
from repro.flags import mauritius
from repro.obs import RunObserver
from repro.schedule import get_scenario, run_scenario


def observed_run(scenario_n: int, spec, seed: int):
    """One scenario with the full observability stack attached."""
    obs = RunObserver()
    team = make_team("team", 4, np.random.default_rng(seed),
                     colors=list(spec.colors_used()))
    result = run_scenario(get_scenario(scenario_n), spec, team,
                          np.random.default_rng(seed), observer=obs)
    return obs, result


def wait_seconds(obs: RunObserver) -> float:
    """Total simulated seconds all workers spent queued for implements."""
    hist = obs.metrics.histogram("resource_wait_seconds")
    resources = {s.tags["resource"]
                 for s in obs.spans.spans if s.category == "wait"}
    return sum(hist.sum(resource=r) for r in resources)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    spec = mauritius()

    print("=== scenario 4 (shared markers), fully instrumented ===")
    obs4, r4 = observed_run(4, spec, seed)
    print(r4.obs.format())

    print("\n=== contention: scenario 3 vs scenario 4 ===")
    obs3, r3 = observed_run(3, spec, seed)
    for label, obs, result in (("scenario 3", obs3, r3),
                               ("scenario 4", obs4, r4)):
        waited = wait_seconds(obs)
        print(f"{label}: makespan {result.true_makespan:7.1f}s, "
              f"total wait {waited:7.1f}s "
              f"({waited / result.true_makespan:5.2f}x the makespan)")

    print("\n=== the longest waits on the scenario-4 timeline ===")
    waits = sorted((s for s in obs4.spans.spans if s.category == "wait"),
                   key=lambda s: -s.duration)[:5]
    for s in waits:
        print(f"  {s.track:10s} waited {s.duration:6.1f}s for "
              f"{s.tags['resource']} (t={s.start:.1f}..{s.end:.1f})")

    with tempfile.TemporaryDirectory(prefix="flagsim_obs_") as scratch:
        out = Path(scratch) / "trace.json"
        out.write_text(obs4.chrome_trace_json())
        n = len(obs4.chrome_trace()["traceEvents"])
        print(f"\nwrote a {n}-event Chrome trace to a scratch dir "
              f"({out.name}) — in your own scripts, keep it and load it "
              f"at ui.perfetto.dev")

    profile = obs4.profiler.report(simulated_seconds=r4.true_makespan)
    print(f"engine speed: {profile['sim_to_host_ratio']:.0f}x faster "
          f"than real time")


if __name__ == "__main__":
    main()
