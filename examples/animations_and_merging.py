#!/usr/bin/env python3
"""The Webster animations and the merging-team organization.

Recreates the two remaining classroom artifacts: the schedule animation
(frame-by-frame canvas states with per-student status, plus the progress
S-curve that makes the pipeline-fill lag visible), and the alternative
team organization where 2-student teams run scenarios 1-2 and then merge
— pooling markers — for scenarios 3-4.

Run with::

    python examples/animations_and_merging.py [seed]
"""

import sys

import numpy as np

from repro.agents import make_team
from repro.classroom import get_institution, run_merging_session, run_session
from repro.flags import compile_flag, mauritius, scenario_partition
from repro.schedule import run_partition
from repro.viz import ascii_frames, progress_curve, sparkline
from repro.viz.animate import svg_filmstrip


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 15

    # --- the animation -----------------------------------------------------
    prog = compile_flag(mauritius())
    team = make_team("t", 4, np.random.default_rng(seed),
                     colors=list(mauritius().colors_used()))
    r4 = run_partition(scenario_partition(prog, 4), team,
                       np.random.default_rng(seed))

    print("=== Scenario 4, animated (4 of 6 frames shown) ===\n")
    for frame in ascii_frames(r4.trace, 8, 12, n_frames=6)[1:5]:
        print(frame)
        print()

    curve = progress_curve(r4.trace, 8, 12, n_points=30)
    print("progress over time (note the slow start — the pipeline filling):")
    print("  " + sparkline([f for _, f in curve], vmax=1.0))

    svg = svg_filmstrip(r4.trace, 8, 12, n_frames=6)
    print(f"\n(svg filmstrip: {len(svg)} bytes, 6 frames — write it to a "
          "file to use as a handout)")

    # --- merging teams -------------------------------------------------------
    print("\n=== Standard vs merging-team organization (USI) ===\n")
    standard = run_session(get_institution("USI"), seed=seed, n_teams=3)
    merging = run_merging_session(get_institution("USI"), seed=seed,
                                  n_pairs=3)

    def wait4(report):
        return float(np.median([
            t.results["scenario4"].trace.total_wait_fraction()
            for t in report.teams
        ]))

    def t4(report):
        return report.median_times()["scenario4"]

    print(f"{'organization':24s} {'scenario4 time':>14s} {'wait share':>11s}")
    print(f"{'teams of 4 (one kit)':24s} {t4(standard):13.0f}s "
          f"{wait4(standard):10.0%}")
    print(f"{'2+2 merged (two kits)':24s} {t4(merging):13.0f}s "
          f"{wait4(merging):10.0%}")
    print("\nMerged teams pool their implements — two markers per color — "
          "so the\nscenario-4 contention softens: the 'extra resources' "
          "discussion,\nbuilt into the classroom organization itself.")


if __name__ == "__main__":
    main()
