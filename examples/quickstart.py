#!/usr/bin/env python3
"""Quickstart: run one team through the four core scenarios.

This is the smallest end-to-end use of the library: build the flag of
Mauritius, assemble a team of four student-processors plus a timer, run the
scenarios of Figure 1 in classroom order, and print the whiteboard the
post-activity discussion works from.

Run with::

    python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro.flags import mauritius
from repro.agents import make_team
from repro.grid.render import to_ansi
from repro.metrics import speedup
from repro.schedule import run_core_activity
from repro.viz import hbar_chart, render_agent_loads


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = np.random.default_rng(seed)

    spec = mauritius()
    print(f"Flag: {spec.name} ({spec.default_rows}x{spec.default_cols} grid, "
          f"{spec.total_work()} cells)\n")
    print(to_ansi(spec.final_image()))
    print()

    team = make_team("team1", 4, rng, colors=list(spec.colors_used()))
    results = run_core_activity(spec, team, rng)

    print("The whiteboard (measured stopwatch times):")
    print(hbar_chart(
        {label: r.measured_time for label, r in results.items()},
        width=44, fmt="{:.0f}s",
    ))
    print()

    t1 = results["scenario1_repeat"].measured_time
    print("Speedups vs the (warmed-up) sequential run:")
    for label, r in results.items():
        s = speedup(t1, r.measured_time)
        print(f"  {label:18s} {s:5.2f}x  "
              f"({r.n_workers} student{'s' if r.n_workers > 1 else ''})")
    print()

    print("Scenario 4's per-student time accounting "
          "(note the waiting — contention):")
    print(render_agent_loads(results["scenario4"].trace, width=30))


if __name__ == "__main__":
    main()
