#!/usr/bin/env python3
"""The Knox follow-up: dependency graphs for layered flags.

Derives the dependency DAG from each layered flag's paint program, prints
Figure 9's reference graph for the flag of Jordan, computes the speedup
ceiling the dependencies impose, and then grades a simulated batch of
student submissions with the Section V-C rubric.

Run with::

    python examples/dependency_analysis.py [seed]
"""

import sys

import numpy as np

from repro.depgraph import (
    Category,
    flag_dag,
    generate_exact_paper_cohort,
    grade_all,
    jordan_reference_dag,
)
from repro.flags import get_flag
from repro.grid.render import to_ascii


def print_dag(g, title):
    print(f"{title}")
    for level_no, level in enumerate(g.levels()):
        print(f"  level {level_no}: " + ", ".join(level))
    for u, v in g.edges:
        print(f"    {u} -> {v}")
    cp, path = g.critical_path()
    print(f"  total work {g.total_work():.0f} cells, critical path "
          f"{cp:.0f} cells via {' -> '.join(path)}")
    print(f"  speedup ceiling (work / critical path): "
          f"{g.ideal_speedup_bound():.2f}x\n")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    rng = np.random.default_rng(seed)

    for name in ("mauritius", "great_britain", "jordan"):
        spec = get_flag(name)
        print(f"=== {name} ===")
        print(to_ascii(spec.final_image()))
        print()
        print_dag(flag_dag(spec), f"dependency graph for {name}:")

    print("=== Figure 9: the intended Jordan solution ===")
    print_dag(jordan_reference_dag(), "reference graph:")

    print("=== Grading a simulated class (Section V-C) ===")
    cohort = generate_exact_paper_cohort(rng)
    report = grade_all(cohort)
    order = [Category.PERFECT, Category.MOSTLY_CORRECT,
             Category.LINEAR_CHAIN, Category.INCOMPLETE,
             Category.NO_LEARNING, Category.OTHER]
    for cat in order:
        n = report.counts.get(cat, 0)
        if n:
            print(f"  {cat.value:16s} {n:3d}  ({report.fraction(cat):.0%})")
    print(f"  at least mostly correct: "
          f"{report.at_least_mostly_correct:.0%} "
          f"(paper: 59%)")


if __name__ == "__main__":
    main()
