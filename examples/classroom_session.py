#!/usr/bin/env python3
"""A full classroom session at every pilot institution.

Simulates the activity the way the paper's six sites ran it: several teams
per class, different drawing implements across teams, scenario 1 optionally
repeated, every completion time posted publicly — then runs the automatic
debrief that extracts the Section III-C lessons from the evidence.

Run with::

    python examples/classroom_session.py [seed]
"""

import sys

import numpy as np

from repro.classroom import (
    all_institutions,
    debrief_session,
    run_session,
)
from repro.viz import format_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    rows = []
    debriefs = {}
    for i, profile in enumerate(all_institutions()):
        n_teams = min(profile.n_teams, 4)
        report = run_session(profile, seed + i, n_teams=n_teams)
        med = report.median_times()
        rows.append([
            profile.name,
            n_teams,
            f"{med.get('scenario1', 0):.0f}s",
            f"{med.get('scenario1_repeat', float('nan')):.0f}s"
            if "scenario1_repeat" in med else "—",
            f"{med.get('scenario2', 0):.0f}s",
            f"{med.get('scenario3', 0):.0f}s",
            f"{med.get('scenario4', 0):.0f}s",
            "yes" if report.all_correct() else "NO",
        ])
        debriefs[profile.name] = debrief_session(report)

    print("Median completion time per scenario, per institution:\n")
    print(format_table(
        ["site", "teams", "s1", "s1 rep", "s2", "s3", "s4", "correct"],
        rows,
    ))

    print("\nAutomatic debrief (USI):")
    for obs in debriefs["USI"]:
        flag = "DETECTED" if obs.detected else "not seen"
        print(f"  [{flag:8s}] {obs.lesson.value:22s} {obs.evidence}")

    print("\nLessons detected at every site:")
    for name, obs_list in debriefs.items():
        detected = sorted(o.lesson.value for o in obs_list if o.detected)
        print(f"  {name:10s} {', '.join(detected)}")


if __name__ == "__main__":
    main()
