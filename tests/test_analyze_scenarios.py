"""Tests for repro.analyze.scenarios and faultcheck — scenario reports."""

import pytest

from repro.analyze import (
    AnalysisError,
    Severity,
    analyze_scenario,
    check_fault_plan,
    wait_program_from_partition,
)
from repro.faults.plan import (
    FaultError,
    FaultPlan,
    ImplementFailure,
    LateArrival,
    StudentDropout,
    TransientStall,
)
from repro.flags import compile_flag, get_flag, scenario_partition
from repro.grid.palette import Color
from repro.schedule.runner import AcquirePolicy


class TestScenarioReports:
    @pytest.mark.parametrize("scenario,active", [(1, 1), (2, 2), (3, 4),
                                                 (4, 4)])
    def test_mauritius_active_workers(self, scenario, active):
        report = analyze_scenario(get_flag("mauritius"), scenario)
        assert report.ok
        assert report.n_active_workers == active
        assert report.speedup_bound == float(min(active, 4))

    def test_speedup_bound_caps_at_implements(self):
        # Poland has two colors: even 2 active workers can use at most
        # 2 implements, and a single copy of each bounds parallelism.
        report = analyze_scenario(get_flag("poland"), 2)
        assert report.total_implements == 2
        assert report.speedup_bound == 2.0

    def test_copies_raise_the_implement_count(self):
        report = analyze_scenario(get_flag("poland"), 2, copies=3)
        assert report.total_implements == 6
        assert report.speedup_bound == 2.0  # workers now bind

    def test_dag_section_matches_depgraph(self):
        from repro.depgraph import flag_dag
        spec = get_flag("jordan")
        report = analyze_scenario(spec, 3, team_size=8)
        g = flag_dag(spec)
        assert report.dag["work"] == pytest.approx(g.total_work())
        span, path = g.critical_path()
        assert report.dag["span"] == pytest.approx(span)
        assert report.dag["critical_path"] == list(path)
        assert report.dag["ideal_speedup_bound"] == pytest.approx(
            g.ideal_speedup_bound())

    def test_load_section_scenario1_is_serial(self):
        report = analyze_scenario(get_flag("mauritius"), 1)
        assert report.load["per_worker"] == [96.0]
        assert report.load["imbalance"] == 1.0
        assert report.load["makespan_lower_bound_weight"] == 96.0

    def test_contention_bottleneck_named(self):
        report = analyze_scenario(get_flag("mauritius"), 4)
        per = {e["resource"]: e for e in report.contention["per_implement"]}
        assert set(per) == {"red_marker", "blue_marker", "yellow_marker",
                            "green_marker"}
        assert report.contention["bottleneck"] in per
        # Scenario 4 slices make every worker visit every color.
        assert all(e["workers"] == 4 for e in per.values())

    def test_team_too_small_is_error(self):
        report = analyze_scenario(get_flag("mauritius"), 3, team_size=2)
        assert not report.ok
        issue = report.errors[0]
        assert issue.code == "team_too_small"
        assert "needs 4 colorers, team has 2" in issue.message

    def test_bad_scenario_number_raises(self):
        with pytest.raises(AnalysisError):
            analyze_scenario(get_flag("mauritius"), 7)

    def test_policy_recorded(self):
        report = analyze_scenario(
            get_flag("mauritius"), 3,
            policy=AcquirePolicy.RELEASE_PER_STROKE)
        assert report.policy == "release_per_stroke"


class TestWaitProgramCompilation:
    def test_hold_policy_one_acquire_per_color_run(self):
        from repro.analyze import AcquireStep, ReleaseStep
        partition = scenario_partition(
            compile_flag(get_flag("mauritius"), None, None), 4)
        wp = wait_program_from_partition(partition)
        # Slices walk 4 stripes: 4 acquires, 4 releases per worker.
        for proc in wp.procs:
            acquires = [s for s in proc.steps
                        if isinstance(s, AcquireStep)]
            releases = [s for s in proc.steps
                        if isinstance(s, ReleaseStep)]
            assert len(acquires) == 4
            assert len(releases) == 4

    def test_capacities_follow_copies(self):
        partition = scenario_partition(
            compile_flag(get_flag("poland"), None, None), 2)
        wp = wait_program_from_partition(partition, copies=2)
        assert wp.capacities == {"red_marker": 2, "white_marker": 2}

    def test_work_matches_partition_weight(self):
        from repro.analyze import WorkStep
        partition = scenario_partition(
            compile_flag(get_flag("mauritius"), None, None), 3)
        wp = wait_program_from_partition(partition)
        total = sum(s.duration for p in wp.procs for s in p.steps
                    if isinstance(s, WorkStep))
        weight = sum(op.complexity for ops in partition.assignments
                     for op in ops)
        assert total == pytest.approx(weight)


class TestFaultPlanChecks:
    def colors(self):
        return [Color.RED, Color.BLUE, Color.YELLOW, Color.GREEN]

    def test_clean_plan_is_clean(self):
        plan = FaultPlan.of([StudentDropout(at=5.0, worker=1),
                             ImplementFailure(at=3.0, color=Color.RED)])
        assert check_fault_plan(plan, n_workers=4, colors=self.colors(),
                                horizon=100.0) == []

    def test_unknown_worker_matches_runtime_wording(self):
        plan = FaultPlan.of([StudentDropout(at=5.0, worker=9)])
        issues = check_fault_plan(plan, n_workers=4, colors=self.colors())
        assert [i.code for i in issues] == ["fault_unknown_worker"]
        assert issues[0].message == ("fault targets worker 9, but the run "
                                     "has only 4 active workers")

    def test_unknown_implement_matches_runtime_wording(self):
        plan = FaultPlan.of([ImplementFailure(at=3.0, color=Color.BLACK)])
        issues = check_fault_plan(plan, n_workers=4, colors=self.colors())
        assert [i.code for i in issues] == ["fault_unknown_implement"]
        assert issues[0].message.startswith(
            "implement failure for BLACK, but the run only uses")

    def test_stall_and_late_worker_indices_checked(self):
        plan = FaultPlan.of([TransientStall(at=2.0, worker=5, duration=3.0),
                             LateArrival(worker=6, delay=4.0)])
        issues = check_fault_plan(plan, n_workers=2, colors=self.colors())
        assert [i.code for i in issues] == ["fault_unknown_worker"] * 2

    def test_past_horizon_is_warning_only(self):
        plan = FaultPlan.of([StudentDropout(at=500.0, worker=0)])
        issues = check_fault_plan(plan, n_workers=4, colors=self.colors(),
                                  horizon=100.0)
        assert [i.code for i in issues] == ["fault_past_horizon"]
        assert issues[0].severity is Severity.WARNING

    def test_no_horizon_skips_the_check(self):
        plan = FaultPlan.of([StudentDropout(at=500.0, worker=0)])
        assert check_fault_plan(plan, n_workers=4,
                                colors=self.colors()) == []

    def test_static_and_runtime_agree_on_bad_worker(self, rng):
        # The static ERROR and the runtime FaultError must name the
        # same target the same way.
        from repro.agents import make_team
        from repro.schedule import get_scenario, run_scenario
        spec = get_flag("mauritius")
        plan = FaultPlan.of([StudentDropout(at=5.0, worker=9)])
        report = analyze_scenario(spec, 3, fault_plan=plan)
        assert not report.ok
        static_msg = report.errors[0].message
        team = make_team("t", 4, rng, colors=list(spec.colors_used()))
        with pytest.raises(FaultError) as info:
            run_scenario(get_scenario(3), spec, team, rng, fault_plan=plan)
        assert str(info.value) == static_msg

    def test_plan_issues_land_in_report(self):
        plan = FaultPlan.of([ImplementFailure(at=3.0, color=Color.BLACK)])
        report = analyze_scenario(get_flag("mauritius"), 3,
                                  fault_plan=plan)
        assert not report.ok
        assert report.errors[0].code == "fault_unknown_implement"
