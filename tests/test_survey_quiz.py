"""Tests for repro.survey.quiz — the Figure 7 instrument."""

import pytest

from repro.data.paper_tables import QUIZ_CONCEPTS
from repro.survey.quiz import (
    BY_CONCEPT,
    QUESTIONS,
    QuestionKind,
    QuizQuestion,
    get_question,
    grade,
    score,
)


class TestInstrument:
    def test_five_questions_cover_concepts(self):
        assert tuple(q.concept for q in QUESTIONS) == QUIZ_CONCEPTS

    def test_kinds(self):
        """Two true/false (speedup, scalability), three multiple choice."""
        tf = [q.concept for q in QUESTIONS
              if q.kind is QuestionKind.TRUE_FALSE]
        assert tf == ["speedup", "scalability"]

    def test_tf_questions_have_two_options(self):
        for q in QUESTIONS:
            if q.kind is QuestionKind.TRUE_FALSE:
                assert len(q.options) == 2
            else:
                assert len(q.options) == 4

    def test_answer_key(self):
        assert BY_CONCEPT["task_decomposition"].correct == 0  # (a)
        assert BY_CONCEPT["speedup"].correct == 0             # True
        assert BY_CONCEPT["contention"].correct == 1          # (b)
        assert BY_CONCEPT["scalability"].correct == 0         # True
        assert BY_CONCEPT["pipelining"].correct == 1          # (b)

    def test_get_question(self):
        assert get_question("contention").concept == "contention"
        with pytest.raises(KeyError, match="valid"):
            get_question("quantum")

    def test_invalid_correct_index_rejected(self):
        with pytest.raises(ValueError):
            QuizQuestion("x", "p", QuestionKind.TRUE_FALSE,
                         ("True", "False"), correct=5)


class TestGrading:
    def test_is_correct(self):
        q = BY_CONCEPT["contention"]
        assert q.is_correct(1)
        assert not q.is_correct(0)
        with pytest.raises(ValueError):
            q.is_correct(9)

    def test_grade_full_sheet(self):
        perfect = {q.concept: q.correct for q in QUESTIONS}
        assert all(grade(perfect).values())
        assert score(perfect) == 5

    def test_grade_missing_answers_incorrect(self):
        assert grade({})["speedup"] is False
        assert score({}) == 0

    def test_partial_score(self):
        answers = {
            "task_decomposition": 0,  # right
            "speedup": 1,             # wrong (False)
            "contention": 1,          # right
        }
        assert score(answers) == 2
