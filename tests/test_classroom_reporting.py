"""Tests for repro.classroom.reporting — instructor session reports."""

import pytest

from repro.classroom import (
    compare_sessions_markdown,
    get_institution,
    run_session,
    session_markdown,
)


@pytest.fixture(scope="module")
def usi_report():
    return run_session(get_institution("USI"), seed=4, n_teams=3)


class TestSessionMarkdown:
    def test_structure(self, usi_report):
        md = session_markdown(usi_report)
        assert md.startswith("# Activity report — USI")
        for heading in ("## Whiteboard", "## Median times and speedups",
                        "## Lessons detected", "## Discussion guide"):
            assert heading in md

    def test_all_teams_listed(self, usi_report):
        md = session_markdown(usi_report)
        for t in usi_report.teams:
            assert t.team_name in md

    def test_speedups_rendered(self, usi_report):
        md = session_markdown(usi_report)
        assert "speedup vs scenario1_repeat" in md
        assert "x" in md

    def test_hardware_section_when_implements_differ(self, usi_report):
        md = session_markdown(usi_report)
        assert "## Hardware comparison" in md

    def test_hardware_section_absent_with_uniform_kit(self):
        from dataclasses import replace

        from repro.agents.implements import THICK_MARKER
        profile = replace(get_institution("USI"),
                          implements=(THICK_MARKER,))
        rep = run_session(profile, seed=5, n_teams=2)
        assert "## Hardware comparison" not in session_markdown(rep)

    def test_discussion_guide_optional(self, usi_report):
        md = session_markdown(usi_report, include_discussion_guide=False)
        assert "## Discussion guide" not in md

    def test_valid_markdown_tables(self, usi_report):
        md = session_markdown(usi_report)
        # Every table line is pipe-delimited and consistent.
        table_lines = [l for l in md.splitlines() if l.startswith("|")]
        assert table_lines
        assert all(l.endswith("|") for l in table_lines)


class TestCompareSessions:
    def test_one_row_per_site(self):
        reports = [
            run_session(get_institution(name), seed=10 + i, n_teams=2)
            for i, name in enumerate(("USI", "Knox", "HPU"))
        ]
        md = compare_sessions_markdown(reports)
        for name in ("USI", "Knox", "HPU"):
            assert name in md
        assert md.count("\n") >= 4  # header + separator + 3 rows

    def test_ratios_present(self):
        reports = [run_session(get_institution("USI"), seed=20, n_teams=2)]
        md = compare_sessions_markdown(reports)
        assert "warmup" in md and "s4/s3" in md

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_sessions_markdown([])
