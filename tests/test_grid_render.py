"""Tests for repro.grid.render."""

import numpy as np
import pytest

from repro.grid.canvas import Canvas
from repro.grid.palette import Color
from repro.grid.render import from_ascii, to_ansi, to_ascii, to_ppm, to_svg


@pytest.fixture
def small_canvas():
    c = Canvas(2, 3)
    c.paint((0, 0), Color.RED)
    c.paint((1, 2), Color.GREEN)
    return c


class TestAscii:
    def test_round_trip(self, small_canvas):
        art = to_ascii(small_canvas)
        assert art == "R..\n..G"
        assert np.array_equal(from_ascii(art), small_canvas.codes)

    def test_accepts_raw_array(self):
        codes = np.array([[1, 2], [0, 6]], dtype=np.int8)
        assert to_ascii(codes) == "RB\n.K"

    def test_from_ascii_rejects_ragged(self):
        with pytest.raises(ValueError, match="ragged"):
            from_ascii("RR\nR")

    def test_from_ascii_rejects_unknown_glyph(self):
        with pytest.raises(ValueError, match="unknown glyph"):
            from_ascii("RX")

    def test_from_ascii_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            from_ascii("")


class TestAnsi:
    def test_contains_reset_per_line(self, small_canvas):
        out = to_ansi(small_canvas)
        assert out.count("\x1b[0m") == 2

    def test_cell_width(self, small_canvas):
        narrow = to_ansi(small_canvas, cell_width=1)
        wide = to_ansi(small_canvas, cell_width=4)
        assert len(wide) > len(narrow)


class TestPpm:
    def test_header_and_size(self, small_canvas):
        data = to_ppm(small_canvas, scale=4)
        assert data.startswith(b"P6\n12 8\n255\n")
        header_end = data.index(b"255\n") + 4
        assert len(data) - header_end == 12 * 8 * 3

    def test_colors_present(self, small_canvas):
        data = to_ppm(small_canvas, scale=1)
        body = data[data.index(b"255\n") + 4:]
        pixels = np.frombuffer(body, dtype=np.uint8).reshape(2, 3, 3)
        assert tuple(pixels[0, 0]) == Color.RED.rgb
        assert tuple(pixels[1, 2]) == Color.GREEN.rgb


class TestSvg:
    def test_valid_structure(self, small_canvas):
        svg = to_svg(small_canvas)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") == 6

    def test_grid_lines_optional(self, small_canvas):
        with_lines = to_svg(small_canvas, grid_lines=True)
        without = to_svg(small_canvas, grid_lines=False)
        assert "<line" in with_lines
        assert "<line" not in without

    def test_cell_numbers(self, small_canvas):
        numbers = np.full((2, 3), -1)
        numbers[0, 0] = 1
        numbers[1, 2] = 2
        svg = to_svg(small_canvas, numbers=numbers)
        assert svg.count("<text") == 2
        assert ">1</text>" in svg and ">2</text>" in svg

    def test_numbers_shape_mismatch_raises(self, small_canvas):
        with pytest.raises(ValueError, match="shape"):
            to_svg(small_canvas, numbers=np.zeros((3, 3)))
