"""Tests for repro.stream.tutor — the guided live-lesson driver.

A lesson is a real seeded engine run watched through the stream bus;
the narration is derived entirely from the reassembled feed, so local
and remote (SSE) sessions of the same seed must tell the same story.
"""

import pytest

from repro.serve import BackgroundServer, ServeConfig
from repro.stream import (
    ACTIVITY_RUN_LABELS,
    LESSONS,
    LessonReport,
    TutorError,
    available_lessons,
    lesson_catalog,
    run_lesson,
)


class TestCatalog:
    def test_four_lessons_in_catalog(self):
        assert sorted(LESSONS) == ["contention", "pipelining",
                                   "speedup", "warmup"]
        assert available_lessons().keys() == LESSONS.keys()
        text = lesson_catalog()
        for name in LESSONS:
            assert name in text

    def test_cli_choices_are_pinned_to_the_catalog(self):
        # The tutor parser hardcodes its --lesson choices so building
        # the parser stays import-free; this is the pin.
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["tutor", "--lesson", "speedup"])
        assert args.lesson == "speedup"
        for name in LESSONS:
            parser.parse_args(["tutor", "--lesson", name])
        with pytest.raises(SystemExit):
            parser.parse_args(["tutor", "--lesson", "nonsense"])

    def test_unknown_lesson_raises(self):
        with pytest.raises(TutorError, match="unknown lesson"):
            run_lesson("osmosis")


class TestLocalLessons:
    @pytest.fixture(scope="class")
    def speedup(self):
        return run_lesson("speedup", seed=7)

    def test_report_shape(self, speedup):
        assert isinstance(speedup, LessonReport)
        assert speedup.name == "speedup"
        assert speedup.remote is False
        assert speedup.dropped == 0
        assert set(speedup.makespans) == set(ACTIVITY_RUN_LABELS)
        assert speedup.frames > len(ACTIVITY_RUN_LABELS) * 2

    def test_narration_tells_the_speedup_story(self, speedup):
        text = speedup.text()
        assert "lesson: speedup" in text
        assert "speedup x1.00" in text       # scenario1 vs itself
        assert "never linearly" in text
        assert "timeline:" in text
        assert "agents waiting:" in text

    def test_speedup_numbers_are_seeded(self, speedup):
        again = run_lesson("speedup", seed=7)
        assert again.makespans == speedup.makespans
        assert again.text() == speedup.text()
        # Scenario 3 beats scenario 1, but sublinearly — the paper's
        # core observation, straight from the streamed feed.
        span1 = speedup.makespans["scenario1"]
        span3 = speedup.makespans["scenario3"]
        assert span3 < span1

    @pytest.mark.parametrize("name", sorted(LESSONS))
    def test_every_lesson_completes_headless(self, name):
        report = run_lesson(name, seed=11)
        assert report.lines and report.lines[0].startswith(
            f"lesson: {name}")

    def test_out_sink_receives_every_line(self):
        sunk = []
        report = run_lesson("warmup", seed=5, out=sunk.append)
        assert sunk == report.lines


class TestRemoteLessons:
    def test_remote_lesson_matches_local(self, tmp_path):
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             batch_window_s=0.005)
        with BackgroundServer(config) as bg:
            remote = run_lesson("contention", seed=7,
                                serve=("127.0.0.1", bg.port))
        local = run_lesson("contention", seed=7)
        assert remote.remote is True
        assert remote.makespans == local.makespans
        # Same feed, same story — only the header's transport differs.
        assert remote.lines[2] != local.lines[2]
        assert remote.lines[:2] == local.lines[:2]
        assert remote.lines[3:] == local.lines[3:]
